"""Contract tests for the typed runtime event stream.

Pins down the dispatch rules documented in
:mod:`repro.simulator.events` (exact-type dispatch, registration-order
delivery, propagating subscriber errors, zero-cost disabled paths) and
re-checks three sanitizer invariants (SAN001 / SAN004 / SAN007) through
their event-subscriber form, ported from ``test_sanitizer.py``.
"""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.eager import Eager
from repro.simulator.events import (
    RUNTIME_EVENT_TYPES,
    EventStream,
    Evicted,
    FetchCompleted,
    FetchIssued,
    MemoryUsageChanged,
    TaskStarted,
    TransferCompleted,
)
from repro.simulator.memory import DeviceMemory
from repro.simulator.runtime import Runtime, simulate
from repro.simulator.sanitizer import Sanitizer, SanitizerError, check_determinism
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


def small_graph() -> TaskGraph:
    return random_bipartite(n_tasks=12, n_data=6, arity=2, seed=3)


def fetch(d: int, t: float = 0.0, gpu: int = 0) -> FetchIssued:
    return FetchIssued(time=t, gpu=gpu, data_id=d)


class TestDispatch:
    def test_exact_type_dispatch(self):
        stream = EventStream()
        got = []
        stream.subscribe(got.append, FetchIssued)
        stream.publish(fetch(1))
        stream.publish(Evicted(time=0.0, gpu=0, data_id=1))  # other type
        assert got == [fetch(1)]

    def test_subscribers_run_in_registration_order(self):
        stream = EventStream()
        calls = []
        for tag in ("sanitizer", "trace", "stats", "control"):
            stream.subscribe(
                lambda e, tag=tag: calls.append(tag), FetchIssued
            )
        stream.publish(fetch(0))
        assert calls == ["sanitizer", "trace", "stats", "control"]

    def test_same_handler_multiple_types(self):
        stream = EventStream()
        got = []
        stream.subscribe(got.append, FetchIssued, Evicted)
        stream.publish(fetch(1))
        stream.publish(Evicted(time=1.0, gpu=0, data_id=1))
        assert [type(e) for e in got] == [FetchIssued, Evicted]

    def test_subscribe_all_receives_every_type(self):
        stream = EventStream()
        got = []
        stream.subscribe(got.append)
        assert all(stream.wants(et) for et in RUNTIME_EVENT_TYPES)

    def test_wants_and_unsubscribe(self):
        stream = EventStream()
        assert not stream.wants(FetchIssued)
        handler = lambda e: None
        stream.subscribe(handler, FetchIssued)
        assert stream.wants(FetchIssued)
        assert stream.subscriber_count(FetchIssued) == 1
        stream.unsubscribe(handler, FetchIssued)
        assert not stream.wants(FetchIssued)

    def test_subscriber_exception_propagates(self):
        """Instrumentation errors must abort at the offending event,
        never be swallowed."""
        stream = EventStream()
        seen = []
        stream.subscribe(seen.append, FetchIssued)

        def boom(e):
            raise RuntimeError("instrumentation failure")

        stream.subscribe(boom, FetchIssued)
        after = []
        stream.subscribe(after.append, FetchIssued)
        with pytest.raises(RuntimeError, match="instrumentation failure"):
            stream.publish(fetch(2))
        assert seen == [fetch(2)]  # earlier subscriber already ran
        assert after == []  # later subscriber never reached

    def test_events_are_immutable(self):
        e = fetch(3)
        with pytest.raises(AttributeError):
            e.data_id = 4


class TestRuntimeWiring:
    def test_control_plane_subscribes_fetch_and_evict_events(self):
        """Scheduler notification (held-set sync + pokes) rides the
        stream for fetch issues, fetch completions and evictions even
        with tracing and the sanitizer off."""
        rt = Runtime(
            small_graph(), toy_platform(memory=6.0), Eager(),
            record_trace=False, sanitize=False,
        )
        assert rt.events.wants(FetchIssued)
        assert rt.events.wants(FetchCompleted)
        assert rt.events.wants(Evicted)

    def test_tracing_subscribes_the_fetch_path(self):
        rt = Runtime(
            small_graph(), toy_platform(memory=6.0), Eager(),
            record_trace=True, sanitize=False,
        )
        assert rt.events.wants(FetchIssued)

    def test_external_subscriber_sees_a_full_run(self):
        rt = Runtime(
            small_graph(), toy_platform(n_gpus=2, memory=3.0), Eager(),
            sanitize=False,
        )
        starts, fetches = [], []
        rt.events.subscribe(lambda e: starts.append(e.task), TaskStarted)
        rt.events.subscribe(lambda e: fetches.append(e.data_id), FetchCompleted)
        result = rt.run()
        assert sorted(starts) == list(range(12))
        assert len(fetches) == result.total_loads
        assert all(0 <= d < 6 for d in fetches)


class TestSanitizerAsSubscriber:
    """The SAN001/SAN004/SAN007 checks, exercised through the stream."""

    def test_san001_memory_overrun_via_stream(self, monkeypatch):
        """Ported from test_sanitizer TestInjectedMemoryOverrun: with
        eviction-for-space disabled, the overrun reaches the sanitizer
        through its MemoryUsageChanged subscription."""
        monkeypatch.setattr(
            DeviceMemory,
            "_make_room",
            lambda self, size, protected=frozenset(): True,
        )
        with pytest.raises(SanitizerError, match="SAN001"):
            simulate(
                small_graph(),
                toy_platform(n_gpus=1, memory=3.0),
                Eager(),
                sanitize=True,
            )

    def test_san001_fires_on_published_event(self):
        stream = EventStream()
        san = Sanitizer()
        san.subscribe_to(stream, memories=[])
        with pytest.raises(SanitizerError, match="SAN001"):
            stream.publish(
                MemoryUsageChanged(time=1.0, gpu=0, used=4.0, capacity=3.0)
            )

    def test_san004_overdelivering_bus_via_stream(self):
        """Ported from test_sanitizer TestBusConservation: the fake bus
        reports transfers faster than its bandwidth; the violation is
        delivered through the TransferCompleted subscription."""

        class FakeSpec:
            bandwidth = 1.0
            latency = 0.0

        class FakeBus:
            spec = FakeSpec()
            bytes_transferred = 100.0  # delivered at t=1 on a 1 B/s link
            n_transfers = 1

        stream = EventStream()
        san = Sanitizer(strict=False)
        san.subscribe_to(stream, memories=[])
        stream.publish(TransferCompleted(time=1.0, bus=FakeBus()))
        assert [v.code for v in san.violations] == ["SAN004"]

    def test_san007_same_seed_same_digest_via_subscribed_trace(self):
        """Ported from test_sanitizer TestDeterminismDigest: the digest
        is now produced by the TraceRecorder's event subscriptions, and
        double runs must still agree bit-for-bit."""
        digest = check_determinism(
            small_graph(), toy_platform(n_gpus=2, memory=3.0), "eager", seed=7
        )
        assert len(digest) == 64
        a = simulate(
            small_graph(), toy_platform(n_gpus=2, memory=3.0), Eager(),
            record_trace=True, seed=7,
        )
        b = simulate(
            small_graph(), toy_platform(n_gpus=2, memory=3.0), Eager(),
            record_trace=True, seed=7,
        )
        assert a.trace_digest == b.trace_digest
