"""Timing-exact tests for the bus contention models."""

import pytest

from repro.platform.spec import BusSpec
from repro.simulator.bus import FairShareBus, FifoBus, make_bus
from repro.simulator.engine import SimulationEngine


def _completion_logger(eng):
    log = []
    def make(name):
        return lambda: log.append((name, eng.now))
    return log, make


class TestFifoBus:
    def test_single_transfer_duration(self):
        eng = SimulationEngine()
        bus = FifoBus(eng, BusSpec(bandwidth=10.0, latency=0.5, model="fifo"))
        log, make = _completion_logger(eng)
        bus.submit(20.0, dst=0, on_complete=make("a"))
        eng.run()
        assert log == [("a", pytest.approx(2.5))]  # 0.5 + 20/10

    def test_transfers_serialize(self):
        eng = SimulationEngine()
        bus = FifoBus(eng, BusSpec(bandwidth=10.0, latency=0.0, model="fifo"))
        log, make = _completion_logger(eng)
        bus.submit(10.0, dst=0, on_complete=make("a"))
        bus.submit(10.0, dst=1, on_complete=make("b"))
        eng.run()
        assert log == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_accounting(self):
        eng = SimulationEngine()
        bus = FifoBus(eng, BusSpec(bandwidth=10.0, latency=0.0, model="fifo"))
        bus.submit(10.0, dst=0, on_complete=lambda: None)
        bus.submit(30.0, dst=1, on_complete=lambda: None)
        eng.run()
        assert bus.bytes_transferred == 40.0
        assert bus.bytes_to == {0: 10.0, 1: 30.0}
        assert bus.n_transfers == 2

    def test_rejects_nonpositive_size(self):
        eng = SimulationEngine()
        bus = FifoBus(eng, BusSpec(bandwidth=10.0, model="fifo"))
        with pytest.raises(ValueError):
            bus.submit(0.0, dst=0, on_complete=lambda: None)


class TestFairShareBus:
    def _bus(self, bandwidth=10.0, latency=0.0):
        eng = SimulationEngine()
        return eng, FairShareBus(
            eng, BusSpec(bandwidth=bandwidth, latency=latency, model="fair")
        )

    def test_single_transfer_full_bandwidth(self):
        eng, bus = self._bus()
        log, make = _completion_logger(eng)
        bus.submit(30.0, dst=0, on_complete=make("a"))
        eng.run()
        assert log == [("a", pytest.approx(3.0))]

    def test_two_equal_transfers_share_evenly(self):
        """Two 10-byte transfers on a 10 B/s bus: both finish at t=2."""
        eng, bus = self._bus()
        log, make = _completion_logger(eng)
        bus.submit(10.0, dst=0, on_complete=make("a"))
        bus.submit(10.0, dst=1, on_complete=make("b"))
        eng.run()
        assert [t for _, t in log] == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_staggered_arrival_fluid_math(self):
        """b arrives at t=1 while a (20B) is half done: a gets 5 B/s
        afterwards, finishing at t=3; b (10B) finishes at t=3 too."""
        eng, bus = self._bus()
        log, make = _completion_logger(eng)
        bus.submit(20.0, dst=0, on_complete=make("a"))
        eng.schedule(1.0, lambda: bus.submit(10.0, dst=1, on_complete=make("b")))
        eng.run()
        times = dict(log)
        assert times["a"] == pytest.approx(3.0)
        assert times["b"] == pytest.approx(3.0)

    def test_short_transfer_overtakes(self):
        """A short transfer arriving mid-way finishes before a long one."""
        eng, bus = self._bus()
        log, make = _completion_logger(eng)
        bus.submit(100.0, dst=0, on_complete=make("long"))
        eng.schedule(1.0, lambda: bus.submit(5.0, dst=1, on_complete=make("short")))
        eng.run()
        assert log[0][0] == "short"
        # short: starts at 1, rate 5 B/s -> done at t=2
        assert log[0][1] == pytest.approx(2.0)
        # long: 90 B left at t=2, alone again -> 2 + 90/10 = 11... but it
        # progressed 10B before t=1 and 5B during sharing: 100-10-5=85
        assert log[1][1] == pytest.approx(1.0 + 1.0 + 85.0 / 10.0)

    def test_latency_penalises_each_transfer(self):
        eng, bus = self._bus(bandwidth=10.0, latency=1.0)
        log, make = _completion_logger(eng)
        bus.submit(10.0, dst=0, on_complete=make("a"))
        eng.run()
        assert log == [("a", pytest.approx(2.0))]  # 1s latency-equivalent

    def test_total_throughput_conserved(self):
        """N concurrent transfers of S bytes take exactly N*S/B seconds."""
        eng, bus = self._bus(bandwidth=8.0)
        log, make = _completion_logger(eng)
        for i in range(4):
            bus.submit(16.0, dst=i, on_complete=make(i))
        eng.run()
        assert max(t for _, t in log) == pytest.approx(4 * 16.0 / 8.0)
        assert bus.bytes_transferred == 64.0

    def test_busy_flag(self):
        eng, bus = self._bus()
        assert not bus.busy
        bus.submit(10.0, dst=0, on_complete=lambda: None)
        assert bus.busy
        eng.run()
        assert not bus.busy


class TestFactory:
    def test_make_bus_fair(self):
        eng = SimulationEngine()
        assert isinstance(make_bus(eng, BusSpec(model="fair")), FairShareBus)

    def test_make_bus_fifo(self):
        eng = SimulationEngine()
        assert isinstance(make_bus(eng, BusSpec(model="fifo")), FifoBus)
