"""Edge-case tests for runtime mechanics: admission staging, gating,
window interplay, and bookkeeping."""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.eager import Eager
from repro.simulator.runtime import Runtime, simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


class TestAdmissionStaging:
    def test_wide_tasks_stage_rather_than_deadlock(self):
        """Buffer admission: two tasks whose union footprint exceeds
        memory are executed one after the other, not co-buffered."""
        g = TaskGraph()
        a = [g.add_data(1.0) for _ in range(3)]
        b = [g.add_data(1.0) for _ in range(3)]
        g.add_task(a, flops=1.0)
        g.add_task(b, flops=1.0)
        result = simulate(
            g, toy_platform(memory=3.0), Eager(), window=2, record_trace=True
        )
        assert result.gpus[0].n_tasks == 2
        # tasks cannot overlap their data: second starts after first ends
        starts = {e.ref: e.time for e in result.trace.of_kind("task_start")}
        ends = {e.ref: e.time for e in result.trace.of_kind("task_end")}
        assert starts[1] >= ends[0] - 1e-9

    def test_exact_fit_footprints_share_buffer(self):
        g = TaskGraph()
        shared = g.add_data(1.0)
        x, y = g.add_data(1.0), g.add_data(1.0)
        g.add_task([shared, x], flops=1.0)
        g.add_task([shared, y], flops=1.0)
        result = simulate(g, toy_platform(memory=3.0), Eager(), window=2)
        assert result.total_loads == 3  # shared loaded once

    def test_window_larger_than_task_count(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(memory=6.0), Eager(), window=50
        )
        assert result.gpus[0].n_tasks == 9


class TestBookkeeping:
    def test_executed_order_matches_task_end_trace(self, figure1_graph):
        result = simulate(
            figure1_graph,
            toy_platform(n_gpus=2, memory=4.0),
            Eager(),
            record_trace=True,
        )
        for k in range(2):
            ends = [
                e.ref
                for e in result.trace.of_kind("task_end")
                if e.gpu == k
            ]
            assert ends == result.executed_order[k]

    def test_stats_flops_partition_total(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=3, memory=4.0), Eager()
        )
        assert sum(g.flops for g in result.gpus) == pytest.approx(
            result.total_flops
        )

    def test_engine_event_count_reported(self, figure1_graph):
        rt = Runtime(figure1_graph, toy_platform(memory=4.0), Eager())
        rt.run()
        assert rt.engine.events_fired > 0
        assert rt.engine.pending == 0

    def test_makespan_equals_last_task_end(self, figure1_graph):
        result = simulate(
            figure1_graph,
            toy_platform(memory=6.0),
            Eager(),
            record_trace=True,
        )
        last_end = max(e.time for e in result.trace.of_kind("task_end"))
        assert result.makespan == pytest.approx(last_end)


class TestViewQueries:
    def test_missing_bytes_counts_only_absent_inputs(self, figure1_graph):
        rt = Runtime(figure1_graph, toy_platform(memory=4.0), Eager())
        rt.memories[0].request(0)
        rt.engine.run()
        # T0 reads data 0 (present) and 3 (absent)
        assert rt.view.missing_bytes(0, 0) == 1.0
        assert rt.view.missing_inputs(0, 0) == [3]

    def test_view_capacity_and_rates(self, figure1_graph):
        rt = Runtime(figure1_graph, toy_platform(memory=4.0), Eager())
        assert rt.view.capacity(0) == 4.0
        assert rt.view.bus_bandwidth() == 1.0
        assert rt.view.gpu_gflops(0) == pytest.approx(1e-9)

    def test_is_released_true_without_deps(self, figure1_graph):
        rt = Runtime(figure1_graph, toy_platform(memory=4.0), Eager())
        assert all(rt.view.is_released(t) for t in range(9))
        assert not rt.view.has_dependencies


class TestLargerSmoke:
    def test_mid_size_multi_gpu_run_is_consistent(self):
        g = matmul2d(12, data_size=1.0, task_flops=1.0)
        result = simulate(
            g,
            toy_platform(n_gpus=3, memory=8.0, bandwidth=20.0),
            Eager(),
            seed=9,
        )
        assert sum(s.n_tasks for s in result.gpus) == 144
        assert result.total_loads >= 24  # compulsory
        assert result.balance_ratio() < 1.4

    def test_single_task_instance(self):
        g = random_bipartite(1, 2, arity=2, seed=0)
        result = simulate(g, toy_platform(memory=2.0), Eager())
        assert result.gpus[0].n_tasks == 1
        assert result.makespan == pytest.approx(2.0 + 1.0)  # 2 loads + run
