"""Tests for the discrete-event core."""

import pytest

from repro.simulator.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(3.0, lambda: log.append("c"))
        eng.schedule(1.0, lambda: log.append("a"))
        eng.schedule(2.0, lambda: log.append("b"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        eng = SimulationEngine()
        log = []
        for name in "abc":
            eng.schedule(1.0, lambda n=name: log.append(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule(2.5, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [2.5]
        assert eng.now == 2.5

    def test_nested_scheduling_from_callback(self):
        eng = SimulationEngine()
        log = []
        def first():
            log.append(("first", eng.now))
            eng.schedule(1.0, lambda: log.append(("second", eng.now)))
        eng.schedule(1.0, first)
        eng.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_negative_delay_rejected(self):
        eng = SimulationEngine()
        with pytest.raises(ValueError):
            eng.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        eng = SimulationEngine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = SimulationEngine()
        log = []
        h = eng.schedule(1.0, lambda: log.append("x"))
        h.cancel()
        eng.run()
        assert log == []
        assert h.cancelled

    def test_cancel_is_idempotent(self):
        eng = SimulationEngine()
        h = eng.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_pending_ignores_cancelled(self):
        eng = SimulationEngine()
        h1 = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h1.cancel()
        assert eng.pending == 1

    def test_cancel_after_fire_keeps_pending_consistent(self):
        eng = SimulationEngine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.step()
        h.cancel()  # already fired; must not corrupt the live counter
        assert eng.pending == 1
        assert eng.step() is True
        assert eng.pending == 0

    def test_mass_cancel_triggers_compaction_preserving_order(self):
        eng = SimulationEngine()
        log = []
        handles = []
        for i in range(200):
            handles.append(eng.schedule(float(i), lambda i=i: log.append(i)))
        keep = {3, 50, 199}
        for i, h in enumerate(handles):
            if i not in keep:
                h.cancel()
        assert eng.pending == len(keep)
        eng.run()
        assert log == sorted(keep)
        assert eng.pending == 0


class TestCancelThenReschedule:
    """Regression: draining cancelled entries must never advance ``now``
    past a live event scheduled later than the cancelled one."""

    def test_drain_does_not_skip_later_live_event(self):
        eng = SimulationEngine()
        log = []
        h = eng.schedule(10.0, lambda: log.append("stale"))
        h.cancel()
        eng.schedule(4.0, lambda: log.append("live"))
        eng.run(until=6.0)
        assert log == ["live"]
        assert eng.now == 6.0

    def test_reschedule_from_callback_respects_until(self):
        eng = SimulationEngine()
        log = []
        h_d = eng.schedule(3.0, lambda: log.append("d"))

        def c():
            log.append("c")
            h_d.cancel()
            eng.schedule_at(5.0, lambda: log.append("e"))

        eng.schedule(2.0, c)
        eng.run(until=4.0)
        assert log == ["c"]
        assert eng.now == 4.0
        eng.run()
        assert log == ["c", "e"]
        assert eng.now == 5.0

    def test_run_until_never_moves_clock_backward(self):
        eng = SimulationEngine()
        eng.schedule(4.0, lambda: None)
        eng.run()
        assert eng.now == 4.0
        eng.run(until=1.0)
        assert eng.now == 4.0

    def test_run_until_advances_clock_on_empty_heap(self):
        eng = SimulationEngine()
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_run_until_advances_clock_when_all_cancelled(self):
        eng = SimulationEngine()
        h = eng.schedule(10.0, lambda: None)
        h.cancel()
        eng.run(until=7.0)
        assert eng.now == 7.0


class TestRun:
    def test_run_until_stops_clock(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(10.0, lambda: log.append(2))
        eng.run(until=5.0)
        assert log == [1]
        assert eng.now == 5.0

    def test_step_returns_false_when_empty(self):
        assert SimulationEngine().step() is False

    def test_runaway_guard(self):
        eng = SimulationEngine()
        def respawn():
            eng.schedule(0.0, respawn)
        eng.schedule(0.0, respawn)
        with pytest.raises(RuntimeError, match="events"):
            eng.run(max_events=1000)

    def test_events_fired_counter(self):
        eng = SimulationEngine()
        for _ in range(3):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_fired == 3
