"""Fault injection and recovery: GPU loss, corruption, stragglers.

The contract under test (DESIGN.md, "Fault model and recovery"):

* an **empty** fault plan leaves every strategy's trace digest
  byte-identical to a fault-free run;
* a **pinned** plan is reproducible — same plan, same seed, same digest
  (``check_determinism`` double-runs under the strict sanitizer with
  SAN008/SAN009/SAN010 enabled);
* after a device failure every task still completes exactly once, and
  none completes on the dead GPU after its failure time.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.ready import ReadyLists
from repro.schedulers.registry import make_scheduler
from repro.simulator.faults import (
    DeviceFailure,
    FaultPlan,
    StragglerSlowdown,
    TransferCorruption,
    load_fault_plan,
)
from repro.simulator.runtime import simulate
from repro.simulator.sanitizer import check_determinism
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform

SIX_STRATEGIES = ("eager", "dmdar", "mhfp", "hmetis+r", "darts", "darts+luf")


def small_graph(n_tasks=24, seed=3):
    return random_bipartite(n_tasks=n_tasks, n_data=8, arity=2, seed=seed)


def pressured_platform(n_gpus=3):
    return toy_platform(n_gpus=n_gpus, memory=3.0, model="fair")


def pinned_plan(base_makespan, seed=11):
    return FaultPlan(
        seed=seed,
        device_failures=(DeviceFailure(gpu=1, time=0.3 * base_makespan),),
        transfer_faults=TransferCorruption(probability=0.2),
        stragglers=(StragglerSlowdown(gpu=0, factor=1.5),),
    )


def run(name, graph, platform, faults=None, **kwargs):
    sched, eviction = make_scheduler(name)
    return simulate(
        graph, platform, sched, eviction=eviction, faults=faults, **kwargs
    )


class TestFaultPlanValidation:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(
            device_failures=(DeviceFailure(gpu=0, time=1.0),)
        ).is_empty()
        assert not FaultPlan(
            transfer_faults=TransferCorruption(probability=0.1)
        ).is_empty()
        assert not FaultPlan(
            stragglers=(StragglerSlowdown(gpu=0, factor=2.0),)
        ).is_empty()

    def test_failure_gpu_out_of_range_rejected(self):
        plan = FaultPlan(device_failures=(DeviceFailure(gpu=3, time=1.0),))
        with pytest.raises(ValueError, match="GPU 3"):
            plan.validate(2)

    def test_negative_failure_time_rejected(self):
        plan = FaultPlan(device_failures=(DeviceFailure(gpu=0, time=-1.0),))
        with pytest.raises(ValueError, match="< 0"):
            plan.validate(2)

    def test_duplicate_failure_rejected(self):
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(gpu=0, time=1.0),
                DeviceFailure(gpu=0, time=2.0),
            )
        )
        with pytest.raises(ValueError, match="twice"):
            plan.validate(3)

    def test_killing_every_gpu_rejected(self):
        plan = FaultPlan(
            device_failures=(
                DeviceFailure(gpu=0, time=1.0),
                DeviceFailure(gpu=1, time=2.0),
            )
        )
        with pytest.raises(ValueError, match="survive"):
            plan.validate(2)

    def test_bad_probability_rejected(self):
        for p in (-0.1, 1.0, 1.5):
            plan = FaultPlan(transfer_faults=TransferCorruption(probability=p))
            with pytest.raises(ValueError, match="probability"):
                plan.validate(2)

    def test_bad_straggler_rejected(self):
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=5, factor=2.0),))
        with pytest.raises(ValueError, match="GPU 5"):
            plan.validate(2)
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=0, factor=0.0),))
        with pytest.raises(ValueError, match="factor"):
            plan.validate(2)

    def test_roundtrip_through_json(self):
        plan = FaultPlan(
            seed=7,
            device_failures=(DeviceFailure(gpu=1, time=2.5),),
            transfer_faults=TransferCorruption(probability=0.25, max_retries=3),
            stragglers=(StragglerSlowdown(gpu=0, factor=1.5),),
        )
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_load_fault_plan_inline_and_file(self, tmp_path):
        text = json.dumps({"seed": 4, "stragglers": [{"gpu": 0, "factor": 2.0}]})
        inline = load_fault_plan(text)
        path = tmp_path / "plan.json"
        path.write_text(text)
        assert load_fault_plan(str(path)) == inline
        assert inline.stragglers == (StragglerSlowdown(gpu=0, factor=2.0),)

    def test_failure_with_outputs_rejected(self):
        from repro.workloads.matmul2d import matmul2d

        graph = matmul2d(4, with_outputs=True)
        plan = FaultPlan(device_failures=(DeviceFailure(gpu=1, time=1.0),))
        with pytest.raises(ValueError, match="output"):
            run("eager", graph, pressured_platform(), faults=plan)


class TestEmptyPlanIsByteIdentical:
    @pytest.mark.parametrize("name", SIX_STRATEGIES)
    def test_empty_plan_digest_equals_fault_free(self, name):
        graph = small_graph()
        platform = pressured_platform()
        base = run(name, graph, platform, record_trace=True)
        empty = run(
            name, graph, platform, faults=FaultPlan(), record_trace=True
        )
        assert empty.trace.digest() == base.trace.digest()
        assert empty.makespan == base.makespan


class TestRecovery:
    @pytest.mark.parametrize("name", SIX_STRATEGIES)
    def test_pinned_plan_completes_and_is_reproducible(self, name):
        """Device loss + corruption + straggler: every task completes
        exactly once, reproducibly, with SAN008–SAN010 active (the
        strict sanitizer is enabled for the whole test suite)."""
        graph = small_graph()
        platform = pressured_platform()
        base = run(name, graph, platform)
        plan = pinned_plan(base.makespan)
        digest1 = check_determinism(graph, platform, name, faults=plan)
        digest2 = check_determinism(graph, platform, name, faults=plan)
        assert digest1 == digest2

        faulted = run(name, graph, platform, faults=plan, record_trace=True)
        done = sorted(t for order in faulted.executed_order for t in order)
        assert done == list(range(graph.n_tasks))

    @pytest.mark.parametrize("name", SIX_STRATEGIES)
    def test_no_completion_on_dead_gpu_after_failure(self, name):
        graph = small_graph()
        platform = pressured_platform()
        base = run(name, graph, platform)
        t_fail = 0.3 * base.makespan
        plan = FaultPlan(
            seed=2, device_failures=(DeviceFailure(gpu=1, time=t_fail),)
        )
        faulted = run(name, graph, platform, faults=plan, record_trace=True)
        kinds = [e.kind for e in faulted.trace.events]
        assert "device_failed" in kinds
        for e in faulted.trace.events:
            if e.kind == "task_end" and e.gpu == 1:
                assert e.time <= t_fail + 1e-9

    def test_failure_publishes_recovery_events(self):
        graph = small_graph()
        platform = pressured_platform()
        base = run("dmdar", graph, platform)
        plan = FaultPlan(
            seed=2,
            device_failures=(
                DeviceFailure(gpu=1, time=0.3 * base.makespan),
            ),
        )
        faulted = run("dmdar", graph, platform, faults=plan, record_trace=True)
        kinds = {e.kind for e in faulted.trace.events}
        assert "device_failed" in kinds
        assert "replica_lost" in kinds  # GPU 1 held replicas mid-run

    def test_corruption_retries_are_traced_and_slow_the_run(self):
        graph = small_graph()
        platform = pressured_platform()
        base = run("eager", graph, platform, record_trace=True)
        plan = FaultPlan(
            seed=9, transfer_faults=TransferCorruption(probability=0.4)
        )
        faulted = run("eager", graph, platform, faults=plan, record_trace=True)
        kinds = [e.kind for e in faulted.trace.events]
        assert kinds.count("xfer_retry") == kinds.count("xfer_fail") > 0
        assert faulted.makespan >= base.makespan

    def test_straggler_stretches_the_makespan(self):
        graph = small_graph()
        platform = toy_platform(n_gpus=1, memory=3.0, model="fair")
        base = run("eager", graph, platform)
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=0, factor=2.0),))
        slow = run("eager", graph, platform, faults=plan)
        assert slow.makespan > base.makespan

    def test_darts_index_consistent_after_failure(self):
        graph = small_graph()
        platform = pressured_platform()
        sched, eviction = make_scheduler("darts+luf")
        base = simulate(graph, platform, sched, eviction=eviction)
        plan = FaultPlan(
            seed=2,
            device_failures=(DeviceFailure(gpu=1, time=0.3 * base.makespan),),
        )
        sched, eviction = make_scheduler("darts+luf")
        simulate(graph, platform, sched, eviction=eviction, faults=plan)
        sched.check_index()  # dead GPU's rows are skipped, live ones exact


class TestReadyListsDropGpu:
    def test_orphans_move_to_least_loaded_alive_list(self):
        lists = ReadyLists(3)
        lists.assign(0, [0, 1, 2])
        lists.assign(1, [3, 4])
        lists.assign(2, [5])
        lists.drop_gpu(1, requeued=[9])
        assert lists.lists[1] == []
        moved = sorted(lists.lists[0] + lists.lists[2])
        assert moved == [0, 1, 2, 3, 4, 5, 9]
        # GPU 2 started shortest, so it absorbed the bulk of the orphans
        assert len(lists.lists[2]) > 1

    def test_dropping_all_gpus_raises(self):
        lists = ReadyLists(2)
        lists.assign(0, [0])
        lists.assign(1, [1])
        lists.drop_gpu(0, requeued=[])
        with pytest.raises(RuntimeError):
            lists.drop_gpu(1, requeued=[])


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    fault_seed=st.integers(min_value=0, max_value=2**16),
    name=st.sampled_from(["eager", "dmdar", "darts+luf"]),
)
def test_same_fault_seed_same_digest(seed, fault_seed, name):
    """Property: a fixed fault plan is exactly as reproducible as a
    fault-free run — double-run digests match for arbitrary seeds."""
    graph = small_graph(n_tasks=14, seed=seed)
    platform = pressured_platform()
    plan = FaultPlan(
        seed=fault_seed,
        device_failures=(DeviceFailure(gpu=1, time=3.0),),
        transfer_faults=TransferCorruption(probability=0.3),
    )
    digest = check_determinism(graph, platform, name, faults=plan)
    assert digest == check_determinism(graph, platform, name, faults=plan)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_empty_plan_never_perturbs_any_digest(seed):
    """Property: for random instances the empty plan stays invisible."""
    graph = small_graph(n_tasks=12, seed=seed)
    platform = pressured_platform(n_gpus=2)
    for name in ("eager", "darts+luf"):
        base = run(name, graph, platform, record_trace=True)
        empty = run(
            name, graph, platform, faults=FaultPlan(), record_trace=True
        )
        assert empty.trace.digest() == base.trace.digest()
