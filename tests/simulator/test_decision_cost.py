"""Tests for the virtual decision-cost model (op counts gate task start)."""

import pytest

from repro.schedulers.darts import Darts
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


class TestDecisionCostModel:
    def test_zero_cost_disables_gating(self, figure1_graph):
        r = simulate(
            figure1_graph,
            toy_platform(memory=4.0),
            Darts(),
            eviction="luf",
            decision_op_cost=0.0,
        )
        assert r.virtual_decision_time == 0.0

    def test_cost_scales_with_op_price(self, figure1_graph):
        times = []
        for cost in (1e-9, 1e-6):
            r = simulate(
                figure1_graph,
                toy_platform(memory=4.0),
                Darts(),
                eviction="luf",
                decision_op_cost=cost,
                seed=1,
            )
            times.append(r.virtual_decision_time)
        assert times[1] > times[0] > 0.0
        assert times[1] == pytest.approx(times[0] * 1000, rel=1e-6)

    def test_expensive_decisions_extend_makespan(self, figure1_graph):
        cheap = simulate(
            figure1_graph,
            toy_platform(memory=4.0),
            Darts(),
            eviction="luf",
            decision_op_cost=0.0,
            seed=1,
        )
        dear = simulate(
            figure1_graph,
            toy_platform(memory=4.0),
            Darts(),
            eviction="luf",
            decision_op_cost=0.5,  # absurdly slow scheduler
            seed=1,
        )
        assert dear.makespan > cheap.makespan
        assert dear.gflops < cheap.gflops

    def test_negative_cost_rejected(self, figure1_graph):
        with pytest.raises(ValueError):
            simulate(
                figure1_graph,
                toy_platform(memory=4.0),
                Eager(),
                decision_op_cost=-1.0,
            )

    def test_eager_charges_almost_nothing(self, figure1_graph):
        r = simulate(figure1_graph, toy_platform(memory=4.0), Eager())
        # one op per pop: 10 pops x 50 ns
        assert r.virtual_decision_time < 1e-5

    def test_darts_scan_cost_grows_with_instance(self):
        small = matmul2d(4, data_size=1.0, task_flops=1.0)
        large = matmul2d(8, data_size=1.0, task_flops=1.0)
        times = []
        for g in (small, large):
            sched, ev = make_scheduler("darts+luf")
            r = simulate(
                g,
                toy_platform(memory=5.0, bandwidth=10.0),
                sched,
                eviction=ev,
                seed=1,
            )
            times.append(r.virtual_decision_time)
        assert times[1] > times[0]

    def test_opti_charges_fewer_ops_than_full_scan(self):
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        full = simulate(
            g,
            toy_platform(memory=5.0, bandwidth=10.0),
            Darts(),
            eviction="luf",
            seed=1,
        )
        opti = simulate(
            g,
            toy_platform(memory=5.0, bandwidth=10.0),
            Darts(opti=True),
            eviction="luf",
            seed=1,
        )
        assert opti.virtual_decision_time < full.virtual_decision_time

    def test_decision_wall_time_recorded_separately(self, figure1_graph):
        r = simulate(figure1_graph, toy_platform(memory=4.0), Eager())
        assert r.decision_wall_time >= 0.0
        assert r.scheduling_time >= r.prepare_time
