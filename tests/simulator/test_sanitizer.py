"""The trace sanitizer: clean runs are silent, injected bugs are caught."""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.eager import Eager
from repro.schedulers.registry import make_scheduler
from repro.simulator import sanitizer as sanmod
from repro.simulator.memory import DeviceMemory
from repro.simulator.runtime import Runtime, simulate
from repro.simulator.sanitizer import (
    Sanitizer,
    SanitizerError,
    check_determinism,
    sanitized,
)
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


def small_graph() -> TaskGraph:
    return random_bipartite(n_tasks=12, n_data=6, arity=2, seed=3)


class TestCleanRuns:
    def test_clean_run_has_zero_violations(self):
        san = Sanitizer(strict=False)
        simulate(
            small_graph(),
            toy_platform(n_gpus=2, memory=3.0),
            Eager(),
            sanitize=san,
        )
        assert san.violations == []
        assert san.summary() == "sanitizer: no violations"

    @pytest.mark.parametrize(
        "name", ["eager", "dmdar", "mhfp", "hmetis+r", "darts+luf"]
    )
    def test_all_schedulers_sanitize_cleanly(self, name):
        san = Sanitizer(strict=False)
        sched, eviction = make_scheduler(name)
        simulate(
            small_graph(),
            toy_platform(n_gpus=2, memory=3.0, model="fair"),
            sched,
            eviction=eviction,
            sanitize=san,
        )
        assert san.violations == []

    def test_global_enable_attaches_sanitizer(self):
        from repro.simulator.events import (
            EngineStep,
            EvictionStarted,
            MemoryUsageChanged,
            TaskStarted,
            TransferCompleted,
        )

        with sanitized():
            rt = Runtime(small_graph(), toy_platform(memory=6.0), Eager())
        assert rt.sanitizer is not None
        # The sanitizer's checks ride the shared event stream, which the
        # engine, buses and memories all publish on.
        for et in (
            EngineStep,
            MemoryUsageChanged,
            EvictionStarted,
            TransferCompleted,
            TaskStarted,
        ):
            assert rt.events.wants(et)
        assert rt.engine.events is rt.events
        assert rt.memories[0].events is rt.events
        assert rt.bus.events is rt.events

    def test_explicit_false_overrides_global_enable(self):
        with sanitized():
            rt = Runtime(
                small_graph(), toy_platform(memory=6.0), Eager(), sanitize=False
            )
        assert rt.sanitizer is None

    def test_disabled_by_default_outside_suite_switch(self):
        assert sanmod.is_enabled()  # autouse fixture holds the switch


class TestInjectedMemoryOverrun:
    def test_memory_cap_overrun_detected(self, monkeypatch):
        """Disable eviction-for-space: fetches then overrun the cap."""
        monkeypatch.setattr(
            DeviceMemory, "_make_room", lambda self, size, protected=frozenset(): True
        )
        with pytest.raises(SanitizerError, match="SAN001"):
            simulate(
                small_graph(),
                toy_platform(n_gpus=1, memory=3.0),
                Eager(),
                sanitize=True,
            )

    def test_overrun_collected_when_not_strict(self, monkeypatch):
        monkeypatch.setattr(
            DeviceMemory, "_make_room", lambda self, size, protected=frozenset(): True
        )
        san = Sanitizer(strict=False)
        # The run still dies on the memory manager's own final
        # accounting assert; the sanitizer collected the overrun first.
        with pytest.raises(AssertionError):
            simulate(
                small_graph(),
                toy_platform(n_gpus=1, memory=3.0),
                Eager(),
                sanitize=san,
            )
        assert any(v.code == "SAN001" for v in san.violations)
        assert "SAN001" in san.summary()


class TestInjectedPinnedEviction:
    def test_pinned_eviction_detected(self):
        """The sanitizer fires before the memory manager's own guard."""
        rt = Runtime(
            small_graph(), toy_platform(n_gpus=1, memory=4.0), Eager(),
            sanitize=True,
        )
        mem = rt.memories[0]
        mem.request(0)
        rt.engine.run()  # complete the fetch
        assert mem.is_present(0)
        mem.pin(0)
        with pytest.raises(SanitizerError, match="SAN003"):
            mem.evict(0)

    def test_leaky_candidate_set_detected_in_full_run(self, monkeypatch):
        """Mid-simulation injection: pins that are never released pile up
        until MRU, fed a candidate set leaking pinned entries, evicts a
        pinned datum — the sanitizer stops the run with SAN003."""
        real = DeviceMemory.evictable

        def leaky(self):
            out = real(self)
            out |= {
                d
                for d in self._state
                if self.is_present(d) and self.is_pinned(d)
            }
            return out

        monkeypatch.setattr(DeviceMemory, "evictable", leaky)
        monkeypatch.setattr(DeviceMemory, "unpin", lambda self, d: None)
        with pytest.raises(SanitizerError, match="SAN003"):
            simulate(
                small_graph(),
                toy_platform(n_gpus=1, memory=3.0),
                Eager(),
                eviction="mru",
                sanitize=True,
            )


class TestEventMonotonicity:
    def test_backwards_event_reported(self):
        san = Sanitizer(strict=False)
        san.on_event(5.0, 5.0)
        san.on_event(4.0, 5.0)
        assert [v.code for v in san.violations] == ["SAN005"]

    def test_strict_raises(self):
        san = Sanitizer(strict=True)
        san.on_event(5.0, 5.0)
        with pytest.raises(SanitizerError, match="SAN005"):
            san.on_event(1.0, 5.0)


class TestBusConservation:
    def test_clean_fair_bus_run_passes(self):
        san = Sanitizer(strict=False)
        simulate(
            small_graph(),
            toy_platform(n_gpus=2, memory=3.0, model="fair"),
            Eager(),
            sanitize=san,
        )
        assert not [v for v in san.violations if v.code == "SAN004"]

    def test_overdelivering_bus_detected(self):
        """A bus that reports transfers faster than its bandwidth."""

        class FakeSpec:
            bandwidth = 1.0
            latency = 0.0

        class FakeBus:
            spec = FakeSpec()
            bytes_transferred = 100.0  # delivered at t=1 on a 1 B/s link
            n_transfers = 1

        san = Sanitizer(strict=False)
        san.on_transfer(FakeBus(), now=1.0)
        assert [v.code for v in san.violations] == ["SAN004"]


class TestReplayCrossCheck:
    def test_fixed_schedule_order_respected(self):
        from repro.core.schedule import Schedule
        from repro.schedulers.fixed import FixedSchedule

        g = small_graph()
        sched = Schedule(order=[list(range(6)), list(range(6, 12))])
        san = Sanitizer(strict=False)
        simulate(
            g,
            toy_platform(n_gpus=2, memory=4.0),
            FixedSchedule(sched),
            sanitize=san,
        )
        assert san.violations == []

    def test_lost_load_detected(self):
        """Undercounting loads trips the Belady lower bound (SAN006)."""
        g = small_graph()
        rt = Runtime(
            g, toy_platform(n_gpus=1, memory=3.0), Eager(), sanitize=True
        )
        rt.run()
        san = Sanitizer(strict=False)
        rt.memories[0].n_loads = 0  # inject the undercount
        san.after_run(rt)
        assert any(v.code == "SAN006" for v in san.violations)


class TestDeterminismDigest:
    def test_same_seed_same_digest(self):
        digest = check_determinism(
            small_graph(), toy_platform(n_gpus=2, memory=3.0), "eager", seed=7
        )
        assert len(digest) == 64

    def test_digest_differs_across_traces(self):
        g = small_graph()
        plat = toy_platform(n_gpus=2, memory=3.0)
        a = simulate(g, plat, Eager(), record_trace=True)
        sched, ev = make_scheduler("darts+luf")
        b = simulate(g, plat, sched, eviction=ev, record_trace=True)
        assert a.trace_digest is not None and b.trace_digest is not None
        assert a.trace_digest != b.trace_digest

    def test_digest_absent_without_trace(self):
        r = simulate(small_graph(), toy_platform(memory=6.0), Eager())
        assert r.trace_digest is None
