"""Tests for NVLink-style peer-to-peer transfers (paper §VI extension)."""

import pytest

from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec, tesla_v100_node
from repro.schedulers.eager import Eager
from repro.schedulers.fixed import FixedSchedule
from repro.core.schedule import Schedule
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


def peer_platform(n_gpus=2, memory=4.0, host_bw=1.0, peer_bw=10.0):
    return PlatformSpec(
        gpus=[GpuSpec(name="toy", gflops=1e-9, memory_bytes=memory)] * n_gpus,
        bus=BusSpec(bandwidth=host_bw, latency=0.0, model="fifo"),
        peer_link=BusSpec(bandwidth=peer_bw, latency=0.0, model="fair"),
    )


class TestPeerRouting:
    def test_second_gpu_fetches_from_first(self, figure1_graph):
        """GPU1 runs the same tasks later: its data comes over peers."""
        sched = FixedSchedule(
            Schedule(order=[[0, 1, 2, 3, 4], [5, 6, 7, 8]])
        )
        result = simulate(figure1_graph, peer_platform(memory=6.0), sched)
        assert result.bytes_from_peer > 0
        assert result.peer_fraction > 0

    def test_no_peer_without_link(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=6.0), Eager()
        )
        assert result.bytes_from_peer == 0.0
        assert result.bytes_from_host == result.total_bytes
        assert result.peer_fraction == 0.0

    def test_traffic_split_adds_up(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(memory=6.0), Eager())
        assert result.bytes_from_host + result.bytes_from_peer == (
            pytest.approx(result.total_bytes)
        )

    def test_single_gpu_never_uses_peers(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(n_gpus=1), Eager())
        assert result.bytes_from_peer == 0.0

    def test_all_tasks_still_execute(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(memory=3.0), Eager())
        assert sum(g.n_tasks for g in result.gpus) == 9


class TestPeerSemantics:
    def test_fast_peers_speed_up_replicated_schedules(self):
        """A schedule replicating one matrix on both GPUs benefits from
        peer links (the paper's §VI motivation)."""
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        # column-partition: both GPUs need all row data of A.  GPU1
        # walks the rows in reverse so its late rows are already
        # resident on GPU0 (simultaneous fetches cannot peer: the copy
        # is not PRESENT anywhere yet).
        left = [i * 8 + j for i in range(8) for j in range(4)]
        right = [i * 8 + j for i in reversed(range(8)) for j in range(4, 8)]
        sched_plain = FixedSchedule(Schedule(order=[left, right]))
        sched_peer = FixedSchedule(Schedule(order=[left, right]))
        plain = simulate(
            g,
            PlatformSpec(
                gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=16.0)] * 2,
                bus=BusSpec(bandwidth=1.0, latency=0.0, model="fifo"),
            ),
            sched_plain,
        )
        peered = simulate(g, peer_platform(memory=16.0, peer_bw=50.0),
                          sched_peer)
        assert peered.bytes_from_peer > 0
        assert peered.makespan <= plain.makespan

    def test_peer_source_pinned_during_copy(self, figure1_graph):
        """Runs to completion without eviction races; invariants checked
        by the runtime's post-run assertions."""
        result = simulate(
            figure1_graph, peer_platform(memory=2.0), Eager(), seed=3
        )
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_deterministic_with_peers(self, figure1_graph):
        a = simulate(figure1_graph, peer_platform(memory=3.0), Eager(), seed=7)
        b = simulate(figure1_graph, peer_platform(memory=3.0), Eager(), seed=7)
        assert a.makespan == b.makespan
        assert a.bytes_from_peer == b.bytes_from_peer


class TestPreset:
    def test_nvlink_flag(self):
        plat = tesla_v100_node(4, nvlink=True)
        assert plat.peer_link is not None
        assert plat.peer_link.bandwidth == 48e9
        assert tesla_v100_node(4).peer_link is None
