"""Tests for NVLink-style peer-to-peer transfers (paper §VI extension)."""

import pytest

from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec, tesla_v100_node
from repro.schedulers.eager import Eager
from repro.schedulers.fixed import FixedSchedule
from repro.core.schedule import Schedule
from repro.simulator.bus import FifoBus
from repro.simulator.engine import SimulationEngine
from repro.simulator.fabric import PeerFabric
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


def peer_platform(n_gpus=2, memory=4.0, host_bw=1.0, peer_bw=10.0):
    return PlatformSpec(
        gpus=[GpuSpec(name="toy", gflops=1e-9, memory_bytes=memory)] * n_gpus,
        bus=BusSpec(bandwidth=host_bw, latency=0.0, model="fifo"),
        peer_link=BusSpec(bandwidth=peer_bw, latency=0.0, model="fair"),
    )


class TestPeerRouting:
    def test_second_gpu_fetches_from_first(self, figure1_graph):
        """GPU1 runs the same tasks later: its data comes over peers."""
        sched = FixedSchedule(
            Schedule(order=[[0, 1, 2, 3, 4], [5, 6, 7, 8]])
        )
        result = simulate(figure1_graph, peer_platform(memory=6.0), sched)
        assert result.bytes_from_peer > 0
        assert result.peer_fraction > 0

    def test_no_peer_without_link(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=6.0), Eager()
        )
        assert result.bytes_from_peer == 0.0
        assert result.bytes_from_host == result.total_bytes
        assert result.peer_fraction == 0.0

    def test_traffic_split_adds_up(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(memory=6.0), Eager())
        assert result.bytes_from_host + result.bytes_from_peer == (
            pytest.approx(result.total_bytes)
        )

    def test_single_gpu_never_uses_peers(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(n_gpus=1), Eager())
        assert result.bytes_from_peer == 0.0

    def test_all_tasks_still_execute(self, figure1_graph):
        result = simulate(figure1_graph, peer_platform(memory=3.0), Eager())
        assert sum(g.n_tasks for g in result.gpus) == 9


class TestPeerSemantics:
    def test_fast_peers_speed_up_replicated_schedules(self):
        """A schedule replicating one matrix on both GPUs benefits from
        peer links (the paper's §VI motivation)."""
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        # column-partition: both GPUs need all row data of A.  GPU1
        # walks the rows in reverse so its late rows are already
        # resident on GPU0 (simultaneous fetches cannot peer: the copy
        # is not PRESENT anywhere yet).
        left = [i * 8 + j for i in range(8) for j in range(4)]
        right = [i * 8 + j for i in reversed(range(8)) for j in range(4, 8)]
        sched_plain = FixedSchedule(Schedule(order=[left, right]))
        sched_peer = FixedSchedule(Schedule(order=[left, right]))
        plain = simulate(
            g,
            PlatformSpec(
                gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=16.0)] * 2,
                bus=BusSpec(bandwidth=1.0, latency=0.0, model="fifo"),
            ),
            sched_plain,
        )
        peered = simulate(g, peer_platform(memory=16.0, peer_bw=50.0),
                          sched_peer)
        assert peered.bytes_from_peer > 0
        assert peered.makespan <= plain.makespan

    def test_peer_source_pinned_during_copy(self, figure1_graph):
        """Runs to completion without eviction races; invariants checked
        by the runtime's post-run assertions."""
        result = simulate(
            figure1_graph, peer_platform(memory=2.0), Eager(), seed=3
        )
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_deterministic_with_peers(self, figure1_graph):
        a = simulate(figure1_graph, peer_platform(memory=3.0), Eager(), seed=7)
        b = simulate(figure1_graph, peer_platform(memory=3.0), Eager(), seed=7)
        assert a.makespan == b.makespan
        assert a.bytes_from_peer == b.bytes_from_peer


class StubMemory:
    """Just enough DeviceMemory surface for source-selection tests."""

    def __init__(self, present=(), evicting=()):
        self._present = set(present)
        self._evicting = set(evicting)
        self.pinned = []

    def is_present(self, d):
        return d in self._present

    def is_evicting(self, d):
        return d in self._evicting

    def pin(self, d):
        self.pinned.append(d)

    def unpin(self, d):
        self.pinned.remove(d)


def make_fabric(memories):
    eng = SimulationEngine()
    host = FifoBus(eng, BusSpec(bandwidth=1.0, latency=0.0, model="fifo"))
    fabric = PeerFabric(
        eng,
        host,
        BusSpec(bandwidth=10.0, latency=0.0, model="fair"),
        n_gpus=len(memories),
    )
    fabric.attach(memories)
    return eng, fabric


class TestSourceSelection:
    def test_lowest_index_tie_break(self):
        _, fabric = make_fabric(
            [StubMemory(present={5}), StubMemory(present={5}), StubMemory()]
        )
        assert fabric._locate(5, dst=2) == 0

    def test_destination_never_chosen(self):
        _, fabric = make_fabric([StubMemory(present={5}), StubMemory()])
        assert fabric._locate(5, dst=0) is None

    def test_skips_source_mid_eviction(self):
        """Regression: the lowest-index GPU used to be chosen even while
        its copy was mid-eviction (between victim selection and state
        removal), handing the peer transfer a copy that no longer exists
        by the time it would read it."""
        _, fabric = make_fabric(
            [
                StubMemory(present={5}, evicting={5}),
                StubMemory(present={5}),
                StubMemory(),
            ]
        )
        assert fabric._locate(5, dst=2) == 1

    def test_falls_back_to_host_when_all_copies_evicting(self):
        eng, fabric = make_fabric(
            [StubMemory(present={5}, evicting={5}), StubMemory()]
        )
        assert fabric._locate(5, dst=1) is None
        done = []
        fabric.submit(1.0, dst=1, on_complete=lambda: done.append(True))
        eng.run()
        assert done == [True]
        assert fabric.bytes_from_host == 1.0
        assert fabric.bytes_from_peer == 0.0

    def test_peer_source_pinned_until_copy_lands(self):
        src = StubMemory(present={5})
        eng, fabric = make_fabric([src, StubMemory()])
        fabric.submit(1.0, dst=1, on_complete=lambda: None, data_id=5)
        assert src.pinned == [5]  # in flight: copy protected
        eng.run()
        assert src.pinned == []  # landed: pin released
        assert fabric.bytes_from_peer == 1.0


class TestPreset:
    def test_nvlink_flag(self):
        plat = tesla_v100_node(4, nvlink=True)
        assert plat.peer_link is not None
        assert plat.peer_link.bandwidth == 48e9
        assert tesla_v100_node(4).peer_link is None
