"""Tests for the per-GPU memory manager."""

import pytest

from repro.platform.spec import BusSpec
from repro.simulator.bus import FifoBus
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import Evicted, FetchCompleted
from repro.simulator.memory import (
    DataState,
    DeviceMemory,
    EvictionPolicyProtocol,
    MemoryFullError,
)
from repro.simulator.routing import HostRouter


class ScriptedPolicy(EvictionPolicyProtocol):
    """Evicts the smallest-id candidate; records every notification."""

    name = "scripted"

    def __init__(self):
        self.inserted, self.evicted, self.accessed = [], [], []

    def on_insert(self, d):
        self.inserted.append(d)

    def on_access(self, d):
        self.accessed.append(d)

    def on_evict(self, d):
        self.evicted.append(d)

    def choose_victim(self, candidates):
        return min(candidates)


def make_memory(capacity=4.0, sizes=None, bandwidth=1.0):
    eng = SimulationEngine()
    bus = FifoBus(
        eng,
        BusSpec(bandwidth=bandwidth, latency=0.0, model="fifo"),
        events=eng.events,
    )
    ready, evicted = [], []
    policy = ScriptedPolicy()
    mem = DeviceMemory(
        engine=eng,
        router=HostRouter(bus),
        gpu_index=0,
        capacity_bytes=capacity,
        data_sizes=sizes or [1.0] * 10,
        policy=policy,
        events=eng.events,
    )
    eng.events.subscribe(lambda e: ready.append(e.data_id), FetchCompleted)
    eng.events.subscribe(lambda e: evicted.append(e.data_id), Evicted)
    return eng, mem, policy, ready, evicted


class TestFetching:
    def test_request_fetches_and_becomes_present(self):
        eng, mem, policy, ready, _ = make_memory()
        mem.request(3)
        assert mem.state(3) is DataState.FETCHING
        eng.run()
        assert mem.is_present(3)
        assert ready == [3]
        assert mem.n_loads == 1
        assert mem.bytes_loaded == 1.0

    def test_request_is_idempotent_while_fetching(self):
        eng, mem, *_ = make_memory()
        mem.request(3)
        mem.request(3)
        eng.run()
        assert mem.n_loads == 1

    def test_request_of_present_datum_is_noop(self):
        eng, mem, *_ = make_memory()
        mem.request(3)
        eng.run()
        mem.request(3)
        eng.run()
        assert mem.n_loads == 1

    def test_space_reserved_at_fetch_start(self):
        eng, mem, *_ = make_memory(capacity=2.0)
        mem.request(0)
        mem.request(1)
        assert mem.used == 2.0
        assert mem.free == 0.0

    def test_oversized_datum_rejected(self):
        eng, mem, *_ = make_memory(capacity=2.0, sizes=[5.0])
        with pytest.raises(MemoryFullError):
            mem.request(0)


class TestEviction:
    def test_full_memory_evicts_via_policy(self):
        eng, mem, policy, ready, evicted = make_memory(capacity=2.0)
        mem.request(0)
        mem.request(1)
        eng.run()
        mem.request(2)  # must evict datum 0 (scripted: smallest id)
        eng.run()
        assert evicted == [0]
        assert policy.evicted == [0]
        assert mem.is_present(2)
        assert not mem.holds(0)
        assert mem.n_evictions == 1

    def test_pinned_data_never_evicted(self):
        eng, mem, policy, _, evicted = make_memory(capacity=2.0)
        mem.request(0)
        mem.request(1)
        eng.run()
        mem.pin(0)
        mem.request(2)
        eng.run()
        assert evicted == [1]  # 0 was protected
        mem.unpin(0)

    def test_fetching_data_not_evictable(self):
        eng, mem, *_ = make_memory(capacity=2.0, bandwidth=0.01)
        mem.request(0)  # slow fetch in flight
        mem.request(1)
        # memory is full of FETCHING data; a third request must wait
        mem.request(2)
        assert mem.state(2) is None
        eng.run()
        assert mem.is_present(2)  # eventually satisfied after evictions

    def test_explicit_evict_validates_state(self):
        eng, mem, *_ = make_memory()
        with pytest.raises(ValueError, match="non-present"):
            mem.evict(7)
        mem.request(1)
        eng.run()
        mem.pin(1)
        with pytest.raises(ValueError, match="pinned"):
            mem.evict(1)

    def test_pending_queue_preserves_request_order(self):
        eng, mem, policy, ready, _ = make_memory(capacity=1.0, bandwidth=100.0)
        mem.request(0)
        mem.request(1)
        mem.request(2)
        eng.run()
        assert ready == [0, 1, 2]


class TestPinning:
    def test_pin_refcounts(self):
        eng, mem, *_ = make_memory()
        mem.request(0)
        eng.run()
        mem.pin(0)
        mem.pin(0)
        mem.unpin(0)
        assert mem.is_pinned(0)
        mem.unpin(0)
        assert not mem.is_pinned(0)

    def test_unpin_without_pin_raises(self):
        eng, mem, *_ = make_memory()
        with pytest.raises(ValueError, match="unpin"):
            mem.unpin(0)

    def test_unpin_unblocks_pending_fetch(self):
        eng, mem, *_ = make_memory(capacity=1.0)
        mem.request(0)
        eng.run()
        mem.pin(0)
        mem.request(1)  # blocked: the only resident datum is pinned
        eng.run()
        assert not mem.holds(1)
        mem.unpin(0)  # now 0 is evictable; fetch of 1 launches
        eng.run()
        assert mem.is_present(1)


class TestQueriesAndInvariants:
    def test_sets(self):
        eng, mem, *_ = make_memory(bandwidth=0.5)
        mem.request(0)
        eng.run()
        mem.request(1)
        assert mem.present_set() == {0}
        assert mem.fetching_set() == {1}
        assert mem.held_set() == {0, 1}
        eng.run()

    def test_touch_notifies_policy(self):
        eng, mem, policy, *_ = make_memory()
        mem.request(0)
        eng.run()
        mem.touch(0)
        assert policy.accessed == [0]

    def test_invariants_hold_after_activity(self):
        eng, mem, *_ = make_memory(capacity=3.0)
        for d in range(6):
            mem.request(d)
        eng.run()
        mem.check_invariants()

    def test_rogue_policy_detected(self):
        class Rogue(EvictionPolicyProtocol):
            name = "rogue"

            def choose_victim(self, candidates):
                return 99

        eng = SimulationEngine()
        bus = FifoBus(eng, BusSpec(bandwidth=1.0, latency=0.0, model="fifo"))
        mem = DeviceMemory(
            engine=eng,
            router=HostRouter(bus),
            gpu_index=0,
            capacity_bytes=1.0,
            data_sizes=[1.0] * 4,
            policy=Rogue(),
        )
        mem.request(0)
        eng.run()
        with pytest.raises(RuntimeError, match="non-candidate"):
            mem.request(1)
