"""Tests for the output-data extension (paper: "our model could easily
be extended to integrate task output")."""

import pytest

from repro.core.problem import TaskGraph
from repro.dag.deps import DependencySet
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate

from tests.conftest import toy_platform


def producer_consumer(chain_len=3, size=1.0):
    """T_i reads D_i and produces D_{i+1}."""
    g = TaskGraph()
    data = [g.add_data(size, name=f"D{i}") for i in range(chain_len + 1)]
    for i in range(chain_len):
        g.add_task([data[i]], flops=1.0, outputs=[data[i + 1]], name=f"T{i}")
    deps = DependencySet(chain_len, [(i, i + 1) for i in range(chain_len - 1)])
    return g, deps


class TestGraphModel:
    def test_outputs_recorded(self):
        g, _ = producer_consumer(2)
        assert g.outputs_of(0) == (1,)
        assert g.producer_of(1) == 0
        assert g.producer_of(0) is None
        assert g.is_produced(1) and not g.is_produced(0)
        assert g.has_outputs
        g.validate()

    def test_task_footprint_includes_outputs(self):
        g, _ = producer_consumer(1, size=2.0)
        assert g.task_footprint_bytes(0) == 4.0

    def test_double_producer_rejected(self):
        g = TaskGraph()
        a, b = g.add_data(1.0), g.add_data(1.0)
        g.add_task([a], flops=1.0, outputs=[b])
        with pytest.raises(ValueError, match="already produced"):
            g.add_task([a], flops=1.0, outputs=[b])

    def test_input_output_overlap_rejected(self):
        g = TaskGraph()
        a = g.add_data(1.0)
        with pytest.raises(ValueError, match="input and output"):
            g.add_task([a], flops=1.0, outputs=[a])


class TestRuntimeSemantics:
    def test_chain_executes_with_stores(self):
        g, deps = producer_consumer(3)
        sched, _ = make_scheduler("eager")
        result = simulate(
            g, toy_platform(memory=4.0), sched, dependencies=deps
        )
        assert sum(s.n_tasks for s in result.gpus) == 3
        assert result.total_stores == 3
        assert result.total_stored_bytes == 3.0

    def test_consumer_without_dependency_rejected(self):
        g, _ = producer_consumer(2)
        sched, _ = make_scheduler("eager")
        with pytest.raises(ValueError, match="depend on its producer"):
            simulate(g, toy_platform(memory=4.0), sched)

    def test_cross_gpu_consumer_waits_for_writeback(self):
        """Producer on GPU0, consumer forced to GPU1: the consumer's
        fetch can only start once the write-back completed."""
        from repro.core.schedule import Schedule
        from repro.schedulers.fixed import FixedSchedule

        g, deps = producer_consumer(2)
        sched = FixedSchedule(Schedule(order=[[0], [1]]))
        result = simulate(
            g,
            toy_platform(n_gpus=2, memory=4.0),
            sched,
            dependencies=deps,
            record_trace=True,
        )
        assert result.executed_order == [[0], [1]]
        store_end = [
            e.time for e in result.trace.events if e.kind == "store_end"
            and e.ref == 1
        ][0]
        fetch_start = [
            e.time
            for e in result.trace.events
            if e.kind == "fetch_start" and e.gpu == 1 and e.ref == 1
        ][0]
        assert fetch_start >= store_end - 1e-9

    def test_writeback_extends_makespan(self):
        g = TaskGraph()
        a, out = g.add_data(1.0), g.add_data(5.0)
        g.add_task([a], flops=1.0, outputs=[out])
        sched, _ = make_scheduler("eager")
        result = simulate(g, toy_platform(memory=10.0), sched)
        # load 1s + compute 1s + store 5s
        assert result.makespan == pytest.approx(7.0)

    def test_outputs_count_in_admission(self):
        """A task whose inputs+outputs exceed memory is rejected."""
        g = TaskGraph()
        a = g.add_data(2.0)
        out = g.add_data(2.0)
        g.add_task([a], flops=1.0, outputs=[out])
        sched, _ = make_scheduler("eager")
        from repro.simulator.memory import MemoryFullError

        with pytest.raises(MemoryFullError):
            simulate(g, toy_platform(memory=3.0), sched)

    def test_output_evictable_after_store(self):
        """Once written back, outputs free their space for later tasks."""
        g = TaskGraph()
        data = [g.add_data(1.0) for _ in range(4)]
        outs = [g.add_data(1.0) for _ in range(4)]
        for i in range(4):
            g.add_task([data[i]], flops=1.0, outputs=[outs[i]])
        sched, _ = make_scheduler("eager")
        result = simulate(g, toy_platform(memory=2.0), sched, window=1)
        assert sum(s.n_tasks for s in result.gpus) == 4
        assert result.total_evictions > 0

    def test_stats_split_loads_and_stores(self):
        g, deps = producer_consumer(2)
        sched, _ = make_scheduler("eager")
        result = simulate(
            g, toy_platform(memory=4.0), sched, dependencies=deps
        )
        # only D0 is ever loaded (consumers reuse the local copy)
        assert result.total_loads == 1
        assert result.total_stores == 2

    def test_works_with_all_dynamic_schedulers(self):
        g, deps = producer_consumer(4)
        for name in ("eager", "dmdar", "darts+luf"):
            sched, ev = make_scheduler(name)
            result = simulate(
                g,
                toy_platform(n_gpus=2, memory=4.0),
                sched,
                eviction=ev,
                dependencies=deps,
                seed=2,
            )
            assert sum(s.n_tasks for s in result.gpus) == 4, name

    def test_peer_fabric_serves_produced_data(self):
        """With NVLink, a consumer can pull the output from the producer
        GPU without waiting for host residency."""
        from repro.core.schedule import Schedule
        from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec
        from repro.schedulers.fixed import FixedSchedule

        g, deps = producer_consumer(2)
        plat = PlatformSpec(
            gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=4.0)] * 2,
            bus=BusSpec(bandwidth=0.1, latency=0.0, model="fifo"),
            peer_link=BusSpec(bandwidth=100.0, latency=0.0, model="fair"),
        )
        sched = FixedSchedule(Schedule(order=[[0], [1]]))
        result = simulate(g, plat, sched, dependencies=deps)
        assert result.bytes_from_peer > 0
