"""Integration tests for the StarPU-like runtime."""

import pytest

from repro.core.schedule import Schedule
from repro.schedulers.eager import Eager
from repro.schedulers.fixed import FixedSchedule
from repro.simulator.runtime import Runtime, simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


def unit_graph(n_tasks=4, n_data=4, arity=2, seed=0):
    return random_bipartite(
        n_tasks, n_data, arity=arity, data_size=1.0, task_flops=1.0, seed=seed
    )


class TestBasicExecution:
    def test_all_tasks_execute_exactly_once(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(memory=4.0), Eager(), seed=0
        )
        executed = [t for order in result.executed_order for t in order]
        assert sorted(executed) == list(range(9))
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_makespan_at_least_compute_bound(self, figure1_graph):
        # 9 unit tasks at 1 flop/s on one toy GPU: >= 9 seconds
        result = simulate(
            figure1_graph, toy_platform(memory=6.0), Eager(), seed=0
        )
        assert result.makespan >= 9.0

    def test_makespan_at_least_transfer_bound(self, figure1_graph):
        # 6 unit data over a 1 B/s bus: >= 6 seconds regardless of order
        result = simulate(
            figure1_graph, toy_platform(memory=6.0, gflops=1000.0), Eager()
        )
        assert result.makespan >= 6.0

    def test_unlimited_memory_loads_compulsory_only(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(memory=100.0), Eager(), seed=0
        )
        assert result.total_loads == 6
        assert result.total_evictions == 0

    def test_flops_accounted(self, figure1_graph):
        result = simulate(figure1_graph, toy_platform(memory=6.0), Eager())
        assert result.total_flops == 9.0
        assert sum(g.flops for g in result.gpus) == 9.0

    def test_single_input_tasks(self):
        g = unit_graph(n_tasks=5, n_data=3, arity=1)
        result = simulate(g, toy_platform(memory=2.0), Eager())
        assert sum(s.n_tasks for s in result.gpus) == 5


class TestMemoryPressure:
    def test_constrained_memory_causes_evictions(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(memory=2.0), Eager(), seed=0
        )
        assert result.total_evictions > 0
        assert result.total_loads > 6

    def test_loads_match_bytes(self, figure1_graph):
        result = simulate(figure1_graph, toy_platform(memory=2.0), Eager())
        assert result.total_bytes == pytest.approx(float(result.total_loads))

    def test_window_one_works(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(memory=2.0), Eager(), window=1
        )
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_invalid_window_rejected(self, figure1_graph):
        with pytest.raises(ValueError, match="window"):
            simulate(figure1_graph, toy_platform(), Eager(), window=0)

    def test_task_bigger_than_memory_raises(self):
        g = unit_graph(n_tasks=2, n_data=4, arity=4)
        from repro.simulator.memory import MemoryFullError

        with pytest.raises(MemoryFullError):
            simulate(g, toy_platform(memory=2.0), Eager())


class TestMultiGpu:
    def test_work_is_distributed(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=3, memory=4.0), Eager()
        )
        assert all(g.n_tasks > 0 for g in result.gpus)

    def test_multi_gpu_faster_than_single(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        slow = simulate(g, toy_platform(n_gpus=1, memory=12.0, bandwidth=50.0), Eager())
        fast = simulate(g, toy_platform(n_gpus=4, memory=12.0, bandwidth=50.0), Eager())
        assert fast.makespan < slow.makespan

    def test_per_gpu_loads_recorded(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=4.0), Eager()
        )
        assert result.total_loads == sum(g.n_loads for g in result.gpus)
        assert result.total_loads >= 6


class TestDeterminism:
    def test_same_seed_same_trace(self):
        g = unit_graph(n_tasks=20, n_data=8, arity=2, seed=3)
        a = simulate(g, toy_platform(n_gpus=2, memory=4.0), Eager(), seed=5)
        b = simulate(g, toy_platform(n_gpus=2, memory=4.0), Eager(), seed=5)
        assert a.makespan == b.makespan
        assert a.executed_order == b.executed_order
        assert a.total_loads == b.total_loads

    def test_fair_and_fifo_bus_both_complete(self, figure1_graph):
        for model in ("fair", "fifo"):
            result = simulate(
                figure1_graph,
                toy_platform(memory=3.0, model=model),
                Eager(),
            )
            assert sum(g.n_tasks for g in result.gpus) == 9


class TestTraceAndStats:
    def test_trace_records_lifecycle(self, figure1_graph):
        result = simulate(
            figure1_graph,
            toy_platform(memory=2.0),
            Eager(),
            record_trace=True,
        )
        trace = result.trace
        assert trace is not None
        assert len(trace.of_kind("task_start")) == 9
        assert len(trace.of_kind("task_end")) == 9
        assert len(trace.of_kind("fetch_end")) == result.total_loads
        assert len(trace.of_kind("evict")) == result.total_evictions

    def test_trace_disabled_by_default(self, figure1_graph):
        result = simulate(figure1_graph, toy_platform(memory=2.0), Eager())
        assert result.trace is None

    def test_trace_times_monotonic_per_kind(self, figure1_graph):
        result = simulate(
            figure1_graph,
            toy_platform(memory=2.0),
            Eager(),
            record_trace=True,
        )
        times = [e.time for e in result.trace.of_kind("task_end")]
        assert times == sorted(times)

    def test_busy_time_le_makespan(self, figure1_graph):
        result = simulate(figure1_graph, toy_platform(memory=4.0), Eager())
        for k, g in enumerate(result.gpus):
            assert g.busy_time <= result.makespan + 1e-9
            assert 0.0 <= result.utilization(k) <= 1.0

    def test_summary_renders(self, figure1_graph):
        result = simulate(figure1_graph, toy_platform(memory=4.0), Eager())
        text = result.summary()
        assert "EAGER" in text and "GFlop/s" in text


class TestFixedScheduleBridge:
    def test_fixed_schedule_executes_given_order(self, figure1_graph):
        order = [[0, 1, 4, 3], [2, 5, 8, 7, 6]]
        sched = FixedSchedule(Schedule(order=[list(o) for o in order]))
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=2.0), sched, window=1
        )
        assert result.executed_order == order

    def test_fixed_schedule_matches_analytic_loads(self, figure1_graph):
        """window=1, LRU: the simulator's loads equal the analytic replay."""
        from repro.core.schedule import replay_schedule

        order = [[0, 1, 4, 3], [2, 5, 8, 7, 6]]
        sched = FixedSchedule(Schedule(order=[list(o) for o in order]))
        result = simulate(
            figure1_graph,
            toy_platform(n_gpus=2, memory=2.0),
            sched,
            eviction="lru",
            window=1,
        )
        analytic = replay_schedule(
            figure1_graph,
            Schedule(order=[list(o) for o in order]),
            capacity_items=2,
            policy="lru",
        )
        assert result.total_loads == analytic.total_loads == 11

    def test_gpu_count_mismatch_rejected(self, figure1_graph):
        sched = FixedSchedule(Schedule.single_gpu(list(range(9))))
        with pytest.raises(ValueError, match="GPUs"):
            simulate(figure1_graph, toy_platform(n_gpus=2, memory=4.0), sched)
