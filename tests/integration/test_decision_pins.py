"""Pinned scheduling-decision costs: the byte-identity contract.

The hot-path optimization must not change a single scheduling decision.
``RunResult.virtual_decision_time`` — decision operations × the modeled
per-op cost, charged via ``Scheduler.charge_ops`` — is deterministic in
the seed, so its exact float value (and the makespan it shifts) pins
every decision the scheduler made.  The values below were recorded on
the fig5 sweep at the commit *before* the optimization; any drift means
a decision changed or an op was charged from a hook that must not
charge (see DESIGN.md, "Modeled cost vs implementation speed").
"""

import pytest

from repro.experiments.harness import figure_spec, rep_seed
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate

#: (scheduler, n) -> (virtual_decision_time, makespan), fig5 spec, rep 0,
#: recorded pre-optimization.  Exact equality — these are bit pins.
PINS = {
    ("darts", 20): (0.0022758999999999935, 0.15801816796197082),
    ("darts", 48): (0.07469840000000123, 0.9263897412042957),
    ("darts+luf", 20): (0.002366799999999984, 0.14634095410850337),
    ("darts+luf", 48): (0.10666925000000106, 0.8017516865615292),
    ("mhfp", 20): (0.0005080999999999972, 0.1279115560552323),
    ("mhfp", 48): (0.012543499999999897, 0.6972883378480299),
}


class TestDecisionCostPins:
    @pytest.mark.parametrize(
        "scheduler,n", sorted(PINS), ids=lambda v: str(v)
    )
    def test_virtual_decision_time_and_makespan_bit_equal(
        self, scheduler, n
    ):
        spec = figure_spec("fig5")
        sched, eviction = make_scheduler(scheduler)
        result = simulate(
            spec.workload(n),
            spec.platform(),
            sched,
            eviction=eviction,
            window=spec.window,
            seed=rep_seed(spec.seed, scheduler, n, 0),
        )
        vdt, makespan = PINS[(scheduler, n)]
        assert result.virtual_decision_time == vdt, (
            f"{scheduler} n={n}: virtual_decision_time drifted "
            f"{result.virtual_decision_time!r} != {vdt!r} — a scheduling "
            f"decision or a charge_ops site changed"
        )
        assert result.makespan == makespan, (
            f"{scheduler} n={n}: makespan drifted "
            f"{result.makespan!r} != {makespan!r}"
        )
