"""Qualitative claims of the paper's evaluation, at reduced scale.

These are the *shape* assertions behind every figure: who wins, where the
collapses happen, and which mechanism causes them.  Absolute numbers are
platform-model-dependent; the orderings below are what the reproduction
must preserve.
"""

import pytest

from repro.core.bounds import roofline_gflops
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.cholesky import cholesky_tasks
from repro.workloads.matmul2d import matmul2d
from repro.workloads.matmul3d import matmul3d
from repro.workloads.sparse import sparse_matmul2d


def run(graph, n_gpus, name, memory=None, seed=1, **kw):
    sched, eviction = make_scheduler(name)
    platform = (
        tesla_v100_node(n_gpus)
        if memory is None
        else tesla_v100_node(n_gpus, memory_bytes=memory)
    )
    return simulate(graph, platform, sched, eviction=eviction, seed=seed, **kw)


@pytest.fixture(scope="module")
def pressured_2d():
    """n=40 on one 500 MB GPU: B (590 MB) does not fit (paper Fig 3/4)."""
    return matmul2d(40)


class TestFig3Fig4SingleGpu:
    def test_eager_collapses_to_bus_bound_plateau(self, pressured_2d):
        r = run(pressured_2d, 1, "eager")
        assert r.gflops < 0.65 * roofline_gflops(1, 13253.0)

    def test_eager_one_reload_per_task(self, pressured_2d):
        r = run(pressured_2d, 1, "eager")
        assert r.total_loads >= pressured_2d.n_tasks

    def test_dmdar_beats_eager(self, pressured_2d):
        eager = run(pressured_2d, 1, "eager")
        dmdar = run(pressured_2d, 1, "dmdar")
        assert dmdar.gflops > 1.2 * eager.gflops
        assert dmdar.total_mb < 0.5 * eager.total_mb

    def test_darts_luf_near_roofline(self, pressured_2d):
        r = run(pressured_2d, 1, "darts+luf")
        assert r.gflops > 0.95 * roofline_gflops(1, 13253.0)

    def test_luf_eviction_fixes_darts_domino_effect(self, pressured_2d):
        """Paper §V-B: DARTS under LRU suffers re-fetch cascades that
        DARTS+LUF avoids."""
        lru = run(pressured_2d, 1, "darts")
        luf = run(pressured_2d, 1, "darts+luf")
        assert luf.total_mb < lru.total_mb
        assert luf.gflops > lru.gflops

    def test_darts_luf_beats_dmdar(self, pressured_2d):
        """Paper: ~8.5 % average GFlop/s gain over DMDAR on one GPU."""
        dmdar = run(pressured_2d, 1, "dmdar")
        luf = run(pressured_2d, 1, "darts+luf")
        assert luf.gflops > 1.05 * dmdar.gflops

    def test_mhfp_good_schedule_but_heavy_scheduling_time(self, pressured_2d):
        r = run(pressured_2d, 1, "mhfp")
        assert r.gflops > 0.9 * roofline_gflops(1, 13253.0)
        # the packing cost is significant relative to the makespan
        assert r.scheduling_time > 0.5 * r.makespan

    def test_unconstrained_memory_everyone_is_fine(self):
        g = matmul2d(12)  # 354 MB: both matrices fit
        for name in ("eager", "dmdar", "darts+luf"):
            r = run(g, 1, name)
            assert r.gflops > 0.85 * roofline_gflops(1, 13253.0)
            assert r.total_evictions == 0


class TestFig5Fig7MultiGpu:
    def test_darts_luf_wins_under_pressure_2gpu(self):
        g = matmul2d(40)
        dmdar = run(g, 2, "dmdar", memory=250e6)
        luf = run(g, 2, "darts+luf", memory=250e6)
        assert luf.gflops > dmdar.gflops

    def test_load_balance_across_gpus(self):
        g = matmul2d(24)
        for name in ("eager", "dmdar", "darts+luf", "mhfp", "hmetis+r"):
            r = run(g, 2, name)
            assert r.balance_ratio() < 1.35, name

    def test_transfers_scale_with_gpus(self):
        """More GPUs replicate shared data: total traffic grows."""
        g = matmul2d(24)
        one = run(g, 1, "darts+luf")
        four = run(g, 4, "darts+luf")
        assert four.total_loads >= one.total_loads

    def test_hmetis_partition_time_hurts(self):
        g = matmul2d(30)
        r = run(g, 2, "hmetis+r")
        assert r.gflops_with_scheduling < r.gflops


class TestFig9RandomizedOrder:
    def test_dmdar_degrades_more_than_darts_luf(self):
        """Probed where the paper's Fig 9 shows it: memory holds B but
        not A and B (n=25 with 2x250 MB)."""
        natural = matmul2d(25)
        shuffled = matmul2d(25, randomized=True, seed=5)
        mem = 250e6
        dm_nat = run(natural, 2, "dmdar", memory=mem)
        dm_shuf = run(shuffled, 2, "dmdar", memory=mem)
        luf_shuf = run(shuffled, 2, "darts+luf", memory=mem)
        # DMDAR leans on submission order: it loses throughput...
        assert dm_shuf.gflops < 0.85 * dm_nat.gflops
        # ...while DARTS+LUF on the shuffled order beats shuffled DMDAR
        assert luf_shuf.gflops > 1.2 * dm_shuf.gflops

    def test_darts_luf_insensitive_to_order(self):
        mem = 250e6
        nat = run(matmul2d(25), 2, "darts+luf", memory=mem)
        shuf = run(matmul2d(25, randomized=True, seed=5), 2, "darts+luf",
                   memory=mem)
        assert shuf.gflops > 0.85 * nat.gflops


class TestFig10ThreeInputs:
    def test_3inputs_variant_beats_plain_luf_on_3d(self):
        g = matmul3d(8)
        plain = run(g, 4, "darts+luf", memory=250e6)
        three = run(g, 4, "darts+luf-3inputs", memory=250e6)
        assert three.gflops > plain.gflops

    def test_3inputs_beats_dmdar_on_3d(self):
        """Paper: ~61 % over DMDAR; we assert a clear win."""
        g = matmul3d(8)
        dmdar = run(g, 4, "dmdar", memory=250e6)
        three = run(g, 4, "darts+luf-3inputs", memory=250e6)
        assert three.gflops > 1.15 * dmdar.gflops


class TestFig11Cholesky:
    def test_darts_luf_beats_dmdar_and_eager_on_cholesky(self):
        g = cholesky_tasks(16)
        eager = run(g, 4, "eager")
        dmdar = run(g, 4, "dmdar")
        luf = run(g, 4, "darts+luf-3inputs")
        assert luf.gflops > 1.2 * dmdar.gflops
        assert luf.gflops > 1.3 * eager.gflops

    def test_opti_slashes_decision_cost(self):
        """OPTI's point: an order of magnitude less *modeled* scan work.

        The claim lives in ``virtual_decision_time`` (charge_ops).  Host
        wall time is no longer a meaningful proxy: the incremental
        free-task index made the full scan's per-candidate cost O(1), so
        both variants' wall clocks are dominated by the same bookkeeping
        — we only check OPTI is not wildly slower in wall terms."""
        g = cholesky_tasks(16)
        full = run(g, 4, "darts+luf-3inputs")
        opti = run(g, 4, "darts+luf+opti-3inputs")
        assert opti.virtual_decision_time < 0.3 * full.virtual_decision_time
        assert opti.decision_wall_time < 2.0 * full.decision_wall_time

    def test_opti_quality_loss_is_bounded(self):
        """Paper: OPTI stays 'close to optimal' — it may lose schedule
        quality but must remain within a reasonable factor and clearly
        above the queue-order baselines."""
        g = cholesky_tasks(16)
        full = run(g, 4, "darts+luf-3inputs")
        opti = run(g, 4, "darts+luf+opti-3inputs")
        eager = run(g, 4, "eager")
        assert opti.gflops > 0.7 * full.gflops
        assert opti.gflops > 1.2 * eager.gflops

    def test_dmdar_also_pays_decision_cost_on_cholesky(self):
        """Paper §V-F: 'DMDAR also suffers from a large scheduling time
        induced by looking at all the tasks'."""
        g = cholesky_tasks(16)
        dmdar = run(g, 4, "dmdar")
        eager = run(g, 4, "eager")
        assert dmdar.virtual_decision_time > 5 * eager.virtual_decision_time


class TestFig12Fig13Sparse:
    def test_darts_luf_beats_dmdar_on_sparse(self):
        g = sparse_matmul2d(120, density=0.02, seed=3)
        dmdar = run(g, 4, "dmdar", memory=250e6)
        luf = run(g, 4, "darts+luf", memory=250e6)
        assert luf.gflops > dmdar.gflops

    def test_no_memory_limit_still_ranks_darts_high(self):
        g = sparse_matmul2d(120, density=0.02, seed=3)
        sched, ev = make_scheduler("darts+luf+opti")
        plat = tesla_v100_node(4, unlimited_memory=True)
        luf = simulate(g, plat, sched, eviction=ev, seed=1)
        sched, ev = make_scheduler("eager")
        eager = simulate(g, plat, sched, eviction=ev, seed=1)
        assert luf.gflops >= 0.95 * eager.gflops
        assert luf.total_evictions == 0


class TestMemoryAwareTransferOrdering:
    """§V's central ordering: memory-aware strategies move less data."""

    def test_darts_transfers_strictly_less_than_eager(self, pressured_2d):
        eager = run(pressured_2d, 1, "eager")
        darts = run(pressured_2d, 1, "darts")
        assert darts.total_mb < eager.total_mb

    def test_hfp_transfers_strictly_less_than_eager(self, pressured_2d):
        eager = run(pressured_2d, 1, "eager")
        mhfp = run(pressured_2d, 1, "mhfp")
        assert mhfp.total_mb < eager.total_mb

    def test_ordering_holds_on_constrained_multi_gpu(self):
        g = matmul2d(30)
        mem = 250e6
        eager = run(g, 2, "eager", memory=mem)
        darts = run(g, 2, "darts", memory=mem)
        mhfp = run(g, 2, "mhfp", memory=mem)
        assert darts.total_mb < eager.total_mb
        assert mhfp.total_mb < eager.total_mb


class TestRepetitionAveraging:
    def test_average_matches_hand_computed_mean(self):
        from repro.experiments.harness import _average
        from repro.metrics.collect import Measurement

        a = Measurement(
            scheduler="S",
            n=4,
            working_set_mb=100.0,
            gflops=10.0,
            gflops_with_sched=8.0,
            transfers_mb=1.5,
            loads=3,
            evictions=1,
            makespan_s=2.0,
            scheduling_time_s=0.5,
            balance=1.0,
        )
        b = Measurement(
            scheduler="S",
            n=4,
            working_set_mb=100.0,
            gflops=20.0,
            gflops_with_sched=12.0,
            transfers_mb=2.5,
            loads=6,
            evictions=2,
            makespan_s=4.0,
            scheduling_time_s=1.5,
            balance=1.2,
        )
        avg = _average([a, b])
        assert avg.scheduler == "S" and avg.n == 4
        assert avg.working_set_mb == 100.0
        assert avg.gflops == (10.0 + 20.0) / 2
        assert avg.gflops_with_sched == (8.0 + 12.0) / 2
        assert avg.transfers_mb == (1.5 + 2.5) / 2
        assert avg.loads == round((3 + 6) / 2)
        assert avg.evictions == round((1 + 2) / 2)
        assert avg.makespan_s == (2.0 + 4.0) / 2
        assert avg.scheduling_time_s == (0.5 + 1.5) / 2
        assert avg.balance == (1.0 + 1.2) / 2

    def test_average_of_single_measurement_is_identity(self):
        from repro.experiments.harness import _average
        from repro.metrics.collect import Measurement

        m = Measurement(
            scheduler="S",
            n=4,
            working_set_mb=1.0,
            gflops=1.0,
            gflops_with_sched=1.0,
            transfers_mb=1.0,
            loads=1,
            evictions=1,
            makespan_s=1.0,
            scheduling_time_s=1.0,
            balance=1.0,
        )
        assert _average([m]) is m


class TestFig8Threshold:
    def test_threshold_inactive_below_activation_ratio(self):
        """Paper: the threshold applies 'for working sets larger than
        3500 MB only' — below that the variant is plain DARTS+LUF."""
        g = matmul2d(30)  # 885 MB < 1.75 x 4x250 MB
        full = run(g, 4, "darts+luf", memory=250e6)
        capped = run(g, 4, "darts+luf+threshold", memory=250e6)
        assert capped.makespan == full.makespan
        assert capped.total_loads == full.total_loads

    def test_threshold_reduces_decision_time_on_large_sets(self):
        g = matmul2d(70)  # 2065 MB > 1.75 x 4x250 MB: threshold active
        full = run(g, 4, "darts+luf", memory=250e6)
        capped = run(g, 4, "darts+luf+threshold", memory=250e6)
        assert capped.virtual_decision_time < full.virtual_decision_time
