"""Heterogeneous platforms: the paper's model notes both extensions
(heterogeneous task durations and data sizes) are straightforward; this
exercises them end to end."""

import pytest

from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.randomgraph import random_bipartite


def uneven_platform(fast=4.0, slow=1.0, memory=8.0):
    return PlatformSpec(
        gpus=[
            GpuSpec(name="fast", gflops=fast * 1e-9, memory_bytes=memory),
            GpuSpec(name="slow", gflops=slow * 1e-9, memory_bytes=memory),
        ],
        bus=BusSpec(bandwidth=50.0, latency=0.0, model="fair"),
    )


class TestHeterogeneousGpus:
    def test_dmda_sends_more_work_to_the_fast_gpu(self):
        """Eq. 1's comp term steers load toward the faster device."""
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        sched, eviction = make_scheduler("dmda")
        result = simulate(g, uneven_platform(), sched, eviction=eviction)
        fast, slow = result.gpus
        assert fast.n_tasks > slow.n_tasks

    def test_stealing_rebalances_on_uneven_speeds(self):
        """mHFP splits tasks evenly; the fast GPU finishes first and
        steals, so its final share exceeds half."""
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        sched, eviction = make_scheduler("mhfp")
        result = simulate(g, uneven_platform(), sched, eviction=eviction)
        fast, slow = result.gpus
        assert fast.n_tasks > slow.n_tasks

    @pytest.mark.parametrize("name", ["eager", "dmdar", "darts+luf"])
    def test_all_schedulers_complete_on_uneven_platform(self, name):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        sched, eviction = make_scheduler(name)
        result = simulate(
            g, uneven_platform(), sched, eviction=eviction, seed=2
        )
        assert sum(s.n_tasks for s in result.gpus) == 25


class TestHeterogeneousDataSizes:
    @pytest.mark.parametrize("name", ["eager", "dmdar", "darts+luf", "mhfp"])
    def test_mixed_sizes_run_under_byte_capacity(self, name):
        g = random_bipartite(
            20, 8, arity=2, data_size=1.0, seed=5, heterogeneous_sizes=True
        )
        plat = PlatformSpec(
            gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=6.0)] * 2,
            bus=BusSpec(bandwidth=10.0, latency=0.0, model="fair"),
        )
        sched, eviction = make_scheduler(name)
        result = simulate(g, plat, sched, eviction=eviction, seed=5)
        assert sum(s.n_tasks for s in result.gpus) == 20

    def test_bytes_accounted_exactly(self):
        g = random_bipartite(
            12, 5, arity=2, data_size=1.0, seed=1, heterogeneous_sizes=True
        )
        plat = PlatformSpec(
            gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=10.0)],
            bus=BusSpec(bandwidth=10.0, latency=0.0, model="fifo"),
        )
        sched, eviction = make_scheduler("eager")
        result = simulate(g, plat, sched, eviction=eviction)
        used = {d for t in g.tasks for d in t.inputs}
        assert result.total_bytes == pytest.approx(
            sum(g.data[d].size for d in used)
        )
