"""Lint framework machinery: registry, noqa suppressions, reporters."""

import json

from repro.check.lint.framework import (
    LintViolation,
    Linter,
    all_rules,
    parse_noqa,
)
from repro.check.lint.reporters import json_report, text_report


def lint_source(tmp_path, source, filename="mod.py", rules=None):
    path = tmp_path / filename
    path.write_text(source)
    linter = Linter(rules) if rules is not None else Linter()
    return linter.lint_file(path)


class TestRegistry:
    def test_all_rules_have_unique_codes(self):
        rules = all_rules()
        codes = [r.code for r in rules]
        assert len(codes) == len(set(codes))
        assert {
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "API001",
            "API002",
            "API003",
        } <= set(codes)

    def test_rules_carry_descriptions(self):
        for rule in all_rules():
            assert rule.description, rule.code


class TestNoqa:
    def test_parse_bare_noqa(self):
        noqa = parse_noqa(["x = 1", "y = 2  # repro: noqa"])
        assert noqa == {2: {"*"}}

    def test_parse_coded_noqa(self):
        noqa = parse_noqa(["t = time.time()  # repro: noqa[DET002, DET001]"])
        assert noqa == {1: {"DET002", "DET001"}}

    def test_suppression_silences_matching_code(self, tmp_path):
        src = "import time\nt = time.time()  # repro: noqa[DET002]\n"
        assert lint_source(tmp_path, src) == []

    def test_suppression_is_code_specific(self, tmp_path):
        src = "import time\nt = time.time()  # repro: noqa[DET001]\n"
        violations = lint_source(tmp_path, src)
        assert [v.code for v in violations] == ["DET002"]

    def test_bare_noqa_silences_everything(self, tmp_path):
        src = "import time\nt = time.time()  # repro: noqa\n"
        assert lint_source(tmp_path, src) == []


class TestLinterDriver:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        violations = lint_source(tmp_path, "def broken(:\n")
        assert [v.code for v in violations] == ["SYN000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(
            "import time\nt = time.time()\n"
        )
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        violations = Linter().lint_paths([tmp_path / "pkg"])
        assert [v.code for v in violations if v.code.startswith("DET")] == [
            "DET002"
        ]

    def test_violations_sorted_by_location(self, tmp_path):
        src = "import time\nb = time.time()\na = time.time()\n"
        violations = lint_source(tmp_path, src)
        assert [v.line for v in violations] == [2, 3]


class TestReporters:
    def _violations(self):
        return [
            LintViolation("DET002", "a.py", 3, 1, "wall clock"),
            LintViolation("DET001", "a.py", 9, 5, "unseeded random"),
        ]

    def test_text_report_lists_and_summarises(self):
        out = text_report(self._violations())
        assert "a.py:3:1: DET002 wall clock" in out
        assert "2 violation(s)" in out
        assert "DET001×1" in out and "DET002×1" in out

    def test_text_report_clean(self):
        assert "no violations" in text_report([])

    def test_json_report_round_trips(self):
        payload = json.loads(json_report(self._violations()))
        assert payload["count"] == 2
        assert payload["violations"][0]["code"] == "DET002"
        assert payload["violations"][1]["line"] == 9
