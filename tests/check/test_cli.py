"""End-to-end ``python -m repro.check`` behaviour and exit codes."""

import json

import pytest

from repro.check.cli import SMOKE_SCHEDULERS, main, run_smoke


class TestExitCodes:
    def test_clean_repo_lints_to_zero(self, capsys):
        assert main(["--no-smoke"]) == 0
        out = capsys.readouterr().out
        assert "no violations" in out

    def test_unseeded_random_in_scheduler_fails_with_rule_code(
        self, tmp_path, capsys
    ):
        """Acceptance: replacing a seeded random.Random with module-level
        random.random() in a scheduler makes the check exit non-zero and
        name the rule."""
        bad = tmp_path / "repro" / "schedulers" / "hacked.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n"
            "class Hacked:\n"
            "    def next_task(self, gpu):\n"
            "        return int(random.random() * 4)\n"
        )
        assert main(["--no-smoke", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["--no-smoke", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["violations"][0]["code"] == "DET002"

    def test_rule_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        # Only DET001 selected: the wall-clock hit is not reported.
        assert main(["--no-smoke", "--rules", "DET001", str(bad)]) == 0

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--no-smoke", "--rules", "NOPE999", str(tmp_path)])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "API001",
            "API002",
            "API003",
        ):
            assert code in out


class TestSmoke:
    def test_smoke_covers_paper_strategies(self):
        assert {"eager", "dmda", "dmdar", "mhfp", "hmetis+r"} <= set(
            SMOKE_SCHEDULERS
        )

    def test_smoke_runs_clean(self):
        assert run_smoke() == []
