"""Each lint rule fires on minimal bad code and stays silent on good."""

from pathlib import Path

import pytest

from repro.check.lint.framework import Linter


def lint(tmp_path, source, filename="mod.py"):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return Linter().lint_file(path)


def codes(violations):
    return [v.code for v in violations]


class TestDET001UnseededRandom:
    def test_module_level_random_flagged(self, tmp_path):
        src = "import random\nx = random.random()\n"
        assert "DET001" in codes(lint(tmp_path, src))

    def test_aliased_module_flagged(self, tmp_path):
        src = "import random as rnd\nx = rnd.randint(0, 3)\n"
        assert "DET001" in codes(lint(tmp_path, src))

    def test_from_import_flagged(self, tmp_path):
        src = "from random import shuffle\nshuffle([1, 2])\n"
        assert "DET001" in codes(lint(tmp_path, src))

    def test_seeded_instance_ok(self, tmp_path):
        src = "import random\nrng = random.Random(42)\nx = rng.random()\n"
        assert codes(lint(tmp_path, src)) == []

    def test_unseeded_instance_flagged(self, tmp_path):
        src = "import random\nrng = random.Random()\n"
        assert "DET001" in codes(lint(tmp_path, src))

    def test_numpy_legacy_flagged(self, tmp_path):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert "DET001" in codes(lint(tmp_path, src))

    def test_numpy_default_rng_ok(self, tmp_path):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert codes(lint(tmp_path, src)) == []

    def test_scheduler_with_module_random_fails_lint(self, tmp_path):
        """The acceptance scenario: a seeded random.Random in a scheduler
        replaced by module-level random.random() must fail the lint."""
        bad_scheduler = (
            "import random\n"
            "class MyScheduler:\n"
            "    def next_task(self, gpu):\n"
            "        return int(random.random() * 10)\n"
        )
        violations = lint(
            tmp_path, bad_scheduler, filename="repro/schedulers/mine.py"
        )
        assert "DET001" in codes(violations)


class TestDET002WallClock:
    def test_time_time_flagged_anywhere(self, tmp_path):
        src = "import time\nt = time.time()\n"
        assert "DET002" in codes(lint(tmp_path, src))

    def test_datetime_now_flagged(self, tmp_path):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert "DET002" in codes(lint(tmp_path, src))

    def test_datetime_module_form_flagged(self, tmp_path):
        src = "import datetime\nt = datetime.datetime.utcnow()\n"
        assert "DET002" in codes(lint(tmp_path, src))

    def test_perf_counter_ok_outside_simulated_paths(self, tmp_path):
        src = "import time\nt = time.perf_counter()\n"
        violations = lint(
            tmp_path, src, filename="repro/experiments/timing.py"
        )
        assert codes(violations) == []

    def test_perf_counter_flagged_in_simulated_path(self, tmp_path):
        src = "import time\nt = time.perf_counter()\n"
        violations = lint(
            tmp_path, src, filename="repro/schedulers/clocky.py"
        )
        assert "DET002" in codes(violations)

    @pytest.mark.parametrize(
        "module",
        [
            "repro/simulator/kernel.py",
            "repro/simulator/prefetch.py",
            "repro/simulator/worker.py",
        ],
    )
    def test_perf_counter_whitelisted_in_kernel_layers(self, tmp_path, module):
        src = "import time as _time\nt = _time.perf_counter()\n"
        violations = lint(tmp_path, src, filename=module)
        assert codes(violations) == []

    def test_perf_counter_flagged_in_runtime_facade(self, tmp_path):
        # The facade no longer times scheduler calls; the whitelist
        # moved to the kernel layers that do.
        src = "import time as _time\nt = _time.perf_counter()\n"
        violations = lint(
            tmp_path, src, filename="repro/simulator/runtime.py"
        )
        assert "DET002" in codes(violations)


class TestDET003UnorderedIteration:
    def test_for_over_set_call_flagged(self, tmp_path):
        src = "for x in set([3, 1, 2]):\n    print(x)\n"
        assert "DET003" in codes(lint(tmp_path, src))

    def test_listcomp_over_set_param_flagged(self, tmp_path):
        src = (
            "from typing import Set\n"
            "def pick(candidates: Set[int]):\n"
            "    return [d for d in candidates if d > 0][0]\n"
        )
        assert "DET003" in codes(lint(tmp_path, src))

    def test_sorted_wrap_ok(self, tmp_path):
        src = (
            "from typing import Set\n"
            "def pick(candidates: Set[int]):\n"
            "    return [d for d in sorted(candidates) if d > 0][0]\n"
        )
        assert codes(lint(tmp_path, src)) == []

    def test_order_insensitive_reducers_ok(self, tmp_path):
        src = (
            "from typing import Set\n"
            "def agg(candidates: Set[int]):\n"
            "    return min(candidates), sum(c for c in candidates)\n"
        )
        assert codes(lint(tmp_path, src)) == []

    def test_set_returning_method_flagged(self, tmp_path):
        src = "def f(mem):\n    return list(mem.evictable())\n"
        assert "DET003" in codes(lint(tmp_path, src))

    def test_dict_comprehension_over_set_ok(self, tmp_path):
        src = (
            "from typing import Set\n"
            "def tally(candidates: Set[int]):\n"
            "    return {d: 0 for d in candidates}\n"
        )
        assert codes(lint(tmp_path, src)) == []


class TestDET004FloatTimeEquality:
    def test_now_equality_flagged_in_simulated_path(self, tmp_path):
        src = "def f(engine, t):\n    return engine.now == t\n"
        violations = lint(
            tmp_path, src, filename="repro/simulator/thing.py"
        )
        assert "DET004" in codes(violations)

    def test_time_suffix_flagged(self, tmp_path):
        src = "def f(a, busy_time):\n    return busy_time != a\n"
        violations = lint(tmp_path, src, filename="repro/core/thing.py")
        assert "DET004" in codes(violations)

    def test_ordering_comparisons_ok(self, tmp_path):
        src = "def f(engine, t):\n    return engine.now <= t\n"
        violations = lint(
            tmp_path, src, filename="repro/simulator/thing.py"
        )
        assert codes(violations) == []

    def test_not_applied_outside_simulated_paths(self, tmp_path):
        src = "def f(engine, t):\n    return engine.now == t\n"
        violations = lint(
            tmp_path, src, filename="repro/experiments/thing.py"
        )
        assert codes(violations) == []


class TestAPIConformance:
    def test_repo_registry_is_conformant(self):
        from repro.schedulers.registry import validate_registry

        assert validate_registry() == []

    def test_repo_eviction_policies_are_conformant(self):
        import repro.eviction as ev
        from repro.eviction.base import validate_policy_class

        for name, cls in sorted(ev._BY_NAME.items()):
            assert validate_policy_class(cls, name) == []

    def test_nonconforming_policy_reported(self):
        from repro.eviction.base import validate_policy_class

        class NotAPolicy:
            pass

        problems = validate_policy_class(NotAPolicy, "bogus")
        assert problems and "EvictionPolicyProtocol" in problems[0]

    def test_policy_missing_choose_victim_reported(self):
        from repro.eviction.base import EvictionPolicy, validate_policy_class

        class Lazy(EvictionPolicy):
            name = "lazy"

        problems = validate_policy_class(Lazy, "lazy")
        assert any("choose_victim" in p for p in problems)

    def test_api003_rt_access_flagged_in_scheduler(self, tmp_path):
        src = (
            "class Greedy:\n"
            "    def prepare(self, view):\n"
            "        self.mem = view._rt.memories[0]\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/greedy.py")
        assert "API003" in codes(violations)

    def test_api003_view_attribute_assignment_flagged(self, tmp_path):
        src = (
            "class Policy:\n"
            "    def on_insert(self, d):\n"
            "        self.view.graph.tasks = []\n"
        )
        violations = lint(tmp_path, src, filename="repro/eviction/hacky.py")
        assert "API003" in codes(violations)

    def test_api003_augmented_assignment_flagged(self, tmp_path):
        src = "def f(view):\n    view.platform.n_gpus += 1\n"
        violations = lint(tmp_path, src, filename="repro/schedulers/mut.py")
        assert "API003" in codes(violations)

    def test_api003_reads_through_view_are_fine(self, tmp_path):
        src = (
            "class Greedy:\n"
            "    def prepare(self, view):\n"
            "        self.view = view\n"
            "        self.caps = [view.capacity(k) for k in range(view.n_gpus)]\n"
            "    def next_task(self, gpu):\n"
            "        return sorted(self.view.present(gpu))\n"
            "    def on_device_lost(self, gpu, requeued):\n"
            "        pass\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/ok.py")
        assert codes(violations) == []

    def test_api003_silent_outside_strategy_packages(self, tmp_path):
        src = "def f(view):\n    view._rt.workers[0].buffer.clear()\n"
        violations = lint(tmp_path, src, filename="repro/simulator/helper.py")
        assert "API003" not in codes(violations)

    def test_project_rules_run_via_linter(self, tmp_path):
        """Project rules execute once per linted root and stay silent on
        the conformant repo."""
        from repro.check.lint.framework import Linter, ProjectRule

        (tmp_path / "empty.py").write_text("x = 1\n")
        violations = Linter().lint_paths([tmp_path])
        assert codes(violations) == []

    def test_whole_repo_src_is_lint_clean(self):
        import repro

        src_root = Path(repro.__file__).resolve().parent
        violations = Linter().lint_paths([src_root])
        assert violations == [], "\n".join(v.format() for v in violations)


class TestPERF001FullRescan:
    _BAD = (
        "class Mem:\n"
        "    def evictable(self):\n"
        "        return {d for d, s in self._state.items() if s == 1}\n"
    )

    def test_filtered_items_rescan_flagged_in_hot_path(self, tmp_path):
        violations = lint(
            tmp_path, self._BAD, filename="repro/simulator/mem.py"
        )
        assert "PERF001" in codes(violations)

    def test_same_code_silent_outside_hot_packages(self, tmp_path):
        violations = lint(
            tmp_path, self._BAD, filename="repro/experiments/mem.py"
        )
        assert "PERF001" not in codes(violations)

    def test_cold_functions_exempt(self, tmp_path):
        src = (
            "class Mem:\n"
            "    def check_invariants(self):\n"
            "        return {d for d, s in self._state.items() if s == 1}\n"
            "    def __init__(self):\n"
            "        self.free = [t for t, s in self._state.items() if s]\n"
            "    def _build_index(self):\n"
            "        return [t for t, s in self._state.items() if not s]\n"
        )
        violations = lint(tmp_path, src, filename="repro/simulator/mem.py")
        assert "PERF001" not in codes(violations)

    def test_nested_function_inside_cold_parent_exempt(self, tmp_path):
        src = (
            "class Mem:\n"
            "    def prepare(self, view):\n"
            "        def helper():\n"
            "            return {d for d in self._x.keys() if d}\n"
            "        return helper()\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/mem.py")
        assert "PERF001" not in codes(violations)

    def test_unfiltered_iteration_ok(self, tmp_path):
        src = (
            "class Pk:\n"
            "    def push(self):\n"
            "        return [(q, w) for q, w in self.nbr.items()]\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/pk.py")
        assert "PERF001" not in codes(violations)

    def test_local_dict_scan_ok(self, tmp_path):
        src = (
            "class S:\n"
            "    def next_task(self, score):\n"
            "        return sorted(d for d, s in score.items() if s)\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/s.py")
        assert "PERF001" not in codes(violations)

    def test_subscripted_store_scan_ok(self, tmp_path):
        """Scanning one bucket of a per-id container is not a full rescan."""
        src = (
            "class Pk:\n"
            "    def push(self, pid):\n"
            "        return [q for q, w in self.nbr[pid].items() if w > 0]\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/pk.py")
        assert "PERF001" not in codes(violations)


class TestAPI004DeviceListCache:
    BAD = (
        "class MyScheduler:\n"
        "    def prepare(self, view):\n"
        "        self.lists = [[] for _ in range(view.n_gpus)]\n"
    )

    def test_cached_device_state_without_hook_flagged(self, tmp_path):
        violations = lint(
            tmp_path, self.BAD, filename="repro/schedulers/mine.py"
        )
        assert "API004" in codes(violations)

    def test_on_device_lost_in_body_ok(self, tmp_path):
        src = self.BAD + (
            "    def on_device_lost(self, gpu, requeued):\n"
            "        pass\n"
        )
        violations = lint(
            tmp_path, src, filename="repro/schedulers/mine.py"
        )
        assert "API004" not in codes(violations)

    def test_drop_gpu_container_contract_ok(self, tmp_path):
        src = (
            "class Lists:\n"
            "    def __init__(self, n_gpus):\n"
            "        self.lists = [[] for _ in range(n_gpus)]\n"
            "    def drop_gpu(self, gpu, requeued):\n"
            "        pass\n"
        )
        violations = lint(
            tmp_path, src, filename="repro/schedulers/ready2.py"
        )
        assert "API004" not in codes(violations)

    def test_no_device_sizing_ok(self, tmp_path):
        src = (
            "class Eagerish:\n"
            "    def prepare(self, view):\n"
            "        self.queue = list(view.graph.tasks)\n"
        )
        violations = lint(
            tmp_path, src, filename="repro/schedulers/eagerish.py"
        )
        assert "API004" not in codes(violations)

    def test_silent_outside_schedulers_package(self, tmp_path):
        violations = lint(
            tmp_path, self.BAD, filename="repro/eviction/mine.py"
        )
        assert "API004" not in codes(violations)

    def test_bare_n_gpus_name_read_flagged(self, tmp_path):
        src = (
            "class S:\n"
            "    def prepare(self, view):\n"
            "        n_gpus = view.n_gpus\n"
            "        self.loads = [0.0] * n_gpus\n"
        )
        violations = lint(tmp_path, src, filename="repro/schedulers/s.py")
        assert "API004" in codes(violations)

    def test_shipped_schedulers_pass(self):
        """The acceptance check: every shipped scheduler already
        participates in the device-loss protocol."""
        from pathlib import Path

        import repro.schedulers as pkg
        from repro.check.lint.framework import Linter

        root = Path(pkg.__file__).resolve().parent
        violations = [
            v
            for p in sorted(root.glob("*.py"))
            for v in Linter().lint_file(p)
            if v.code == "API004"
        ]
        assert violations == []
