"""Tests for measurement containers and report rendering."""

import pytest

from repro.metrics.collect import Measurement, Series, Sweep
from repro.metrics.report import ascii_plot, format_series_table
from repro.simulator.trace import GpuStats, RunResult


def make_result(scheduler="X", makespan=2.0, loads=10):
    gpu = GpuStats(n_tasks=4, n_loads=loads, bytes_loaded=loads * 1e6,
                   n_evictions=1, busy_time=1.5, flops=8e9)
    return RunResult(
        scheduler=scheduler,
        n_gpus=1,
        makespan=makespan,
        total_flops=8e9,
        gpus=[gpu],
        scheduling_time=1.0,
        prepare_time=1.0,
    )


class TestMeasurement:
    def test_from_result(self):
        m = Measurement.from_result(make_result(), n=5, working_set_mb=100.0)
        assert m.gflops == pytest.approx(4.0)  # 8e9 / 2s / 1e9
        assert m.gflops_with_sched == pytest.approx(8 / 3)
        assert m.transfers_mb == pytest.approx(10.0)
        assert m.loads == 10

    def test_metric_lookup(self):
        m = Measurement.from_result(make_result(), n=5, working_set_mb=100.0)
        assert m.metric("gflops") == m.gflops
        assert m.metric("transfers_mb") == m.transfers_mb
        assert m.metric("loads") == 10.0
        with pytest.raises(ValueError):
            m.metric("latency")


class TestSweep:
    def _sweep(self):
        sweep = Sweep(title="t")
        for n, ws in [(2, 10.0), (4, 20.0)]:
            for name, speed in [("A", 4.0), ("B", 2.0)]:
                r = make_result(name, makespan=8e9 / speed / 1e9)
                sweep.add(Measurement.from_result(r, n=n, working_set_mb=ws))
        return sweep

    def test_series_grouped_by_scheduler(self):
        sweep = self._sweep()
        assert sweep.schedulers() == ["A", "B"]
        assert sweep.series["A"].xs() == [10.0, 20.0]

    def test_gain_ratio(self):
        sweep = self._sweep()
        assert sweep.gain("gflops", "A", "B") == pytest.approx(2.0)

    def test_gain_last_k(self):
        sweep = self._sweep()
        assert sweep.gain("gflops", "A", "B", last_k=1) == pytest.approx(2.0)

    def test_gain_misaligned_raises(self):
        sweep = self._sweep()
        sweep.series["A"].points.pop()
        with pytest.raises(ValueError):
            sweep.gain("gflops", "A", "B")

    def test_series_mean(self):
        sweep = self._sweep()
        assert sweep.series["A"].mean("gflops") == pytest.approx(4.0)


class TestReports:
    def test_table_contains_all_series_and_refs(self):
        sweep = Sweep(title="demo")
        r = make_result("SOLO")
        sweep.add(Measurement.from_result(r, n=2, working_set_mb=10.0))
        sweep.reference_lines["GFlop/s max"] = 99.0
        sweep.reference_curves["PCI"] = [123.0]
        text = format_series_table(sweep, metric="gflops")
        assert "SOLO" in text and "99.0" in text and "123" in text

    def test_table_empty_sweep(self):
        assert "empty" in format_series_table(Sweep(title="e"))

    def test_ascii_plot_renders(self):
        sweep = Sweep(title="demo")
        for ws in (10.0, 20.0, 30.0):
            r = make_result("SOLO", makespan=ws)
            sweep.add(Measurement.from_result(r, n=1, working_set_mb=ws))
        art = ascii_plot(sweep, metric="gflops")
        assert "o=SOLO" in art
        assert art.count("o") >= 3

    def test_ascii_plot_empty(self):
        assert "empty" in ascii_plot(Sweep(title="e"))
