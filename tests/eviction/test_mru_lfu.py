"""Tests for the MRU and LFU ablation policies."""

import pytest

from repro.eviction.lfu import LfuPolicy
from repro.eviction.mru import MruPolicy
from repro.schedulers.eager import Eager
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


class TestMru:
    def test_evicts_most_recent(self):
        p = MruPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        assert p.choose_victim({1, 2}) == 2

    def test_access_refreshes(self):
        p = MruPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)
        assert p.choose_victim({1, 2}) == 1

    def test_evict_forgets(self):
        p = MruPolicy(gpu=0)
        p.on_insert(1)
        p.on_evict(1)
        p.on_insert(2)
        assert p.choose_victim({1, 2}) == 2

    def test_mru_beats_lru_on_pure_cyclic_scan(self):
        """Repeated sequential passes over more data than fit: LRU
        misses every access, MRU keeps most of the set resident."""
        from repro.core.problem import TaskGraph

        g = TaskGraph()
        data = [g.add_data(1.0) for _ in range(6)]
        for _ in range(3):  # three passes over the same 6 data
            for d in data:
                g.add_task([d], flops=1.0)
        plat = toy_platform(memory=4.0, bandwidth=100.0)
        lru = simulate(g, plat, Eager(), eviction="lru", window=1)
        mru = simulate(g, plat, Eager(), eviction="mru", window=1)
        assert lru.total_loads == 18  # every access misses
        assert mru.total_loads < lru.total_loads


class TestLfu:
    def test_evicts_least_counted(self):
        p = LfuPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)
        p.on_access(1)
        p.on_access(2)
        assert p.choose_victim({1, 2}) == 2

    def test_tie_broken_by_recency(self):
        p = LfuPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        # equal counts: the least recently touched goes
        assert p.choose_victim({1, 2}) == 1

    def test_counts_reset_on_reload(self):
        p = LfuPolicy(gpu=0)
        p.on_insert(1)
        p.on_access(1)
        p.on_evict(1)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(2)
        assert p.choose_victim({1, 2}) == 1

    def test_full_run_completes(self, figure1_graph):
        r = simulate(
            figure1_graph, toy_platform(memory=2.0), Eager(), eviction="lfu"
        )
        assert r.gpus[0].n_tasks == 9
