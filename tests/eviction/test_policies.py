"""Unit tests for the online eviction policies."""

import pytest

from repro.eviction import POLICY_NAMES, make_policy
from repro.eviction.belady_online import OnlineBeladyPolicy
from repro.eviction.fifo import FifoPolicy
from repro.eviction.lru import LruPolicy
from repro.eviction.luf import LufPolicy
from repro.eviction.random_policy import RandomPolicy


class FakeView:
    """Minimal RuntimeView stand-in for policy unit tests."""

    def __init__(self, graph=None, buffers=None, rng=None):
        import random

        self.graph = graph
        self._buffers = buffers or {}
        self.rng = rng or random.Random(0)

    def task_buffer(self, gpu):
        return self._buffers.get(gpu, [])


class FakeScheduler:
    def __init__(self, planned=None, remaining=None):
        self._planned = planned or {}
        self._remaining = remaining or {}

    def planned_tasks(self, gpu):
        return self._planned.get(gpu, ())

    def remaining_order(self, gpu):
        return self._remaining.get(gpu, ())


class TestLru:
    def test_evicts_least_recently_touched(self):
        p = LruPolicy(gpu=0)
        for d in (1, 2, 3):
            p.on_insert(d)
        p.on_access(1)  # 2 is now the oldest
        assert p.choose_victim({1, 2, 3}) == 2

    def test_access_and_insert_both_refresh(self):
        p = LruPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        p.on_insert(1)  # reinsertion refreshes
        assert p.choose_victim({1, 2}) == 2

    def test_unknown_data_treated_as_oldest(self):
        p = LruPolicy(gpu=0)
        p.on_insert(1)
        assert p.choose_victim({1, 9}) == 9

    def test_evict_forgets_stamp(self):
        p = LruPolicy(gpu=0)
        p.on_insert(1)
        p.on_evict(1)
        p.on_insert(2)
        assert p.choose_victim({1, 2}) == 1


class TestFifo:
    def test_evicts_oldest_load_ignoring_access(self):
        p = FifoPolicy(gpu=0)
        p.on_insert(1)
        p.on_insert(2)
        p.on_access(1)  # FIFO ignores accesses
        assert p.choose_victim({1, 2}) == 1


class TestRandom:
    def test_deterministic_under_fixed_seed(self):
        import random

        a = RandomPolicy(gpu=0, view=FakeView(rng=random.Random(1)))
        b = RandomPolicy(gpu=0, view=FakeView(rng=random.Random(1)))
        picks_a = [a.choose_victim({1, 2, 3, 4}) for _ in range(10)]
        picks_b = [b.choose_victim({1, 2, 3, 4}) for _ in range(10)]
        assert picks_a == picks_b

    def test_choice_is_a_candidate(self):
        p = RandomPolicy(gpu=0, view=FakeView())
        for _ in range(20):
            assert p.choose_victim({5, 7}) in {5, 7}


class TestOnlineBelady:
    def _graph(self):
        from repro.core.problem import TaskGraph

        g = TaskGraph()
        for _ in range(4):
            g.add_data(1.0)
        g.add_task([0, 1], flops=1.0)  # T0
        g.add_task([2, 3], flops=1.0)  # T1
        g.add_task([0, 2], flops=1.0)  # T2
        return g

    def test_prefers_never_used_again(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: [0]})  # future: T0 only
        p = OnlineBeladyPolicy(gpu=0, view=view, scheduler=FakeScheduler())
        # 3 is not used by T0: perfect victim
        assert p.choose_victim({0, 1, 3}) == 3

    def test_uses_scheduler_remaining_order(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: [0]})
        sched = FakeScheduler(remaining={0: [1]})  # T1 uses 2 and 3
        p = OnlineBeladyPolicy(gpu=0, view=view, scheduler=sched)
        # now 3 IS used (by T1, offset 1); datum 2 also offset 1; the
        # victim must be one with the furthest use: 2 or 3 (offset 1)
        # while 0,1 are used at offset 0.
        assert p.choose_victim({0, 1, 2, 3}) in (2, 3)

    def test_falls_back_to_lru_among_unused(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: []})
        p = OnlineBeladyPolicy(gpu=0, view=view, scheduler=FakeScheduler())
        p.on_insert(5)
        p.on_insert(6)
        p.on_access(5)
        # nothing in the future: evict least recently used = 6
        assert p.choose_victim({5, 6}) == 6


class TestLuf:
    """Algorithm 6 behaviour."""

    def _graph(self):
        from repro.core.problem import TaskGraph

        g = TaskGraph()
        for _ in range(5):
            g.add_data(1.0)
        g.add_task([0, 1], flops=1.0)  # T0
        g.add_task([1, 2], flops=1.0)  # T1
        g.add_task([3, 4], flops=1.0)  # T2
        return g

    def test_prefers_data_unused_by_buffer(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: [0, 1]})  # uses 0,1,2
        p = LufPolicy(gpu=0, view=view, scheduler=FakeScheduler())
        # candidate 3 has nb=0; 0,1 have nb>0
        assert p.choose_victim({0, 1, 3}) == 3

    def test_among_unused_prefers_min_planned_uses(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: [0]})  # buffer uses 0,1
        sched = FakeScheduler(planned={0: [2]})  # planned T2 uses 3,4
        p = LufPolicy(gpu=0, view=view, scheduler=sched)
        # candidates 2,3: both nb=0; np(2)=0 (datum 2 unused by T2),
        # np(3)=1 -> evict 2
        assert p.choose_victim({2, 3}) == 2

    def test_belady_fallback_when_all_used_by_buffer(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: [0, 1]})  # T0 then T1
        p = LufPolicy(gpu=0, view=view, scheduler=FakeScheduler())
        # candidates 0 (used at offset 0) and 2 (used at offset 1):
        # furthest next use in the buffer wins -> 2
        assert p.choose_victim({0, 2}) == 2

    def test_works_without_scheduler(self):
        g = self._graph()
        view = FakeView(graph=g, buffers={0: []})
        p = LufPolicy(gpu=0, view=view, scheduler=None)
        assert p.choose_victim({0, 4}) in (0, 4)


class TestFactory:
    def test_all_names_constructible(self):
        import random

        view = FakeView(rng=random.Random(0))
        for name in POLICY_NAMES:
            policy = make_policy(name, 0, view, FakeScheduler())
            assert policy.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown eviction"):
            make_policy("magic", 0, FakeView(), FakeScheduler())
