"""Property-based tests for partitioning and packing."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.fm import bisection_cut, fm_refine
from repro.partitioning.hypergraph import Hypergraph
from repro.partitioning.interface import cut_weight, partition_tasks
from repro.schedulers.hfp import balance_packages, hfp_pack
from repro.workloads.randomgraph import random_bipartite


@st.composite
def taskgraph(draw):
    n_data = draw(st.integers(3, 10))
    n_tasks = draw(st.integers(2, 24))
    arity = draw(st.integers(1, min(3, n_data)))
    seed = draw(st.integers(0, 9999))
    return random_bipartite(
        n_tasks, n_data, arity=arity, data_size=1.0, task_flops=1.0, seed=seed
    )


@st.composite
def hypergraph(draw):
    n = draw(st.integers(4, 20))
    n_nets = draw(st.integers(1, 25))
    rng = random.Random(draw(st.integers(0, 9999)))
    nets = []
    for _ in range(n_nets):
        size = rng.randint(2, min(4, n))
        nets.append(tuple(rng.sample(range(n), size)))
    weights = [float(rng.randint(1, 5)) for _ in nets]
    return Hypergraph(n, [1.0] * n, nets, weights)


class TestPartitionProperties:
    @given(taskgraph(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_parts_are_a_partition(self, graph, k):
        res = partition_tasks(graph, k, nruns=2, rng=random.Random(0))
        seen = sorted(t for p in res.parts for t in p)
        assert seen == list(range(graph.n_tasks))
        assert len(res.parts) == k

    @given(taskgraph(), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_cut_bytes_nonnegative_and_consistent(self, graph, k):
        res = partition_tasks(graph, k, nruns=2, rng=random.Random(1))
        assert res.cut_bytes >= 0
        assert res.cut_bytes == cut_weight(graph, res.parts)

    @given(hypergraph())
    @settings(max_examples=60, deadline=None)
    def test_fm_never_increases_cut_of_feasible_start(self, h):
        rng = random.Random(0)
        side = [rng.randint(0, 1) for _ in range(h.n)]
        before = bisection_cut(h, side)
        refined = fm_refine(h, list(side), target0=h.n / 2, tolerance=h.n / 2)
        # tolerance = n/2 makes every assignment feasible, so the pass
        # must be monotone in cut
        assert bisection_cut(h, refined) <= before + 1e-9


class TestPackingProperties:
    @given(taskgraph(), st.integers(1, 4), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_packages_partition_tasks(self, graph, k, memory):
        packages = hfp_pack(graph, memory_bytes=float(memory), k_packages=k)
        seen = sorted(t for p in packages for t in p)
        assert seen == list(range(graph.n_tasks))
        assert len(packages) == k

    @given(taskgraph(), st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_balancing_preserves_tasks_and_improves_spread(self, graph, k):
        packages = hfp_pack(graph, memory_bytes=6.0, k_packages=k)
        balanced = balance_packages(packages, graph)
        assert sorted(t for p in balanced for t in p) == list(
            range(graph.n_tasks)
        )
        flops = [t.flops for t in graph.tasks]

        def spread(pks):
            loads = [sum(flops[t] for t in p) for p in pks]
            return max(loads) - min(loads)

        assert spread(balanced) <= spread(packages) + 1e-9
