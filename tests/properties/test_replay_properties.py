"""Property-based tests of the analytic replay (model invariants)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belady import belady_loads
from repro.core.bounds import compulsory_loads
from repro.core.schedule import Schedule, replay_schedule, verify_live_set_recursion
from repro.workloads.randomgraph import random_bipartite


@st.composite
def instance(draw, max_tasks=14, max_data=8):
    n_data = draw(st.integers(2, max_data))
    n_tasks = draw(st.integers(1, max_tasks))
    arity = draw(st.integers(1, min(3, n_data)))
    seed = draw(st.integers(0, 10_000))
    graph = random_bipartite(
        n_tasks, n_data, arity=arity, data_size=1.0, task_flops=1.0, seed=seed
    )
    capacity = draw(st.integers(arity, n_data))
    return graph, capacity


@st.composite
def instance_with_schedule(draw, max_gpus=3):
    graph, capacity = draw(instance())
    k = draw(st.integers(1, max_gpus))
    tasks = list(range(graph.n_tasks))
    rng = random.Random(draw(st.integers(0, 10_000)))
    rng.shuffle(tasks)
    cuts = sorted(rng.randrange(len(tasks) + 1) for _ in range(k - 1))
    order = []
    prev = 0
    for c in list(cuts) + [len(tasks)]:
        order.append(tasks[prev:c])
        prev = c
    return graph, capacity, Schedule(order=order)


class TestReplayInvariants:
    @given(instance_with_schedule())
    @settings(max_examples=120, deadline=None)
    def test_live_set_bounded_and_recursion_consistent(self, case):
        graph, capacity, schedule = case
        for policy in ("lru", "fifo", "belady"):
            res = replay_schedule(
                graph, schedule, capacity_items=capacity, policy=policy
            )
            assert res.max_live <= capacity
            verify_live_set_recursion(
                graph, schedule, res, capacity_items=capacity
            )

    @given(instance_with_schedule())
    @settings(max_examples=120, deadline=None)
    def test_loads_at_least_compulsory(self, case):
        graph, capacity, schedule = case
        res = replay_schedule(graph, schedule, capacity_items=capacity)
        assert res.total_loads >= compulsory_loads(graph, schedule)

    @given(instance_with_schedule())
    @settings(max_examples=120, deadline=None)
    def test_belady_no_worse_than_online_policies(self, case):
        graph, capacity, schedule = case
        best = belady_loads(graph, schedule, capacity_items=capacity)
        for policy in ("lru", "fifo"):
            got = replay_schedule(
                graph, schedule, capacity_items=capacity, policy=policy
            ).total_loads
            assert best <= got

    @given(instance_with_schedule())
    @settings(max_examples=60, deadline=None)
    def test_replay_deterministic(self, case):
        graph, capacity, schedule = case
        a = replay_schedule(graph, schedule, capacity_items=capacity)
        b = replay_schedule(graph, schedule, capacity_items=capacity)
        assert [g.loads for g in a.gpus] == [g.loads for g in b.gpus]

    @given(instance_with_schedule())
    @settings(max_examples=60, deadline=None)
    def test_unlimited_memory_is_compulsory_per_gpu(self, case):
        graph, _, schedule = case
        res = replay_schedule(graph, schedule)  # no capacity
        assert res.total_loads == compulsory_loads(graph, schedule)
        assert all(not g.evictions for g in res.gpus)

    @given(instance_with_schedule())
    @settings(max_examples=60, deadline=None)
    def test_eviction_sets_disjoint_from_current_inputs(self, case):
        graph, capacity, schedule = case
        res = replay_schedule(graph, schedule, capacity_items=capacity)
        for k, order in enumerate(schedule.order):
            ev = res.gpus[k].eviction_sets()
            for step, task in enumerate(order):
                assert not set(ev[step]) & set(graph.inputs_of(task))

    @given(instance())
    @settings(max_examples=60, deadline=None)
    def test_bytes_loaded_equals_loads_for_unit_data(self, case):
        graph, capacity = case
        schedule = Schedule.single_gpu(list(range(graph.n_tasks)))
        res = replay_schedule(graph, schedule, capacity_items=capacity)
        assert res.total_bytes == float(res.total_loads)
