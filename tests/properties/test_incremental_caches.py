"""Property tests for the incrementally-maintained hot-path caches.

The core optimization replaced from-scratch rescans with incremental
state (memory present/fetching/evictable sets, the DARTS free-task
index, the Ready missing-bytes cache).  These tests drive the caches
through arbitrary operation sequences — both synthetic ones against a
bare :class:`DeviceMemory` and real simulations on random graphs — and
assert at every step that each cache equals a fresh recomputation,
which is the invariant the byte-identity argument rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers.darts import Darts
from repro.schedulers.dmda import Dmdar
from repro.schedulers.hfp import Mhfp
from repro.simulator.memory import MemoryFullError
from repro.simulator.runtime import simulate
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform
from tests.simulator.test_memory import make_memory

N_DATA = 8


@st.composite
def memory_ops(draw):
    """A sequence of (op, datum/delta) actions on one DeviceMemory."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["request", "pin", "unpin", "evict", "advance"]
                ),
                st.integers(0, N_DATA - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    capacity = draw(st.integers(2, N_DATA))
    return ops, float(capacity)


class TestMemoryIncrementalSets:
    @given(memory_ops())
    @settings(max_examples=150, deadline=None)
    def test_sets_match_rescan_after_arbitrary_ops(self, case):
        """present/fetching/evictable stay equal to a fresh rescan."""
        ops, capacity = case
        eng, mem, _policy, _ready, _evicted = make_memory(
            capacity=capacity, sizes=[1.0] * N_DATA
        )
        pinned = []
        for op, d in ops:
            if op == "request":
                try:
                    mem.request(d)
                except MemoryFullError:
                    pass
            elif op == "pin":
                if mem.holds(d):
                    mem.pin(d)
                    pinned.append(d)
            elif op == "unpin":
                if d in pinned:
                    mem.unpin(d)
                    pinned.remove(d)
            elif op == "evict":
                if d in mem.evictable():
                    mem.evict(d)
            elif op == "advance":
                eng.run(until=eng.now + float(d + 1))
            mem.check_invariants()
        eng.run()
        mem.check_invariants()


class _CheckedDarts(Darts):
    """DARTS that re-verifies its free-task index on every memory event."""

    def on_fetch_issued(self, gpu, data_id):
        super().on_fetch_issued(gpu, data_id)
        self.check_index()

    def on_data_evicted(self, gpu, data_id):
        super().on_data_evicted(gpu, data_id)
        self.check_index()

    def next_task(self, gpu):
        task = super().next_task(gpu)
        self.check_index()
        return task


class _CheckedDmdar(Dmdar):
    """DMDAR that re-verifies the missing-bytes cache on every event."""

    def on_fetch_issued(self, gpu, data_id):
        super().on_fetch_issued(gpu, data_id)
        self._lists.check_incremental(self.view)

    def on_data_evicted(self, gpu, data_id):
        super().on_data_evicted(gpu, data_id)
        self._lists.check_incremental(self.view)


class _CheckedMhfp(Mhfp):
    def on_fetch_issued(self, gpu, data_id):
        super().on_fetch_issued(gpu, data_id)
        self._lists.check_incremental(self.view)

    def on_data_evicted(self, gpu, data_id):
        super().on_data_evicted(gpu, data_id)
        self._lists.check_incremental(self.view)


@st.composite
def graph_case(draw):
    n_data = draw(st.integers(3, 8))
    n_tasks = draw(st.integers(2, 16))
    arity = draw(st.integers(1, min(3, n_data)))
    seed = draw(st.integers(0, 9999))
    graph = random_bipartite(
        n_tasks, n_data, arity=arity, data_size=1.0, task_flops=1.0, seed=seed
    )
    memory = float(draw(st.integers(arity, n_data + 1)))
    n_gpus = draw(st.integers(1, 3))
    window = draw(st.integers(1, 3))
    return graph, memory, n_gpus, window, seed


class TestSchedulerCachesMatchRecompute:
    @given(graph_case())
    @settings(max_examples=60, deadline=None)
    def test_darts_index_matches_fresh_recompute(self, case):
        """The free-task index equals a from-scratch rebuild mid-run."""
        graph, memory, n_gpus, window, seed = case
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=5.0),
            _CheckedDarts(),
            window=window,
            seed=seed,
        )
        executed = sorted(t for o in result.executed_order for t in o)
        assert executed == list(range(graph.n_tasks))

    @pytest.mark.parametrize("cls", [_CheckedDmdar, _CheckedMhfp])
    @given(case=graph_case())
    @settings(max_examples=40, deadline=None)
    def test_ready_cache_matches_missing_bytes(self, cls, case):
        graph, memory, n_gpus, window, seed = case
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=5.0),
            cls(),
            window=window,
            seed=seed,
        )
        executed = sorted(t for o in result.executed_order for t in o)
        assert executed == list(range(graph.n_tasks))
