"""Property: same seed ⇒ bit-identical trace, zero sanitizer violations.

Hypothesis draws random bipartite instances (the paper's stress
workload) and, for each of the five evaluated strategies, runs the
simulation twice under a collecting sanitizer: the two trace digests
must match exactly and no §III model invariant may fire.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.simulator.sanitizer import Sanitizer, check_determinism
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform

FIVE_SCHEDULERS = ("eager", "dmda", "dmdar", "mhfp", "hmetis+r")

instances = st.fixed_dictionaries(
    {
        "n_tasks": st.integers(min_value=2, max_value=14),
        "n_data": st.integers(min_value=2, max_value=8),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build(params, heterogeneous=False):
    return random_bipartite(
        n_tasks=params["n_tasks"],
        n_data=params["n_data"],
        arity=min(2, params["n_data"]),
        seed=params["seed"],
        heterogeneous_sizes=heterogeneous,
    )


@settings(max_examples=10, deadline=None)
@given(params=instances, scheduler=st.sampled_from(FIVE_SCHEDULERS))
def test_same_seed_runs_are_bit_identical(params, scheduler):
    graph = build(params)
    platform = toy_platform(n_gpus=2, memory=3.0, model="fair")
    collector = Sanitizer(strict=False)
    digest = check_determinism(
        graph,
        platform,
        scheduler,
        seed=params["seed"],
        sanitizer=collector,
    )
    assert collector.violations == [], collector.summary()
    assert len(digest) == 64


@settings(max_examples=10, deadline=None)
@given(params=instances, scheduler=st.sampled_from(FIVE_SCHEDULERS + ("darts+luf",)))
# Regression: this instance makes LRU beat the Belady replay on load
# count (legal with variable sizes), which used to fire SAN006.
@example(params={"n_tasks": 10, "n_data": 6, "seed": 1}, scheduler="eager")
def test_sanitizer_silent_on_heterogeneous_sizes(params, scheduler):
    graph = build(params, heterogeneous=True)
    # Largest datum is ≤ 2.0; capacity 4.5 always admits any 2-input task.
    platform = toy_platform(n_gpus=2, memory=4.5, model="fair")
    sched, eviction = make_scheduler(scheduler)
    san = Sanitizer(strict=False)
    result = simulate(
        graph,
        platform,
        sched,
        eviction=eviction,
        seed=params["seed"],
        record_trace=True,
        sanitize=san,
    )
    assert san.violations == [], san.summary()
    assert result.trace_digest is not None


@settings(max_examples=8, deadline=None)
@given(
    params=instances,
    window=st.integers(min_value=1, max_value=3),
    seed2=st.integers(min_value=0, max_value=100),
)
def test_different_windows_still_deterministic(params, window, seed2):
    """The prefetch window changes the schedule but never determinism."""
    graph = build(params)
    platform = toy_platform(n_gpus=2, memory=3.0)
    digests = set()
    for _ in range(2):
        sched, eviction = make_scheduler("dmdar")
        r = simulate(
            graph,
            platform,
            sched,
            eviction=eviction,
            window=window,
            seed=seed2,
            record_trace=True,
            sanitize=True,
        )
        digests.add(r.trace_digest)
    assert len(digests) == 1
