"""Property-based tests of the discrete-event runtime.

Every scheduler × eviction-policy combination must, on arbitrary
instances: execute each task exactly once, respect the resource bounds
(makespan ≥ compute and transfer lower bounds), keep the memory
accounting consistent, and be reproducible under a fixed seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import compulsory_loads
from repro.schedulers.registry import SCHEDULER_NAMES, make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform

SCHEDS = [
    "eager",
    "dmdar",
    "mhfp",
    "hmetis+r",
    "darts",
    "darts+luf",
]


@st.composite
def sim_case(draw):
    n_data = draw(st.integers(3, 8))
    n_tasks = draw(st.integers(2, 18))
    arity = draw(st.integers(1, min(3, n_data)))
    seed = draw(st.integers(0, 9999))
    graph = random_bipartite(
        n_tasks, n_data, arity=arity, data_size=1.0, task_flops=1.0, seed=seed
    )
    memory = float(draw(st.integers(arity, n_data + 1)))
    n_gpus = draw(st.integers(1, 3))
    sched_name = draw(st.sampled_from(SCHEDS))
    window = draw(st.integers(1, 3))
    return graph, memory, n_gpus, sched_name, window, seed


class TestSimulatorProperties:
    @given(sim_case())
    @settings(max_examples=100, deadline=None)
    def test_every_task_runs_exactly_once(self, case):
        graph, memory, n_gpus, name, window, seed = case
        sched, eviction = make_scheduler(name)
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=5.0),
            sched,
            eviction=eviction,
            window=window,
            seed=seed,
        )
        executed = sorted(t for o in result.executed_order for t in o)
        assert executed == list(range(graph.n_tasks))

    @given(sim_case())
    @settings(max_examples=80, deadline=None)
    def test_resource_lower_bounds_hold(self, case):
        graph, memory, n_gpus, name, window, seed = case
        sched, eviction = make_scheduler(name)
        bandwidth = 5.0
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=bandwidth),
            sched,
            eviction=eviction,
            window=window,
            seed=seed,
        )
        compute_lb = graph.total_flops / n_gpus  # 1 flop/s per GPU
        transfer_lb = result.total_bytes / bandwidth
        assert result.makespan >= compute_lb - 1e-9
        assert result.makespan >= transfer_lb - 1e-9
        assert result.total_loads >= compulsory_loads(graph)

    @given(sim_case())
    @settings(max_examples=60, deadline=None)
    def test_seeded_reproducibility(self, case):
        graph, memory, n_gpus, name, window, seed = case
        runs = []
        for _ in range(2):
            sched, eviction = make_scheduler(name)
            runs.append(
                simulate(
                    graph,
                    toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=5.0),
                    sched,
                    eviction=eviction,
                    window=window,
                    seed=seed,
                )
            )
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].executed_order == runs[1].executed_order
        assert runs[0].total_loads == runs[1].total_loads

    @given(sim_case(), st.sampled_from(["lru", "fifo", "random", "belady", "luf"]))
    @settings(max_examples=60, deadline=None)
    def test_all_eviction_policies_complete(self, case, eviction):
        graph, memory, n_gpus, name, window, seed = case
        sched, _ = make_scheduler(name)
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=memory, bandwidth=5.0),
            sched,
            eviction=eviction,
            window=window,
            seed=seed,
        )
        assert sum(g.n_tasks for g in result.gpus) == graph.n_tasks

    @given(sim_case())
    @settings(max_examples=40, deadline=None)
    def test_fair_and_fifo_bus_same_loads_structure(self, case):
        """Bus model changes timing, not which schedulers terminate."""
        graph, memory, n_gpus, name, window, seed = case
        for model in ("fair", "fifo"):
            sched, eviction = make_scheduler(name)
            result = simulate(
                graph,
                toy_platform(
                    n_gpus=n_gpus, memory=memory, bandwidth=5.0, model=model
                ),
                sched,
                eviction=eviction,
                window=window,
                seed=seed,
            )
            assert sum(g.n_tasks for g in result.gpus) == graph.n_tasks
