"""Property-based tests for the §VI extensions (DAG, outputs, NVLink)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import TaskGraph
from repro.dag.deps import DependencySet
from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform

SCHEDS = ["eager", "dmdar", "mhfp", "hmetis+r", "darts", "darts+luf"]


@st.composite
def dag_case(draw):
    n_tasks = draw(st.integers(2, 16))
    n_data = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 9999))
    graph = random_bipartite(
        n_tasks, n_data, arity=draw(st.integers(1, 2)),
        data_size=1.0, task_flops=1.0, seed=seed,
    )
    rng = random.Random(seed)
    edges = []
    for t in range(1, n_tasks):
        for _ in range(rng.randint(0, 2)):
            edges.append((rng.randrange(t), t))
    deps = DependencySet(n_tasks, edges)
    name = draw(st.sampled_from(SCHEDS))
    n_gpus = draw(st.integers(1, 3))
    return graph, deps, name, n_gpus, seed


@st.composite
def output_case(draw):
    """Producer chains: layer i feeds layer i+1 through produced data."""
    layers = draw(st.integers(1, 4))
    width = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 9999))
    g = TaskGraph()
    deps_edges = []
    inputs = [g.add_data(1.0) for _ in range(width)]
    prev_tasks = [None] * width
    for layer in range(layers):
        next_inputs = []
        next_tasks = []
        for w in range(width):
            out = g.add_data(1.0)
            t = g.add_task([inputs[w]], flops=1.0, outputs=[out])
            if prev_tasks[w] is not None:
                deps_edges.append((prev_tasks[w], t.id))
            next_inputs.append(out)
            next_tasks.append(t.id)
        inputs = next_inputs
        prev_tasks = next_tasks
    deps = DependencySet(g.n_tasks, deps_edges)
    name = draw(st.sampled_from(["eager", "dmdar", "darts+luf"]))
    return g, deps, name, seed


class TestDagProperties:
    @given(dag_case())
    @settings(max_examples=80, deadline=None)
    def test_all_tasks_run_respecting_precedence(self, case):
        graph, deps, name, n_gpus, seed = case
        sched, eviction = make_scheduler(name)
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=4.0),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=seed,
            record_trace=True,
        )
        executed = sorted(t for o in result.executed_order for t in o)
        assert executed == list(range(graph.n_tasks))
        starts = {e.ref: e.time for e in result.trace.of_kind("task_start")}
        ends = {e.ref: e.time for e in result.trace.of_kind("task_end")}
        for succ in range(graph.n_tasks):
            for pred in deps.preds[succ]:
                assert starts[succ] >= ends[pred] - 1e-9

    @given(dag_case())
    @settings(max_examples=40, deadline=None)
    def test_makespan_at_least_critical_path(self, case):
        graph, deps, name, n_gpus, seed = case
        sched, eviction = make_scheduler(name)
        result = simulate(
            graph,
            toy_platform(n_gpus=n_gpus, memory=4.0),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=seed,
        )
        cp = deps.critical_path_flops(graph)  # 1 flop/s toy GPUs
        assert result.makespan >= cp - 1e-9


class TestOutputProperties:
    @given(output_case())
    @settings(max_examples=60, deadline=None)
    def test_chains_complete_with_all_stores(self, case):
        graph, deps, name, seed = case
        sched, eviction = make_scheduler(name)
        result = simulate(
            graph,
            toy_platform(n_gpus=2, memory=5.0),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=seed,
        )
        n_outputs = sum(len(t.outputs) for t in graph.tasks)
        assert sum(s.n_tasks for s in result.gpus) == graph.n_tasks
        assert result.total_stores == n_outputs
        assert result.total_stored_bytes == float(n_outputs)

    @given(output_case())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, case):
        graph, deps, name, seed = case
        runs = []
        for _ in range(2):
            sched, eviction = make_scheduler(name)
            runs.append(
                simulate(
                    graph,
                    toy_platform(n_gpus=2, memory=5.0),
                    sched,
                    eviction=eviction,
                    dependencies=deps,
                    seed=seed,
                )
            )
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].executed_order == runs[1].executed_order


class TestNvlinkProperties:
    @given(
        st.integers(4, 16), st.integers(2, 6), st.integers(0, 999),
        st.sampled_from(["eager", "dmdar", "darts+luf"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_peer_links_never_lose_tasks(self, n_tasks, n_data, seed, name):
        graph = random_bipartite(
            n_tasks, n_data, arity=2, data_size=1.0, task_flops=1.0, seed=seed
        )
        plat = PlatformSpec(
            gpus=[GpuSpec(name="t", gflops=1e-9, memory_bytes=4.0)] * 2,
            bus=BusSpec(bandwidth=1.0, latency=0.0, model="fifo"),
            peer_link=BusSpec(bandwidth=10.0, latency=0.0, model="fair"),
        )
        sched, eviction = make_scheduler(name)
        result = simulate(
            graph, plat, sched, eviction=eviction, seed=seed
        )
        assert sum(s.n_tasks for s in result.gpus) == n_tasks
        assert result.bytes_from_host + result.bytes_from_peer == (
            result.total_bytes
        )
