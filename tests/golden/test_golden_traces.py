"""Golden-trace regression suite for the six evaluated strategies.

For one tiny memory-pressured instance (2D matmul, n=8, two 120 MB
GPUs), the SAN007 trace digest of every strategy of the paper's
evaluation is committed under ``tests/golden/``.  Any change to the
simulator, a scheduler, or an eviction policy that alters a single
event of a single trace — one reordered fetch, one different eviction
victim, one shifted timestamp — changes the digest and fails this
suite.

Intentional behaviour changes are recorded by regenerating the files::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

and committing the diff (the review then shows exactly which
strategies' executions drifted).
"""

import json
from pathlib import Path

import pytest

from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.sanitizer import check_determinism
from repro.simulator.runtime import simulate
from repro.simulator.trace import TraceEvent, TraceRecorder
from repro.workloads.matmul2d import matmul2d

GOLDEN_DIR = Path(__file__).resolve().parent

#: the six strategies of the paper's evaluation (Fig 5's full set)
GOLDEN_STRATEGIES = (
    "eager",
    "dmdar",
    "mhfp",
    "hmetis+r",
    "darts",
    "darts+luf",
)

#: the pinned tiny instance: n=8 on 2x120 MB crosses the "B fits"
#: pressure threshold, so eviction policy and prefetch order both shape
#: the trace
INSTANCE = {
    "workload": "matmul2d",
    "n": 8,
    "n_gpus": 2,
    "memory_bytes": 120e6,
    "window": 2,
    "seed": 0,
}


def _slug(name: str) -> str:
    return name.replace("+", "_").replace("-", "_")


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"trace_{_slug(name)}.json"


def compute_digest(name: str) -> str:
    """SAN007 digest of the pinned instance (double-run verified)."""
    graph = matmul2d(INSTANCE["n"])
    platform = tesla_v100_node(
        INSTANCE["n_gpus"], memory_bytes=INSTANCE["memory_bytes"]
    )
    return check_determinism(
        graph,
        platform,
        name,
        window=INSTANCE["window"],
        seed=INSTANCE["seed"],
    )


@pytest.mark.parametrize("name", GOLDEN_STRATEGIES)
def test_trace_digest_matches_golden(name, request):
    digest = compute_digest(name)
    path = golden_path(name)
    if request.config.getoption("--update-golden"):
        entry = dict(INSTANCE)
        entry["scheduler"] = name
        entry["digest"] = digest
        path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden file {path.name}; generate it with "
        f"pytest tests/golden --update-golden"
    )
    committed = json.loads(path.read_text())
    assert committed["scheduler"] == name
    assert committed["digest"] == digest, (
        f"{name!r} execution trace drifted from the committed golden "
        f"digest on the pinned instance {INSTANCE}. If the change is "
        f"intentional, rerun with --update-golden and commit the diff."
    )


def test_golden_files_cover_all_six_strategies():
    committed = sorted(p.name for p in GOLDEN_DIR.glob("trace_*.json"))
    expected = sorted(
        golden_path(name).name for name in GOLDEN_STRATEGIES
    )
    assert committed == expected


def test_one_event_perturbation_changes_digest():
    """The digest is sensitive to a single perturbed trace event.

    This is the guarantee the suite rests on: if any one event's
    timestamp, kind, GPU, or payload changes, the golden comparison
    fails — there is no aggregation that could mask a drift.
    """
    graph = matmul2d(INSTANCE["n"])
    platform = tesla_v100_node(
        INSTANCE["n_gpus"], memory_bytes=INSTANCE["memory_bytes"]
    )
    sched, eviction = make_scheduler("darts+luf")
    result = simulate(
        graph,
        platform,
        sched,
        eviction=eviction,
        window=INSTANCE["window"],
        seed=INSTANCE["seed"],
        record_trace=True,
    )
    assert result.trace is not None and result.trace.events
    baseline = result.trace.digest()

    mid = len(result.trace.events) // 2
    for field, delta in (
        ("time", 1e-9),
        ("gpu", 1),
        ("ref", 1),
    ):
        perturbed = TraceRecorder(enabled=True)
        perturbed.events = list(result.trace.events)
        e = perturbed.events[mid]
        perturbed.events[mid] = TraceEvent(
            time=e.time + (delta if field == "time" else 0),
            kind=e.kind,
            gpu=e.gpu + (delta if field == "gpu" else 0),
            ref=e.ref + (delta if field == "ref" else 0),
        )
        assert perturbed.digest() != baseline, field

    # and dropping the event entirely is caught too
    truncated = TraceRecorder(enabled=True)
    truncated.events = (
        list(result.trace.events[:mid]) + list(result.trace.events[mid + 1:])
    )
    assert truncated.digest() != baseline
