"""Structural tests for the workload generators."""

import pytest

from repro.platform.calibration import (
    CHOLESKY_TILE_BYTES,
    DATA_SIZE_BYTES,
    TASK_FLOPS_GEMM,
    TASK_FLOPS_SQUARE,
)
from repro.workloads import (
    cholesky_tasks,
    matmul2d,
    matmul3d,
    random_bipartite,
    sparse_matmul2d,
)


class TestMatmul2d:
    def test_counts(self):
        g = matmul2d(7)
        assert g.n_tasks == 49
        assert g.n_data == 14

    def test_task_reads_one_row_one_column(self):
        g = matmul2d(5)
        for t in g.tasks:
            row, col = t.inputs
            assert row < 5 <= col

    def test_row_major_submission(self):
        g = matmul2d(3)
        # first three tasks share row datum 0
        assert [g.inputs_of(i)[0] for i in range(3)] == [0, 0, 0]
        assert [g.inputs_of(i)[1] for i in range(3)] == [3, 4, 5]

    def test_every_datum_used_n_times(self):
        g = matmul2d(6)
        assert all(g.degree(d) == 6 for d in range(g.n_data))

    def test_working_set_matches_paper_axis(self):
        g = matmul2d(5)
        assert g.working_set_bytes == pytest.approx(10 * DATA_SIZE_BYTES)

    def test_default_calibration(self):
        g = matmul2d(2)
        assert g.data[0].size == DATA_SIZE_BYTES
        assert g.tasks[0].flops == TASK_FLOPS_GEMM

    def test_randomized_keeps_structure(self):
        a = matmul2d(5, randomized=True, seed=1)
        b = matmul2d(5)
        assert a.n_tasks == b.n_tasks
        assert sorted(t.name for t in a.tasks) == sorted(
            t.name for t in b.tasks
        )

    def test_randomized_changes_order(self):
        a = matmul2d(5, randomized=True, seed=1)
        b = matmul2d(5)
        assert [t.name for t in a.tasks] != [t.name for t in b.tasks]

    def test_randomized_deterministic_per_seed(self):
        a = matmul2d(5, randomized=True, seed=1)
        b = matmul2d(5, randomized=True, seed=1)
        assert [t.name for t in a.tasks] == [t.name for t in b.tasks]

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            matmul2d(0)


class TestMatmul3d:
    def test_counts_with_c(self):
        g = matmul3d(3)
        assert g.n_tasks == 27
        assert g.n_data == 27  # 3 * 3^2

    def test_counts_without_c(self):
        g = matmul3d(3, include_c=False)
        assert g.n_data == 18
        assert g.max_task_arity() == 2

    def test_three_inputs_per_task(self):
        g = matmul3d(2)
        assert all(len(t.inputs) == 3 for t in g.tasks)

    def test_sharing_degrees(self):
        g = matmul3d(4)
        # every A/B/C block is read by exactly n tasks
        assert all(g.degree(d) == 4 for d in range(g.n_data))

    def test_square_block_flops(self):
        g = matmul3d(2)
        assert g.tasks[0].flops == TASK_FLOPS_SQUARE

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            matmul3d(0)


class TestCholesky:
    def test_task_counts(self):
        n = 5
        g = cholesky_tasks(n)
        expected = (
            n + n * (n - 1) // 2 * 2 + n * (n - 1) * (n - 2) // 6
        )
        assert g.n_tasks == expected

    def test_data_are_lower_triangle_tiles(self):
        n = 4
        g = cholesky_tasks(n)
        assert g.n_data == n * (n + 1) // 2

    def test_kernel_flops_hierarchy(self):
        g = cholesky_tasks(4)
        by_kind = {}
        for t in g.tasks:
            by_kind.setdefault(t.name.split("(")[0], t.flops)
        assert by_kind["POTRF"] < by_kind["TRSM"] == by_kind["SYRK"]
        assert by_kind["GEMM"] == 2 * by_kind["TRSM"]

    def test_gemm_has_three_inputs(self):
        g = cholesky_tasks(4)
        gemms = [t for t in g.tasks if t.name.startswith("GEMM")]
        assert gemms and all(len(t.inputs) == 3 for t in gemms)

    def test_potrf_reads_diagonal_only(self):
        g = cholesky_tasks(3)
        potrf = [t for t in g.tasks if t.name.startswith("POTRF")]
        assert all(len(t.inputs) == 1 for t in potrf)

    def test_uses_tile_bytes(self):
        g = cholesky_tasks(2)
        assert g.data[0].size == CHOLESKY_TILE_BYTES


class TestSparse:
    def test_density_roughly_respected(self):
        g = sparse_matmul2d(50, density=0.02, seed=0)
        assert 20 <= g.n_tasks <= 90  # ~50 expected of 2500

    def test_unused_data_dropped(self):
        g = sparse_matmul2d(50, density=0.02, seed=0)
        assert all(g.degree(d) >= 1 for d in range(g.n_data))

    def test_at_least_one_task(self):
        g = sparse_matmul2d(3, density=0.01, seed=0)
        assert g.n_tasks >= 1

    def test_deterministic(self):
        a = sparse_matmul2d(30, density=0.05, seed=9)
        b = sparse_matmul2d(30, density=0.05, seed=9)
        assert [t.name for t in a.tasks] == [t.name for t in b.tasks]

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            sparse_matmul2d(10, density=0.0)
        with pytest.raises(ValueError):
            sparse_matmul2d(10, density=1.5)

    def test_density_one_is_dense(self):
        g = sparse_matmul2d(4, density=1.0)
        assert g.n_tasks == 16


class TestRandomBipartite:
    def test_shape(self):
        g = random_bipartite(10, 6, arity=3, seed=1)
        assert g.n_tasks == 10
        assert g.n_data == 6
        assert all(len(t.inputs) == 3 for t in g.tasks)

    def test_heterogeneous_sizes(self):
        g = random_bipartite(5, 5, seed=1, heterogeneous_sizes=True)
        sizes = {d.size for d in g.data}
        assert len(sizes) > 1
        assert all(0.5 <= s <= 2.0 for s in sizes)

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            random_bipartite(3, 2, arity=5)

    def test_deterministic(self):
        a = random_bipartite(8, 4, seed=3)
        b = random_bipartite(8, 4, seed=3)
        assert [t.inputs for t in a.tasks] == [t.inputs for t in b.tasks]
