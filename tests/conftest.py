"""Shared fixtures: small canonical instances and platforms."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the committed golden trace digests under "
        "tests/golden/ instead of comparing against them",
    )

from repro.core.problem import TaskGraph
from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec
from repro.simulator import sanitizer as _sanitizer


@pytest.fixture(autouse=True)
def _sanitized_runs():
    """Model-invariant sanitizer on for every test (strict: violations
    raise).  Each Runtime created while enabled gets its own strict
    :class:`repro.simulator.sanitizer.Sanitizer`, turning every
    simulation in the suite into an invariant test for free."""
    _sanitizer.enable()
    try:
        yield
    finally:
        _sanitizer.disable()


@pytest.fixture
def figure1_graph() -> TaskGraph:
    """The paper's Figure 1: 9 tasks on a 3×3 grid, 6 shared data.

    Task ``T_{3i+j+1}`` reads row datum ``D_{i+1}`` and column datum
    ``D_{j+4}`` (ids 0..5 here).  All sizes are 1.
    """
    g = TaskGraph("figure1")
    rows = [g.add_data(1.0, name=f"D{i + 1}") for i in range(3)]
    cols = [g.add_data(1.0, name=f"D{j + 4}") for j in range(3)]
    for i in range(3):
        for j in range(3):
            g.add_task([rows[i], cols[j]], flops=1.0, name=f"T{3 * i + j + 1}")
    return g


@pytest.fixture
def chain_graph() -> TaskGraph:
    """5 tasks in a chain: task i shares one datum with task i+1."""
    g = TaskGraph("chain")
    d = [g.add_data(1.0, name=f"D{i}") for i in range(6)]
    for i in range(5):
        g.add_task([d[i], d[i + 1]], flops=1.0, name=f"T{i}")
    return g


@pytest.fixture
def single_gpu_platform() -> PlatformSpec:
    """One idealized GPU: 1 GFlop/s, 4-byte memory, unit-ish bus."""
    return PlatformSpec(
        gpus=[GpuSpec(name="toy", gflops=1e-9 * 1e9, memory_bytes=4.0)],
        bus=BusSpec(bandwidth=1.0, latency=0.0, model="fifo"),
    )


def toy_platform(
    n_gpus: int = 1,
    memory: float = 4.0,
    bandwidth: float = 1.0,
    gflops: float = 1.0,
    model: str = "fifo",
    latency: float = 0.0,
) -> PlatformSpec:
    """Tiny platform with unit-size quantities for exact timing math.

    ``gflops`` is in *flops per second* here divided by 1e9 internally,
    i.e. pass ``gflops=1.0`` for "1 flop takes 1 second per flop unit".
    """
    return PlatformSpec(
        gpus=[
            GpuSpec(name="toy", gflops=gflops / 1e9, memory_bytes=memory)
        ]
        * n_gpus,
        bus=BusSpec(bandwidth=bandwidth, latency=latency, model=model),
    )
