"""Calibration constants must stay consistent with the paper's setup."""

import pytest

from repro.platform.calibration import (
    DATA_SIZE_BYTES,
    DEFAULT_GPU_MEMORY_BYTES,
    PCIE_BANDWIDTH_BYTES_PER_S,
    TASK_FLOPS_GEMM,
    V100_GEMM_GFLOPS,
    data_items_per_memory,
    task_duration_s,
    transfer_duration_s,
)


class TestPaperAnchors:
    def test_data_block_is_about_14_mb(self):
        assert DATA_SIZE_BYTES == pytest.approx(14.75e6, rel=0.01)

    def test_working_set_anchor_n5(self):
        """Paper: 5x5 tasks <-> 140 MB working set (10 data)."""
        ws = 10 * DATA_SIZE_BYTES / 1e6
        assert ws == pytest.approx(147, rel=0.06)

    def test_working_set_anchor_n300(self):
        """Paper: 300x300 tasks <-> 8 400 MB working set (600 data)."""
        ws = 600 * DATA_SIZE_BYTES / 1e6
        assert ws == pytest.approx(8400, rel=0.06)

    def test_m_is_33_blocks_at_500mb(self):
        assert data_items_per_memory(DEFAULT_GPU_MEMORY_BYTES) == 33

    def test_transfer_slower_than_compute(self):
        """The regime that makes scheduling matter: one transfer costs
        more than one task, so >1 load/task means bus-bound."""
        assert transfer_duration_s() > task_duration_s()
        ratio = transfer_duration_s() / task_duration_s()
        assert 1.4 < ratio < 2.2

    def test_eager_collapse_plateau(self):
        """One load per task caps throughput near the paper's ~7.5 TF/s."""
        plateau = V100_GEMM_GFLOPS * task_duration_s() / transfer_duration_s()
        assert 6_500 < plateau < 8_500


class TestHelpers:
    def test_task_duration_formula(self):
        assert task_duration_s(1e9, 1.0) == pytest.approx(1.0)

    def test_task_duration_rejects_bad_gflops(self):
        with pytest.raises(ValueError):
            task_duration_s(1.0, 0.0)

    def test_transfer_duration_includes_latency(self):
        assert transfer_duration_s(16e9, 16e9, latency=0.5) == pytest.approx(1.5)

    def test_transfer_duration_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            transfer_duration_s(1.0, 0.0)

    def test_items_per_memory_floor(self):
        assert data_items_per_memory(29.5e6, 10e6) == 2
