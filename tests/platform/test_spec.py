"""Tests for platform specifications and presets."""

import pytest

from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec, tesla_v100_node


class TestGpuSpec:
    def test_defaults_match_paper(self):
        g = GpuSpec()
        assert g.gflops == 13_253.0
        assert g.memory_bytes == 500e6

    def test_rejects_nonpositive_gflops(self):
        with pytest.raises(ValueError):
            GpuSpec(gflops=0)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            GpuSpec(memory_bytes=-1)


class TestBusSpec:
    def test_defaults(self):
        b = BusSpec()
        assert b.bandwidth == 16e9
        assert b.model == "fair"

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown bus model"):
            BusSpec(model="token-ring")

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            BusSpec(latency=-1e-6)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            BusSpec(bandwidth=0)


class TestPlatformSpec:
    def test_needs_a_gpu(self):
        with pytest.raises(ValueError):
            PlatformSpec(gpus=[])

    def test_aggregates(self):
        p = PlatformSpec(gpus=[GpuSpec(), GpuSpec()])
        assert p.n_gpus == 2
        assert p.total_gflops == 2 * 13_253.0
        assert p.min_memory_bytes == 500e6

    def test_with_memory_replaces_all(self):
        p = PlatformSpec(gpus=[GpuSpec(), GpuSpec()]).with_memory(1e9)
        assert all(g.memory_bytes == 1e9 for g in p.gpus)

    def test_homogeneous_detection(self):
        assert PlatformSpec(gpus=[GpuSpec(), GpuSpec()]).homogeneous()
        mixed = PlatformSpec(gpus=[GpuSpec(), GpuSpec(gflops=1.0)])
        assert not mixed.homogeneous()


class TestPreset:
    def test_v100_node_counts(self):
        p = tesla_v100_node(4)
        assert p.n_gpus == 4
        assert p.homogeneous()

    def test_memory_override(self):
        p = tesla_v100_node(2, memory_bytes=250e6)
        assert p.min_memory_bytes == 250e6

    def test_unlimited_memory_is_32gb(self):
        p = tesla_v100_node(1, unlimited_memory=True)
        assert p.gpus[0].memory_bytes == 32e9

    def test_bus_model_selection(self):
        assert tesla_v100_node(1, bus_model="fifo").bus.model == "fifo"

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            tesla_v100_node(0)
