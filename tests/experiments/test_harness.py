"""Tests for the experiment harness and the figure registry."""

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.harness import SweepSpec, run_figure, run_sweep
from repro.platform.spec import tesla_v100_node
from repro.workloads.matmul2d import matmul2d


def tiny_spec(**overrides):
    base = dict(
        title="tiny",
        workload=lambda n: matmul2d(n),
        ns=[4, 6],
        platform=lambda: tesla_v100_node(1, memory_bytes=120e6),
        schedulers=["eager", "darts+luf"],
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestRunSweep:
    def test_series_aligned_across_schedulers(self):
        sweep = run_sweep(tiny_spec())
        xs = {tuple(s.xs()) for s in sweep.series.values()}
        assert len(xs) == 1
        assert len(next(iter(xs))) == 2

    def test_reference_lines_present(self):
        sweep = run_sweep(tiny_spec())
        assert "GFlop/s max" in sweep.reference_lines
        assert sweep.reference_lines["GFlop/s max"] == pytest.approx(13253.0)
        assert len(sweep.reference_curves["PCI bus limit (MB)"]) == 2

    def test_no_sched_time_variant_added(self):
        sweep = run_sweep(
            tiny_spec(schedulers=["hmetis+r"],
                      no_sched_time_variants=["hmetis+r"])
        )
        assert "hMETIS+R" in sweep.series
        assert "hMETIS+R no sched. time" in sweep.series
        pure = sweep.series["hMETIS+R no sched. time"].points[0]
        assert pure.gflops == pure.gflops_with_sched

    def test_repetitions_average(self):
        sweep = run_sweep(tiny_spec(ns=[4], repetitions=3))
        assert len(sweep.series["EAGER"].points) == 1

    def test_threshold_only_reaches_darts(self):
        spec = tiny_spec(
            schedulers=["eager", "darts+luf+threshold"], threshold=2
        )
        sweep = run_sweep(spec)
        assert "DARTS+LUF+threshold" in sweep.series


class TestFigureRegistry:
    def test_all_eleven_figures_registered(self):
        assert sorted(FIGURES) == [f"fig{i}" for i in range(10, 14)] + [
            f"fig{i}" for i in range(3, 10)
        ]

    def test_every_figure_has_both_scales(self):
        for cfg in FIGURES.values():
            assert cfg.ns_small and cfg.ns_paper
            assert cfg.metric in (
                "gflops",
                "gflops_with_sched",
                "transfers_mb",
            )

    def test_spec_builds_for_both_scales(self):
        for cfg in FIGURES.values():
            for scale in ("small", "paper"):
                spec = cfg.spec(scale)
                assert spec.ns
                assert spec.platform().n_gpus == cfg.n_gpus

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            FIGURES["fig3"].spec("huge")

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_figure("fig99")

    def test_unlimited_memory_figure(self):
        plat = FIGURES["fig13"].platform_factory("small")()
        assert plat.gpus[0].memory_bytes == 32e9

    def test_memory_small_only_applies_to_small_scale(self):
        cfg = FIGURES["fig8"]
        small = cfg.platform_factory("small")()
        paper = cfg.platform_factory("paper")()
        assert small.gpus[0].memory_bytes == 250e6
        assert paper.gpus[0].memory_bytes == 500e6


class TestCli:
    def test_cli_runs_a_figure(self, capsys):
        from repro.experiments import cli

        rc = cli.main(
            ["fig4", "--scale", "small", "--points", "2", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig4" in out and "EAGER" in out
        assert "[cache off]" in out

    def test_cli_unknown_figure(self, capsys):
        from repro.experiments import cli

        assert cli.main(["fig99"]) == 2
        out = capsys.readouterr().out
        assert "unknown figure" in out

    def test_cli_rejects_unknown_figure_before_running(self, capsys):
        """Validation happens up front — no sweep output precedes it."""
        from repro.experiments import cli

        assert cli.main(["fig98", "--points", "1"]) == 2
        out = capsys.readouterr().out
        assert "==" not in out

    def test_cli_cache_cold_then_warm(self, tmp_path, capsys):
        from repro.experiments import cli

        argv = [
            "fig4",
            "--points",
            "1",
            "--jobs",
            "2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert cli.main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hits, 5 misses" in cold
        assert cli.main(argv) == 0
        warm = capsys.readouterr().out
        assert "5 hits, 0 misses" in warm

    def test_cli_argv_defaults_to_sys_argv(self, monkeypatch, capsys):
        import sys

        from repro.experiments import cli

        monkeypatch.setattr(sys, "argv", ["repro-experiments", "fig99"])
        assert cli.main() == 2


class TestRepSeedWiring:
    def test_cells_receive_mixed_seeds(self, monkeypatch):
        """run_sweep must pass rep_seed(...) to simulate, not seed+rep."""
        from repro.experiments import harness

        seen = []
        real = harness.simulate

        def spy(graph, platform, sched, **kwargs):
            seen.append(kwargs["seed"])
            return real(graph, platform, sched, **kwargs)

        monkeypatch.setattr(harness, "simulate", spy)
        spec = tiny_spec(ns=[4], schedulers=["eager", "dmdar"],
                         repetitions=2)
        run_sweep(spec)
        expected = [
            harness.rep_seed(0, name, 4, rep)
            for name in ("eager", "dmdar")
            for rep in range(2)
        ]
        assert seen == expected
        assert len(set(seen)) == 4
