"""The content-addressed result cache: keys, storage, serialization."""

import json

import pytest

from repro.experiments.cache import (
    ResultCache,
    cell_key,
    code_salt,
    graph_fingerprint,
    platform_fingerprint,
)
from repro.experiments.harness import SweepSpec, rep_seed, run_cell
from repro.metrics.collect import Measurement, Sweep
from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec, tesla_v100_node
from repro.workloads.matmul2d import matmul2d


def tiny_spec(**overrides):
    base = dict(
        title="tiny",
        workload=lambda n: matmul2d(n),
        ns=[4],
        platform=lambda: tesla_v100_node(1, memory_bytes=120e6),
        schedulers=["eager"],
    )
    base.update(overrides)
    return SweepSpec(**base)


def sample_measurement(**overrides):
    base = dict(
        scheduler="EAGER",
        n=4,
        working_set_mb=1.0 / 3.0,  # non-terminating binary fraction
        gflops=10238.123456789012,
        gflops_with_sched=10001.98765432101,
        transfers_mb=118.0 + 1e-12,
        loads=37,
        evictions=5,
        makespan_s=0.0123456789,
        scheduling_time_s=3.14e-5,
        balance=1.0000000001,
    )
    base.update(overrides)
    return Measurement(**base)


class TestSerialization:
    def test_measurement_json_round_trip_is_lossless(self):
        m = sample_measurement()
        back = Measurement.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m
        assert isinstance(back.loads, int) and isinstance(back.n, int)

    def test_sweep_json_round_trip_is_lossless(self):
        sweep = Sweep(title="t")
        sweep.add(sample_measurement())
        sweep.add(sample_measurement(scheduler="DMDAR", gflops=9.5))
        sweep.add(sample_measurement(n=6, working_set_mb=2 / 3))
        sweep.reference_lines["GFlop/s max"] = 13253.0
        sweep.reference_curves["PCI bus limit (MB)"] = [1.1, 2.2]
        back = Sweep.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert json.dumps(back.to_dict()) == json.dumps(sweep.to_dict())
        assert list(back.series) == ["EAGER", "DMDAR"]
        assert back.series["EAGER"].points == sweep.series["EAGER"].points

    def test_deterministic_dict_strips_wall_clock_fields(self):
        d = sample_measurement().deterministic_dict()
        assert "scheduling_time_s" not in d
        assert "gflops_with_sched" not in d
        assert "gflops" in d and "makespan_s" in d


class TestCellKey:
    def test_key_is_stable(self):
        spec = tiny_spec()
        assert cell_key(spec, 4, "eager", 0) == cell_key(spec, 4, "eager", 0)

    def test_key_ignores_cosmetic_title(self):
        a = cell_key(tiny_spec(title="a"), 4, "eager", 0)
        b = cell_key(tiny_spec(title="b"), 4, "eager", 0)
        assert a == b

    def test_key_depends_on_everything_that_matters(self):
        spec = tiny_spec()
        base = cell_key(spec, 4, "eager", 0)
        assert cell_key(spec, 6, "eager", 0) != base  # instance size
        assert cell_key(spec, 4, "dmdar", 0) != base  # scheduler
        assert cell_key(spec, 4, "eager", 1) != base  # repetition
        assert cell_key(tiny_spec(seed=1), 4, "eager", 0) != base  # seed
        assert cell_key(tiny_spec(window=3), 4, "eager", 0) != base  # window
        other_platform = tiny_spec(
            platform=lambda: tesla_v100_node(2, memory_bytes=120e6)
        )
        assert cell_key(other_platform, 4, "eager", 0) != base  # platform

    def test_threshold_only_affects_threshold_schedulers(self):
        plain_a = cell_key(tiny_spec(threshold=None), 4, "darts+luf", 0)
        plain_b = cell_key(tiny_spec(threshold=10), 4, "darts+luf", 0)
        assert plain_a == plain_b
        spec = tiny_spec(threshold=10)
        thresh = cell_key(spec, 4, "darts+luf+threshold", 0)
        other = cell_key(tiny_spec(threshold=20), 4, "darts+luf+threshold", 0)
        assert thresh != other

    def test_graph_fingerprint_ignores_labels(self):
        from repro.core.problem import TaskGraph

        a = TaskGraph("a")
        d1 = a.add_data(8.0, name="x")
        a.add_task([d1], flops=1.0, name="t")
        b = TaskGraph("b")
        d2 = b.add_data(8.0, name="renamed")
        b.add_task([d2], flops=1.0, name="other")
        assert graph_fingerprint(a) == graph_fingerprint(b)
        c = TaskGraph("c")
        d3 = c.add_data(9.0)
        c.add_task([d3], flops=1.0)
        assert graph_fingerprint(c) != graph_fingerprint(a)

    def test_platform_fingerprint_covers_peer_link(self):
        plain = PlatformSpec(gpus=[GpuSpec()], bus=BusSpec())
        peer = PlatformSpec(
            gpus=[GpuSpec()], bus=BusSpec(), peer_link=BusSpec(bandwidth=5.0)
        )
        assert platform_fingerprint(plain) != platform_fingerprint(peer)

    def test_code_salt_is_a_hex_digest(self):
        salt = code_salt()
        assert len(salt) == 64
        int(salt, 16)


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        m = sample_measurement()
        cache.put("ab" + "0" * 62, m)
        assert cache.get("ab" + "0" * 62) == m
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, sample_measurement())
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_cached_measurement_equals_recomputation(self, tmp_path):
        spec = tiny_spec()
        m = run_cell(spec, 4, "eager", 0)
        cache = ResultCache(tmp_path)
        key = cache.key_for(spec, 4, "eager", 0)
        cache.put(key, m)
        assert cache.get(key) == m

    def test_stats_since(self, tmp_path):
        cache = ResultCache(tmp_path)
        before = cache.snapshot()
        cache.get("ab" + "0" * 62)
        assert cache.stats_since(before) == {"hits": 0, "misses": 1}


class TestRepSeed:
    def test_deterministic(self):
        assert rep_seed(0, "eager", 4, 0) == rep_seed(0, "eager", 4, 0)

    def test_mixes_scheduler_name_and_size(self):
        base = rep_seed(0, "eager", 4, 0)
        assert rep_seed(0, "dmdar", 4, 0) != base
        assert rep_seed(0, "eager", 6, 0) != base
        assert rep_seed(0, "eager", 4, 1) != base
        assert rep_seed(1, "eager", 4, 0) != base

    def test_name_canonicalization(self):
        assert rep_seed(0, " DARTS+LUF ", 4, 0) == rep_seed(
            0, "darts+luf", 4, 0
        )

    def test_repetitions_of_one_scheduler_get_distinct_seeds(self):
        seeds = {rep_seed(0, "eager", 4, rep) for rep in range(10)}
        assert len(seeds) == 10

    def test_schedulers_do_not_share_a_seed_ladder(self):
        """The pre-fix bug: seeds were ``spec.seed + rep`` for every
        scheduler and every n, so all cells of a repetition shared one
        random state."""
        with pytest.raises(AssertionError):
            assert rep_seed(0, "eager", 4, 1) == rep_seed(0, "dmdar", 6, 1)
