"""Fault tolerance of the parallel sweep executor.

Chaos contract: killing a pool worker mid-sweep (SIGKILL, as the OOM
killer would) must yield a merged sweep byte-identical to the serial
one — the affected cell is recomputed, not dropped.  A cell that fails
persistently is excluded after ``max_attempts`` rounds, reported in the
merge footer, and only cleanly completed cells ever reach the cache.
"""

import os
import signal

import pytest

import repro.experiments.parallel as parallel_mod
from repro.experiments.cache import ResultCache
from repro.experiments.harness import SweepSpec, run_cell, run_sweep
from repro.experiments.parallel import (
    enumerate_cells,
    fork_available,
    run_sweep_parallel,
)
from repro.platform.spec import tesla_v100_node
from repro.simulator.faults import FaultPlan, StragglerSlowdown
from repro.workloads.matmul2d import matmul2d

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def tiny_spec(**overrides):
    base = dict(
        title="tiny",
        workload=lambda n: matmul2d(n),
        ns=[4, 6],
        platform=lambda: tesla_v100_node(1, memory_bytes=120e6),
        schedulers=["eager", "darts+luf"],
    )
    base.update(overrides)
    return SweepSpec(**base)


def _chaotic_run_cell(marker, kill_n, kill_name):
    """A run_cell that SIGKILLs its process on the first attempt of one
    cell (leaving ``marker`` behind so the retry succeeds)."""

    def chaotic(spec, n, name, rep, graph=None):
        if n == kill_n and name == kill_name and not os.path.exists(marker):
            open(marker, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return run_cell(spec, n, name, rep, graph=graph)

    return chaotic


class TestChaosRecovery:
    @needs_fork
    def test_killed_worker_cell_recomputed_identically(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_spec()
        serial = run_sweep(spec)
        marker = str(tmp_path / "killed-once")
        monkeypatch.setattr(
            parallel_mod, "run_cell", _chaotic_run_cell(marker, 6, "eager")
        )
        chaos = run_sweep_parallel(spec, jobs=2, retry_backoff=0.05)
        assert os.path.exists(marker), "the chaos kill never fired"
        assert (
            serial.deterministic_dict() == chaos.deterministic_dict()
        ), "retried cell diverged from its serial value"

    @needs_fork
    def test_killed_worker_does_not_poison_cache(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        marker = str(tmp_path / "killed-once")
        monkeypatch.setattr(
            parallel_mod, "run_cell", _chaotic_run_cell(marker, 6, "eager")
        )
        cache = ResultCache(tmp_path / "cache")
        run_sweep_parallel(spec, jobs=2, cache=cache, retry_backoff=0.05)
        # every cell completed cleanly in the end, so all are cached and
        # a warm rerun works from cache alone
        warm = ResultCache(tmp_path / "cache")
        rerun = run_sweep_parallel(spec, jobs=1, cache=warm)
        assert warm.misses == 0
        assert rerun.deterministic_dict() == run_sweep(spec).deterministic_dict()


class TestExclusion:
    def _always_broken(self, bad_n, bad_name):
        def broken(spec, n, name, rep, graph=None):
            if n == bad_n and name == bad_name:
                raise RuntimeError("synthetic persistent failure")
            return run_cell(spec, n, name, rep, graph=graph)

        return broken

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_persistent_failure_excluded_and_reported(
        self, jobs, monkeypatch, capsys
    ):
        spec = tiny_spec()
        monkeypatch.setattr(
            parallel_mod, "run_cell", self._always_broken(6, "eager")
        )
        sweep = run_sweep_parallel(
            spec, jobs=jobs, max_attempts=2, retry_backoff=0.01
        )
        out = capsys.readouterr().out
        assert "excluded" in out
        assert "n=6 eager" in out
        # the surviving cells still form a usable partial sweep: the
        # eager series lost its n=6 point, the other series kept both
        ns_by_series = sorted(
            [p.n for p in s.points] for s in sweep.series.values()
        )
        assert ns_by_series == [[4], [4, 6]]

    def test_excluded_cell_not_cached(self, tmp_path, monkeypatch):
        spec = tiny_spec(schedulers=["eager"])
        monkeypatch.setattr(
            parallel_mod, "run_cell", self._always_broken(6, "eager")
        )
        cache = ResultCache(tmp_path / "cache")
        run_sweep_parallel(
            spec, jobs=1, cache=cache, max_attempts=2, retry_backoff=0.01
        )
        # exactly one cell (n=4) completed; only it may be cached
        files = list((tmp_path / "cache").rglob("*.json"))
        assert len(files) == 1

    def test_partial_average_uses_surviving_repetitions(self, monkeypatch):
        spec = tiny_spec(schedulers=["eager"], repetitions=2)

        def flaky(spec_, n, name, rep, graph=None):
            if n == 6 and rep == 1:
                raise RuntimeError("synthetic rep failure")
            return run_cell(spec_, n, name, rep, graph=graph)

        monkeypatch.setattr(parallel_mod, "run_cell", flaky)
        sweep = run_sweep_parallel(
            spec, jobs=1, max_attempts=1, retry_backoff=0.01
        )
        # n=6 still present, averaged over the single surviving rep
        ns = {p.n for s in sweep.series.values() for p in s.points}
        assert 6 in ns


class TestTimeout:
    @needs_fork
    def test_hung_cell_times_out_and_is_excluded(self, monkeypatch, capsys):
        spec = tiny_spec(schedulers=["eager"])

        def hanging(spec_, n, name, rep, graph=None):
            if n == 6:
                import time as _time

                _time.sleep(60.0)
            return run_cell(spec_, n, name, rep, graph=graph)

        monkeypatch.setattr(parallel_mod, "run_cell", hanging)
        sweep = run_sweep_parallel(
            spec,
            jobs=2,
            cell_timeout=1.5,
            max_attempts=1,
            retry_backoff=0.01,
        )
        out = capsys.readouterr().out
        assert "excluded" in out and "wall clock" in out
        ns = {p.n for s in sweep.series.values() for p in s.points}
        assert ns == {4}


class TestFaultPlanThreading:
    def test_fault_plan_reaches_every_cell(self):
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=0, factor=2.0),))
        base = run_sweep(tiny_spec(schedulers=["eager"]))
        slowed = run_sweep(tiny_spec(schedulers=["eager"], faults=plan))
        for key in base.series:
            for pb, ps in zip(base.series[key].points, slowed.series[key].points):
                assert ps.makespan_s > pb.makespan_s

    def test_parallel_faulted_sweep_equals_serial(self):
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=0, factor=1.5),))
        spec = tiny_spec(faults=plan)
        serial = run_sweep(spec)
        par = run_sweep_parallel(spec, jobs=2)
        assert serial.deterministic_dict() == par.deterministic_dict()

    def test_fault_plan_changes_cache_key(self, tmp_path):
        from repro.experiments.cache import cell_key

        spec = tiny_spec()
        plan = FaultPlan(stragglers=(StragglerSlowdown(gpu=0, factor=1.5),))
        faulted = tiny_spec(faults=plan)
        g = spec.workload(4)
        assert cell_key(spec, 4, "eager", 0, graph=g) != cell_key(
            faulted, 4, "eager", 0, graph=g
        )
