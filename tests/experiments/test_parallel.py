"""Equivalence tests: parallel/cached execution vs the serial sweep."""

import json

import pytest

from repro.experiments import harness
from repro.experiments.cache import ResultCache
from repro.experiments.harness import SweepSpec, run_sweep
from repro.experiments.parallel import (
    Cell,
    default_jobs,
    enumerate_cells,
    run_sweep_parallel,
)
from repro.platform.spec import tesla_v100_node
from repro.workloads.matmul2d import matmul2d


def tiny_spec(**overrides):
    base = dict(
        title="tiny",
        workload=lambda n: matmul2d(n),
        ns=[4, 6],
        platform=lambda: tesla_v100_node(1, memory_bytes=120e6),
        schedulers=["eager", "darts+luf"],
    )
    base.update(overrides)
    return SweepSpec(**base)


def assert_deterministically_equal(a, b):
    """Measurement-for-measurement equality on bit-reproducible fields."""
    assert list(a.series) == list(b.series)
    da, db = a.deterministic_dict(), b.deterministic_dict()
    assert json.dumps(da, sort_keys=True) == json.dumps(db, sort_keys=True)
    for key in a.series:
        for pa, pb in zip(a.series[key].points, b.series[key].points):
            assert pa.deterministic_dict() == pb.deterministic_dict()


class TestParallelEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_parallel_equals_serial(self, jobs):
        spec = tiny_spec(repetitions=2, no_sched_time_variants=["eager"])
        serial = run_sweep(spec)
        par = run_sweep_parallel(spec, jobs=jobs)
        assert_deterministically_equal(serial, par)

    def test_reference_lines_and_curves_match(self):
        spec = tiny_spec()
        serial = run_sweep(spec)
        par = run_sweep_parallel(spec, jobs=2)
        assert serial.reference_lines == par.reference_lines
        assert serial.reference_curves == par.reference_curves

    def test_worker_counts_agree_with_each_other(self):
        spec = tiny_spec(schedulers=["eager", "dmdar", "darts+luf"])
        sweeps = [run_sweep_parallel(spec, jobs=j) for j in (1, 2, 4)]
        for other in sweeps[1:]:
            assert_deterministically_equal(sweeps[0], other)

    def test_enumerate_cells_matches_serial_order(self):
        spec = tiny_spec(repetitions=2)
        cells = enumerate_cells(spec)
        assert cells == [
            Cell(n, name, rep)
            for n in spec.ns
            for name in spec.schedulers
            for rep in range(2)
        ]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestCacheEquivalence:
    def test_warm_rerun_identical_with_zero_simulations(
        self, tmp_path, monkeypatch
    ):
        spec = tiny_spec(repetitions=2)
        n_cells = len(enumerate_cells(spec))

        cold_cache = ResultCache(tmp_path / "cache")
        cold = run_sweep_parallel(spec, jobs=1, cache=cold_cache)
        assert cold_cache.misses == n_cells
        assert cold_cache.hits == 0

        calls = {"n": 0}
        real_simulate = harness.simulate

        def counting_simulate(*args, **kwargs):
            calls["n"] += 1
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(harness, "simulate", counting_simulate)

        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_sweep_parallel(spec, jobs=1, cache=warm_cache)
        assert calls["n"] == 0, "warm-cache rerun must not simulate"
        assert warm_cache.hits == n_cells
        assert warm_cache.misses == 0
        # cache-served cells reproduce the cold run byte-for-byte,
        # wall-clock fields included
        assert json.dumps(cold.to_dict()) == json.dumps(warm.to_dict())

    def test_cold_run_simulates_every_cell(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        n_cells = len(enumerate_cells(spec))
        calls = {"n": 0}
        real_simulate = harness.simulate

        def counting_simulate(*args, **kwargs):
            calls["n"] += 1
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(harness, "simulate", counting_simulate)
        run_sweep_parallel(spec, jobs=1, cache=ResultCache(tmp_path / "c"))
        assert calls["n"] == n_cells

    def test_partial_cache_only_computes_missing_cells(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        narrow = tiny_spec(schedulers=["eager"])
        run_sweep_parallel(narrow, jobs=1, cache=ResultCache(cache_dir))

        calls = {"n": 0}
        real_simulate = harness.simulate

        def counting_simulate(*args, **kwargs):
            calls["n"] += 1
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(harness, "simulate", counting_simulate)
        wide = tiny_spec(schedulers=["eager", "darts+luf"])
        cache = ResultCache(cache_dir)
        run_sweep_parallel(wide, jobs=1, cache=cache)
        # eager cells are reused; only the darts+luf cells simulate
        assert calls["n"] == len(wide.ns)
        assert cache.hits == len(wide.ns)
        assert cache.misses == len(wide.ns)

    def test_cached_sweep_equals_uncached_serial(self, tmp_path):
        spec = tiny_spec()
        serial = run_sweep(spec)
        cached = run_sweep_parallel(
            spec, jobs=2, cache=ResultCache(tmp_path / "c")
        )
        assert_deterministically_equal(serial, cached)
