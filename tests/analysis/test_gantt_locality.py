"""Tests for the Gantt renderer and reuse-distance analysis."""

import pytest

from repro.analysis.gantt import gantt
from repro.analysis.locality import (
    predicted_loads,
    reuse_distances,
    reuse_summary,
)
from repro.core.schedule import Schedule, replay_schedule
from repro.schedulers.eager import Eager
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


class TestGantt:
    def test_renders_all_lanes(self, figure1_graph):
        r = simulate(
            figure1_graph,
            toy_platform(n_gpus=2, memory=4.0),
            Eager(),
            record_trace=True,
        )
        art = gantt(r, width=60)
        assert "gpu0" in art and "gpu1" in art
        assert "#" in art
        assert "-" in art  # transfers happened

    def test_requires_trace(self, figure1_graph):
        r = simulate(figure1_graph, toy_platform(memory=4.0), Eager())
        with pytest.raises(ValueError, match="record_trace"):
            gantt(r)

    def test_compute_lane_density_reflects_utilization(self, figure1_graph):
        r = simulate(
            figure1_graph,
            toy_platform(memory=6.0, bandwidth=100.0),
            Eager(),
            record_trace=True,
        )
        art = gantt(r, width=80, show_transfers=False)
        lane = art.splitlines()[1]
        # near-perfect utilization: the lane is mostly '#'
        assert lane.count("#") > 60


class TestReuseDistances:
    def test_first_accesses_are_compulsory(self, chain_graph):
        dists = reuse_distances(chain_graph, [0, 1, 2, 3, 4])
        # 6 distinct data, 10 accesses
        assert dists.count(None) == 6

    def test_chain_reuses_at_distance_zero(self, chain_graph):
        # consecutive tasks share one datum: the shared datum's second
        # access happens right after its first -> distance 0
        dists = reuse_distances(chain_graph, [0, 1])
        assert dists == [None, None, 0, None]

    def test_row_major_distance_grows_with_n(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        summary = reuse_summary(g, list(range(16)))
        # column data return after a whole row: large mean distance
        assert summary.max_distance >= 4
        assert summary.compulsory == 8

    def test_snake_order_has_shorter_distances(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        row_major = list(range(16))
        snake = []
        for i in range(4):
            row = list(range(i * 4, i * 4 + 4))
            snake.extend(row if i % 2 == 0 else row[::-1])
        assert (
            reuse_summary(g, snake).mean_distance
            <= reuse_summary(g, row_major).mean_distance
        )


class TestPredictedLoads:
    def test_exact_for_single_input_tasks(self):
        g = random_bipartite(30, 6, arity=1, seed=4)
        order = list(range(30))
        for m in (1, 2, 3, 6):
            predicted = predicted_loads(g, order, m)
            actual = replay_schedule(
                g, Schedule.single_gpu(order), capacity_items=m
            ).total_loads
            assert predicted == actual

    def test_close_to_replay_for_two_input_tasks(self):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        order = list(range(25))
        for m in (3, 5, 8):
            predicted = predicted_loads(g, order, m)
            actual = replay_schedule(
                g, Schedule.single_gpu(order), capacity_items=m
            ).total_loads
            # replay protects current-task inputs, so it never does worse
            assert actual <= predicted
            assert predicted <= actual * 1.5 + 2

    def test_large_capacity_gives_compulsory(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        assert predicted_loads(g, list(range(16)), 100) == 8
