"""Tests for interval extraction and resource-utilization analysis."""

import pytest

from repro.analysis.timeline import (
    Interval,
    bus_utilization,
    gpu_busy_intervals,
    idle_time,
    memory_timeline,
    overlap_fraction,
    transfer_intervals,
)
from repro.schedulers.eager import Eager
from repro.simulator.runtime import simulate
from repro.simulator.trace import TraceRecorder

from tests.conftest import toy_platform


def traced_run(graph, **kw):
    kw.setdefault("record_trace", True)
    return simulate(graph, toy_platform(**{k: v for k, v in kw.items()
                                           if k in ("n_gpus", "memory",
                                                    "bandwidth", "gflops")}),
                    Eager(),
                    record_trace=True)


class TestIntervals:
    def test_busy_intervals_cover_all_tasks(self, figure1_graph):
        r = traced_run(figure1_graph, memory=4.0)
        busy = gpu_busy_intervals(r.trace, 0)
        assert len(busy) == 9
        assert all(iv.duration == pytest.approx(1.0) for iv in busy)

    def test_busy_intervals_do_not_overlap(self, figure1_graph):
        r = traced_run(figure1_graph, memory=4.0)
        busy = gpu_busy_intervals(r.trace, 0)
        for a, b in zip(busy, busy[1:]):
            assert b.start >= a.end - 1e-12

    def test_transfer_intervals_match_load_count(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        xfers = transfer_intervals(r.trace, 0)
        assert len(xfers) == r.total_loads
        assert all(iv.duration > 0 for iv in xfers)

    def test_pairing_handles_refetches(self, figure1_graph):
        """The same datum may be fetched several times (after eviction);
        each pair must close in FIFO order."""
        r = traced_run(figure1_graph, memory=2.0)
        xfers = transfer_intervals(r.trace, 0)
        by_ref = {}
        for iv in xfers:
            by_ref.setdefault(iv.ref, []).append(iv)
        for ivs in by_ref.values():
            for a, b in zip(ivs, ivs[1:]):
                assert b.start >= a.end - 1e-12


class TestUtilization:
    def test_bus_utilization_in_unit_range(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        u = bus_utilization(r.trace, 1, r.makespan)
        assert 0.0 < u <= 1.0

    def test_idle_plus_busy_equals_makespan(self, figure1_graph):
        r = traced_run(figure1_graph, memory=4.0)
        busy = sum(iv.duration for iv in gpu_busy_intervals(r.trace, 0))
        assert busy + idle_time(r.trace, 0, r.makespan) == pytest.approx(
            r.makespan
        )

    def test_overlap_fraction_bounds(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        f = overlap_fraction(r.trace, 0)
        assert 0.0 <= f <= 1.0

    def test_overlap_is_one_without_transfers(self):
        trace = TraceRecorder(enabled=True)
        assert overlap_fraction(trace, 0) == 1.0


class TestMemoryTimeline:
    def test_counts_rise_and_fall(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        tl = memory_timeline(r.trace, 0)
        levels = [lvl for _, lvl in tl]
        assert max(levels) <= 2.0  # capacity respected in resident count
        assert levels[0] == 0.0

    def test_byte_mode(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        sizes = [d.size for d in figure1_graph.data]
        tl = memory_timeline(r.trace, 0, data_sizes=sizes)
        assert max(lvl for _, lvl in tl) <= 2.0

    def test_times_monotonic(self, figure1_graph):
        r = traced_run(figure1_graph, memory=2.0)
        times = [t for t, _ in memory_timeline(r.trace, 0)]
        assert times == sorted(times)
