"""Tests for Hierarchical Fair Packing and its multi-GPU adaptation."""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.hfp import Hfp, Mhfp, balance_packages, hfp_pack
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.sparse import sparse_matmul2d

from tests.conftest import toy_platform


class TestPacking:
    def test_packages_cover_tasks_exactly_once(self):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        packages = hfp_pack(g, memory_bytes=6.0, k_packages=2)
        assert sorted(t for p in packages for t in p) == list(range(25))
        assert len(packages) == 2

    def test_single_package(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        packages = hfp_pack(g, memory_bytes=4.0, k_packages=1)
        assert len(packages) == 1
        assert sorted(packages[0]) == list(range(16))

    def test_merges_data_sharing_tasks_together(self):
        """Tasks of the same grid row share a datum: they should end up
        adjacent in some package, not scattered."""
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        packages = hfp_pack(g, memory_bytes=4.0, k_packages=2)
        # count row changes along each package; a locality-aware pack
        # changes row far less often than random order would
        switches = 0
        total = 0
        for p in packages:
            for a, b in zip(p, p[1:]):
                total += 1
                if a // 4 != b // 4 and a % 4 != b % 4:
                    switches += 1
        assert switches <= total * 0.5

    def test_more_packages_than_tasks(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        g.add_task([d], flops=1.0)
        packages = hfp_pack(g, memory_bytes=2.0, k_packages=3)
        assert len(packages) == 3
        assert sorted(t for p in packages for t in p) == [0]

    def test_disconnected_tasks_still_pack(self):
        g = sparse_matmul2d(20, density=0.03, data_size=1.0,
                            task_flops=1.0, seed=2)
        packages = hfp_pack(g, memory_bytes=4.0, k_packages=4)
        assert sorted(t for p in packages for t in p) == list(
            range(g.n_tasks)
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            hfp_pack(matmul2d(2), memory_bytes=100.0, k_packages=0)


class TestBalancing:
    def test_moves_tail_tasks_to_lightest(self):
        g = matmul2d(3, data_size=1.0, task_flops=1.0)  # 9 unit tasks
        packages = [[0, 1, 2, 3, 4, 5, 6], [7, 8]]
        balanced = balance_packages(packages, g)
        sizes = sorted(len(p) for p in balanced)
        assert sizes == [4, 5]

    def test_tail_tasks_are_the_ones_moved(self):
        g = matmul2d(3, data_size=1.0, task_flops=1.0)
        packages = [[0, 1, 2, 3, 4, 5, 6], [7, 8]]
        balanced = balance_packages(packages, g)
        # the head of the big package is untouched
        assert balanced[0][:4] == [0, 1, 2, 3]
        # moved tasks are appended at the end of the small package
        assert balanced[1][:2] == [7, 8]

    def test_already_balanced_untouched(self):
        g = matmul2d(2, data_size=1.0, task_flops=1.0)
        packages = [[0, 1], [2, 3]]
        assert balance_packages(packages, g) == [[0, 1], [2, 3]]

    def test_single_package_untouched(self):
        g = matmul2d(2, data_size=1.0, task_flops=1.0)
        assert balance_packages([[0, 1, 2, 3]], g) == [[0, 1, 2, 3]]

    def test_heterogeneous_flops_balanced_by_load(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        g.add_task([d], flops=10.0)  # heavy
        for _ in range(5):
            g.add_task([d], flops=1.0)
        balanced = balance_packages([[0], [1, 2, 3, 4, 5]], g)
        loads = [sum(g.tasks[t].flops for t in p) for p in balanced]
        assert max(loads) <= 10.0  # the heavy task alone caps the max

    def test_no_task_lost_or_duplicated(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        packages = [[*range(12)], [*range(12, 16)]]
        balanced = balance_packages(packages, g)
        assert sorted(t for p in balanced for t in p) == list(range(16))


class TestSchedulers:
    def test_mhfp_runs_and_balances(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        result = simulate(
            g, toy_platform(n_gpus=2, memory=6.0, bandwidth=10.0), Mhfp()
        )
        assert sum(s.n_tasks for s in result.gpus) == 36
        assert result.balance_ratio() < 1.5

    def test_hfp_single_gpu(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        result = simulate(g, toy_platform(memory=4.0, bandwidth=10.0), Hfp())
        assert result.gpus[0].n_tasks == 16

    def test_mhfp_loads_far_below_eager_under_pressure(self):
        from repro.schedulers.eager import Eager

        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        plat = toy_platform(n_gpus=1, memory=4.0, bandwidth=100.0)
        eager = simulate(g, plat, Eager())
        mhfp = simulate(g, plat, Mhfp())
        assert mhfp.total_loads < eager.total_loads

    def test_packages_accessor(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        sched = Mhfp()
        from repro.simulator.runtime import Runtime

        rt = Runtime(g, toy_platform(n_gpus=2, memory=6.0), sched)
        sched.prepare(rt.view)
        pk = sched.packages()
        assert sorted(t for p in pk for t in p) == list(range(16))

    def test_names(self):
        assert Mhfp().name == "mHFP"
        assert Hfp().name == "HFP"
