"""Tests for the Ready reordering lists and task stealing."""

from repro.schedulers.eager import Eager
from repro.schedulers.ready import ReadyLists
from repro.simulator.runtime import Runtime
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


def make_view(graph, n_gpus=1, memory=4.0):
    """A real RuntimeView over an idle runtime (no events fired)."""
    rt = Runtime(graph, toy_platform(n_gpus=n_gpus, memory=memory), Eager())
    return rt, rt.view


class TestPopReady:
    def test_prefers_task_with_data_resident(self, figure1_graph):
        rt, view = make_view(figure1_graph, memory=4.0)
        # preload D1 (0) and D4 (3) = inputs of T0
        rt.memories[0].request(0)
        rt.memories[0].request(3)
        rt.engine.run()
        lists = ReadyLists(1)
        lists.assign(0, [8, 4, 0])  # T0 last in the list
        assert lists.pop_ready(0, view) == 0

    def test_counts_fetching_data_as_available(self, figure1_graph):
        rt, view = make_view(figure1_graph, memory=4.0)
        rt.memories[0].request(0)  # fetch in flight, not yet present
        lists = ReadyLists(1)
        lists.assign(0, [4, 0])
        # T0 misses only D3; T4 misses both its inputs
        assert lists.pop_ready(0, view) == 0

    def test_tie_goes_to_list_position(self, figure1_graph):
        rt, view = make_view(figure1_graph)
        lists = ReadyLists(1)
        lists.assign(0, [5, 2, 7])  # all equally missing
        assert lists.pop_ready(0, view) == 5

    def test_pop_ready_empty_returns_none(self, figure1_graph):
        rt, view = make_view(figure1_graph)
        lists = ReadyLists(1)
        assert lists.pop_ready(0, view) is None

    def test_pop_fifo_order(self):
        lists = ReadyLists(1)
        lists.assign(0, [3, 1, 2])
        assert [lists.pop_fifo(0) for _ in range(4)] == [3, 1, 2, None]

    def test_remaining_view(self):
        lists = ReadyLists(2)
        lists.assign(0, [1, 2])
        assert lists.remaining(0) == [1, 2]
        assert lists.total_remaining() == 2


class TestStealing:
    def test_steals_half_from_most_loaded_tail(self):
        lists = ReadyLists(2)
        lists.assign(0, [0, 1, 2, 3, 4, 5])
        assert lists.steal_half(1) is True
        assert lists.lists[0] == [0, 1, 2]
        assert lists.lists[1] == [3, 4, 5]

    def test_steals_from_the_most_loaded(self):
        lists = ReadyLists(3)
        lists.assign(0, [0, 1])
        lists.assign(1, [2, 3, 4, 5])
        lists.steal_half(2)
        assert lists.lists[1] == [2, 3]
        assert lists.lists[2] == [4, 5]

    def test_steals_single_remaining_task(self):
        lists = ReadyLists(2)
        lists.assign(0, [7])
        assert lists.steal_half(1) is True
        assert lists.lists[1] == [7]
        assert lists.lists[0] == []

    def test_nothing_to_steal(self):
        lists = ReadyLists(2)
        assert lists.steal_half(0) is False

    def test_never_steals_from_self(self):
        lists = ReadyLists(2)
        lists.assign(0, [1, 2, 3])
        assert lists.steal_half(0) is False
