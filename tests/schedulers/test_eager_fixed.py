"""Tests for EAGER, FixedSchedule, and the partition scheduler."""

import pytest

from repro.core.schedule import Schedule
from repro.schedulers.eager import Eager
from repro.schedulers.fixed import FixedSchedule
from repro.schedulers.partition import HmetisR
from repro.simulator.runtime import Runtime, simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


class TestEager:
    def test_pops_in_submission_order(self, figure1_graph):
        sched = Eager()
        rt = Runtime(figure1_graph, toy_platform(n_gpus=2, memory=4.0), sched)
        sched.prepare(rt.view)
        assert [sched.next_task(0), sched.next_task(1), sched.next_task(0)] == [
            0,
            1,
            2,
        ]

    def test_returns_none_when_drained(self, figure1_graph):
        sched = Eager()
        rt = Runtime(figure1_graph, toy_platform(memory=4.0), sched)
        sched.prepare(rt.view)
        for _ in range(9):
            assert sched.next_task(0) is not None
        assert sched.next_task(0) is None

    def test_row_major_collapse_under_pressure(self):
        """The paper's EAGER pathology: one reload per task once a full
        row of columns no longer fits."""
        n = 8
        g = matmul2d(n, data_size=1.0, task_flops=1.0)
        plat = toy_platform(memory=n // 2, bandwidth=100.0)
        result = simulate(g, plat, Eager())
        assert result.total_loads >= n * n  # ~1 load per task


class TestFixedSchedule:
    def test_names_reflect_options(self):
        s = Schedule.single_gpu([0])
        assert FixedSchedule(s).name == "FIXED"
        assert FixedSchedule(s, use_ready=True).name == "FIXED+R"
        assert (
            FixedSchedule(s, use_ready=True, use_stealing=True).name
            == "FIXED+R+steal"
        )

    def test_stealing_rebalances_lopsided_schedule(self, figure1_graph):
        lopsided = Schedule(order=[list(range(9)), []])
        sched = FixedSchedule(lopsided, use_stealing=True)
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=4.0), sched
        )
        assert all(g.n_tasks > 0 for g in result.gpus)

    def test_no_stealing_keeps_lopsided(self, figure1_graph):
        lopsided = Schedule(order=[list(range(9)), []])
        sched = FixedSchedule(lopsided, use_stealing=False)
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=4.0), sched
        )
        assert result.gpus[1].n_tasks == 0


class TestHmetisR:
    def test_executes_all_tasks(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        result = simulate(
            g,
            toy_platform(n_gpus=2, memory=6.0, bandwidth=10.0),
            HmetisR(nruns=2),
        )
        assert sum(s.n_tasks for s in result.gpus) == 36

    def test_partition_result_exposed(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        sched = HmetisR(nruns=2)
        rt = Runtime(g, toy_platform(n_gpus=2, memory=6.0), sched)
        sched.prepare(rt.view)
        assert sched.partition is not None
        assert sched.partition.k == 2
        assert sched.partition.imbalance < 1.5

    def test_stealing_covers_partition_imbalance(self):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        result = simulate(
            g,
            toy_platform(n_gpus=3, memory=6.0, bandwidth=10.0),
            HmetisR(nruns=2),
        )
        assert sum(s.n_tasks for s in result.gpus) == 25
        assert result.balance_ratio() < 2.0

    def test_deterministic_given_seed(self):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        parts = []
        for _ in range(2):
            sched = HmetisR(nruns=2, seed=7)
            rt = Runtime(g, toy_platform(n_gpus=2, memory=6.0), sched)
            sched.prepare(rt.view)
            parts.append(sched.partition.parts)
        assert parts[0] == parts[1]
