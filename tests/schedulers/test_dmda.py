"""Tests for DMDA / DMDAR (Algorithms 1-2)."""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.dmda import Dmda, Dmdar
from repro.simulator.runtime import Runtime, simulate
from repro.workloads.matmul2d import matmul2d

from tests.conftest import toy_platform


def prepared(graph, n_gpus=2, memory=50.0, bandwidth=1.0, gflops=1.0):
    sched = Dmda()
    rt = Runtime(
        graph,
        toy_platform(
            n_gpus=n_gpus, memory=memory, bandwidth=bandwidth, gflops=gflops
        ),
        sched,
    )
    sched.prepare(rt.view)
    return sched


class TestAllocation:
    def test_all_tasks_allocated_once(self, figure1_graph):
        sched = prepared(figure1_graph)
        alloc = sched.allocation()
        assert sorted(t for l in alloc for t in l) == list(range(9))

    def test_balances_identical_tasks(self, figure1_graph):
        sched = prepared(figure1_graph)
        sizes = [len(l) for l in sched.allocation()]
        assert max(sizes) - min(sizes) <= 1

    def test_affinity_data_attracts_tasks(self):
        """Tasks sharing data gravitate to the GPU already planned to
        hold it (comm term of Eq. 1)."""
        g = TaskGraph()
        a = g.add_data(10.0)
        b = g.add_data(10.0)
        # four tasks on datum a, four on datum b, interleaved
        for i in range(4):
            g.add_task([a], flops=1.0)
            g.add_task([b], flops=1.0)
        sched = prepared(g, n_gpus=2, bandwidth=0.1)
        alloc = sched.allocation()
        # all a-tasks on one GPU, all b-tasks on the other
        groups = [{t % 2 for t in l} for l in alloc]
        assert groups[0].isdisjoint(groups[1])

    def test_first_task_goes_to_gpu0(self, figure1_graph):
        sched = prepared(figure1_graph)
        assert 0 in sched.allocation()[0]

    def test_single_gpu_keeps_submission_order(self, figure1_graph):
        sched = prepared(figure1_graph, n_gpus=1)
        assert sched.allocation()[0] == list(range(9))


class TestRuntimeBehaviour:
    def test_dmda_executes_everything(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=3.0), Dmda()
        )
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_dmdar_executes_everything(self, figure1_graph):
        result = simulate(
            figure1_graph, toy_platform(n_gpus=2, memory=3.0), Dmdar()
        )
        assert sum(g.n_tasks for g in result.gpus) == 9

    def test_ready_reduces_transfers_under_pressure(self):
        """DMDAR's whole point: under memory pressure, picking the task
        with resident data loads less than FIFO order."""
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        plat = toy_platform(n_gpus=1, memory=4.0, bandwidth=100.0)
        plain = simulate(g, plat, Dmda(), seed=0)
        ready = simulate(g, plat, Dmdar(), seed=0)
        assert ready.total_loads <= plain.total_loads

    def test_names(self):
        assert Dmda().name == "DMDA"
        assert Dmdar().name == "DMDAR"
        assert Dmdar().use_ready and not Dmda().use_ready

    def test_remaining_order_exposed(self, figure1_graph):
        sched = prepared(figure1_graph, n_gpus=1)
        assert list(sched.remaining_order(0)) == list(range(9))
