"""Tests for the plot-name scheduler registry."""

import pytest

from repro.schedulers.darts import Darts
from repro.schedulers.registry import (
    SCHEDULER_NAMES,
    eviction_for,
    make_scheduler,
)


class TestMakeScheduler:
    @pytest.mark.parametrize(
        "name,display",
        [
            ("eager", "EAGER"),
            ("dmda", "DMDA"),
            ("dmdar", "DMDAR"),
            ("mhfp", "mHFP"),
            ("hmetis+r", "hMETIS+R"),
            ("darts", "DARTS"),
            ("darts+luf", "DARTS+LUF"),
            ("darts+luf-3inputs", "DARTS+LUF-3inputs"),
            ("darts+luf+opti", "DARTS+LUF+OPTI"),
            ("darts+luf+opti-3inputs", "DARTS+LUF+OPTI-3inputs"),
        ],
    )
    def test_display_names_match_paper(self, name, display):
        sched, _ = make_scheduler(name)
        assert sched.name == display

    def test_names_case_insensitive(self):
        sched, _ = make_scheduler("DARTS+LUF")
        assert sched.name == "DARTS+LUF"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("hfs+")

    def test_luf_paired_with_darts_luf_only(self):
        assert eviction_for("darts+luf") == "luf"
        assert eviction_for("darts+luf-3inputs") == "luf"
        assert eviction_for("darts") == "lru"
        assert eviction_for("dmdar") == "lru"
        assert eviction_for("eager") == "lru"

    def test_threshold_suffix(self):
        sched, ev = make_scheduler("darts+luf+threshold")
        assert isinstance(sched, Darts)
        assert sched.threshold == 10
        assert ev == "luf"
        assert sched.name.endswith("+threshold")

    def test_threshold_value_override(self):
        sched, _ = make_scheduler("darts+luf+threshold", threshold=3)
        assert sched.threshold == 3

    def test_threshold_on_non_darts_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            make_scheduler("dmdar", threshold=5)

    def test_variant_flags_wired(self):
        sched, _ = make_scheduler("darts+luf+opti-3inputs")
        assert sched.opti and sched.three_inputs

    def test_registry_lists_threshold_alias(self):
        assert "darts+luf+threshold" in SCHEDULER_NAMES

    def test_fresh_instance_each_call(self):
        a, _ = make_scheduler("eager")
        b, _ = make_scheduler("eager")
        assert a is not b
