"""Tests for DARTS (Algorithm 5) and its coupling with LUF (Algorithm 6)."""

import pytest

from repro.core.problem import TaskGraph
from repro.schedulers.darts import Darts
from repro.simulator.runtime import Runtime, simulate
from repro.workloads.matmul2d import matmul2d
from repro.workloads.matmul3d import matmul3d

from tests.conftest import toy_platform


def darts_on(graph, n_gpus=1, memory=4.0, **kw):
    sched = Darts(**kw)
    rt = Runtime(graph, toy_platform(n_gpus=n_gpus, memory=memory), sched)
    sched.prepare(rt.view)
    return rt, sched


class TestFreeTaskSelection:
    def test_counts_free_tasks_correctly(self, figure1_graph):
        rt, sched = darts_on(figure1_graph)
        # preload column datum D4 (id 3): tasks T0,T3,T6 each still miss
        # their row datum, so e.g. loading row D1 (0) frees exactly T0.
        rt.memories[0].request(3)
        rt.engine.run()
        sched.on_fetch_issued(0, 3)
        sched.on_data_loaded(0, 3)
        assert sched._count_free_tasks(0, rt.view.held(0)) == 1

    def test_refill_prefers_most_enabling_datum(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, memory=6.0)
        # preload all three column data: any row datum now frees 3 tasks
        for d in (3, 4, 5):
            rt.memories[0].request(d)
        rt.engine.run()
        for d in (3, 4, 5):
            sched.on_fetch_issued(0, d)
            sched.on_data_loaded(0, d)
        task = sched.next_task(0)
        assert task is not None
        # all tasks of that row were planned together
        assert len(sched.planned_tasks(0)) == 2

    def test_random_fallback_when_nothing_free(self, figure1_graph):
        rt, sched = darts_on(figure1_graph)
        # empty memory: every task needs 2 loads; base DARTS picks a
        # random task and claims its inputs
        task = sched.next_task(0)
        assert task is not None
        for d in figure1_graph.inputs_of(task):
            assert d not in sched._data_not_in_mem[0]

    def test_all_tasks_handed_out_exactly_once(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, memory=6.0)
        seen = []
        while True:
            t = sched.next_task(0)
            if t is None:
                break
            seen.append(t)
        assert sorted(seen) == list(range(9))

    def test_none_when_exhausted(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, memory=6.0)
        for _ in range(9):
            sched.next_task(0)
        assert sched.next_task(0) is None


class TestEvictionCoupling:
    def test_eviction_unplans_dependent_tasks(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, memory=6.0)
        for d in (3, 4, 5):
            rt.memories[0].request(d)
        rt.engine.run()
        for d in (3, 4, 5):
            sched.on_fetch_issued(0, d)
            sched.on_data_loaded(0, d)
        first = sched.next_task(0)
        planned_before = set(sched.planned_tasks(0))
        assert planned_before
        # evict the row datum that the planned tasks depend on
        row = [d for d in figure1_graph.inputs_of(first) if d < 3][0]
        sched.on_data_evicted(0, row)
        assert row in sched._data_not_in_mem[0]
        # planned tasks that needed the victim went back to the pool
        for t in planned_before:
            if row in figure1_graph.inputs_of(t):
                assert t in sched._unowned
                assert t not in sched.planned_tasks(0)

    def test_unplanned_tasks_can_go_to_other_gpu(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, n_gpus=2, memory=6.0)
        for d in (3, 4, 5):
            rt.memories[0].request(d)
        rt.engine.run()
        for d in (3, 4, 5):
            sched.on_fetch_issued(0, d)
            sched.on_data_loaded(0, d)
        sched.next_task(0)
        planned = list(sched.planned_tasks(0))
        row = next(iter(set(figure1_graph.inputs_of(planned[0])) - {3, 4, 5}))
        sched.on_data_evicted(0, row)
        # GPU1 can now claim the released tasks
        claimed = []
        while True:
            t = sched.next_task(1)
            if t is None:
                break
            claimed.append(t)
        assert set(planned) <= set(claimed) | set(sched.planned_tasks(1))

    def test_data_loaded_syncs_candidate_set(self, figure1_graph):
        rt, sched = darts_on(figure1_graph)
        assert 2 in sched._data_not_in_mem[0]
        sched.on_fetch_issued(0, 2)
        sched.on_data_loaded(0, 2)
        assert 2 not in sched._data_not_in_mem[0]


class TestVariants:
    def test_names(self):
        assert Darts().name == "DARTS"
        assert Darts(opti=True).name == "DARTS+OPTI"
        assert Darts(three_inputs=True).name == "DARTS-3inputs"
        assert Darts(threshold=5).name == "DARTS+threshold"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Darts(threshold=0)

    def test_three_inputs_picks_two_load_task(self):
        """With 3-input tasks and one datum resident, the 3inputs
        variant finds a task needing exactly two more loads instead of
        drawing at random."""
        g = matmul3d(2, data_size=1.0, task_flops=1.0)
        sched = Darts(three_inputs=True)
        rt = Runtime(g, toy_platform(memory=8.0), sched)
        sched.prepare(rt.view)
        # preload C[0,0] (the 3rd input of tasks P[0,0,k])
        c00 = [d.id for d in g.data if d.name == "C[0,0]"][0]
        rt.memories[0].request(c00)
        rt.engine.run()
        sched.on_fetch_issued(0, c00)
        sched.on_data_loaded(0, c00)
        task = sched.next_task(0)
        assert c00 in g.inputs_of(task)

    def test_opti_and_full_scan_both_complete(self):
        g = matmul2d(5, data_size=1.0, task_flops=1.0)
        for opti in (False, True):
            result = simulate(
                g,
                toy_platform(memory=4.0, bandwidth=10.0),
                Darts(opti=opti),
                eviction="luf",
                seed=2,
            )
            assert result.gpus[0].n_tasks == 25

    def test_threshold_limits_scan(self, figure1_graph):
        rt, sched = darts_on(figure1_graph, memory=6.0, threshold=1)
        t = sched.next_task(0)
        assert t is not None  # still functional with a tiny scan budget

    def test_all_variants_execute_full_workload(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        for kw in (
            {},
            {"opti": True},
            {"three_inputs": True},
            {"threshold": 3},
            {"opti": True, "three_inputs": True},
        ):
            result = simulate(
                g,
                toy_platform(n_gpus=2, memory=5.0, bandwidth=10.0),
                Darts(**kw),
                eviction="luf",
                seed=1,
            )
            assert sum(s.n_tasks for s in result.gpus) == 36


class TestMultiGpuDisjointness:
    def test_gpus_own_disjoint_task_sets(self, figure1_graph):
        result = simulate(
            figure1_graph,
            toy_platform(n_gpus=2, memory=4.0, bandwidth=10.0),
            Darts(),
            eviction="luf",
            seed=3,
        )
        a, b = result.executed_order
        assert not (set(a) & set(b))
        assert sorted(a + b) == list(range(9))
