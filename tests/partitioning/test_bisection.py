"""Tests for multilevel bisection, coarsening and the K-way driver."""

import random

import pytest

from repro.core.problem import TaskGraph
from repro.partitioning.bisection import multilevel_bisect, partition_kway
from repro.partitioning.coarsen import coarsen_to, contract, match_heavy_edge
from repro.partitioning.fm import bisection_cut
from repro.partitioning.hypergraph import Hypergraph
from repro.workloads.matmul2d import matmul2d


def clustered_hypergraph(groups=4, size=6, rng_seed=0):
    """``groups`` dense clusters with weak random bridges."""
    rng = random.Random(rng_seed)
    n = groups * size
    nets, weights = [], []
    for g in range(groups):
        base = g * size
        for _ in range(8):
            pins = tuple(rng.sample(range(base, base + size), 3))
            nets.append(pins)
            weights.append(5.0)
    for _ in range(groups):
        nets.append(tuple(rng.sample(range(n), 2)))
        weights.append(0.5)
    return Hypergraph(n, [1.0] * n, nets, weights)


class TestCoarsening:
    def test_matching_is_symmetric(self):
        h = clustered_hypergraph()
        match = match_heavy_edge(h, random.Random(0))
        for v, u in enumerate(match):
            assert match[u] == v or u == v

    def test_contract_preserves_total_weight(self):
        h = clustered_hypergraph()
        match = match_heavy_edge(h, random.Random(0))
        coarse, cmap = contract(h, match)
        assert coarse.total_vertex_weight == pytest.approx(
            h.total_vertex_weight
        )
        assert len(cmap) == h.n
        assert max(cmap) == coarse.n - 1

    def test_contract_roughly_halves(self):
        h = clustered_hypergraph()
        coarse, _ = contract(h, match_heavy_edge(h, random.Random(0)))
        assert coarse.n <= h.n * 0.75

    def test_coarsen_to_target(self):
        h = clustered_hypergraph(groups=6, size=8)
        levels, maps = coarsen_to(h, 10, random.Random(0))
        assert levels[0] is h
        assert len(maps) == len(levels) - 1
        assert levels[-1].n <= max(10, levels[-2].n * 0.9) or len(levels) == 1


class TestBisect:
    def test_separates_two_clusters(self):
        h = clustered_hypergraph(groups=2, size=8)
        side, cut = multilevel_bisect(h, nruns=5, rng=random.Random(1))
        # the two clusters should end on opposite sides, cutting only
        # the weak bridges
        assert cut <= 1.0 + 1e-9
        first = side[:8]
        second = side[8:]
        assert len(set(first)) == 1 and len(set(second)) == 1
        assert first[0] != second[0]

    def test_balance_respected(self):
        h = clustered_hypergraph(groups=2, size=8)
        side, _ = multilevel_bisect(
            h, ubfactor=5.0, nruns=3, rng=random.Random(0)
        )
        w0 = sum(1 for s in side if s == 0)
        assert 6 <= w0 <= 10

    def test_uneven_target_fraction(self):
        h = clustered_hypergraph(groups=3, size=6)
        side, _ = multilevel_bisect(
            h, target0_frac=1 / 3, ubfactor=8.0, nruns=3, rng=random.Random(0)
        )
        w0 = sum(1 for s in side if s == 0)
        assert 4 <= w0 <= 9  # about a third of 18

    def test_cut_reported_matches_assignment(self):
        h = clustered_hypergraph()
        side, cut = multilevel_bisect(h, nruns=2, rng=random.Random(2))
        assert cut == pytest.approx(bisection_cut(h, side))


class TestKway:
    def test_partition_covers_all_vertices(self):
        h = clustered_hypergraph(groups=4, size=6)
        parts = partition_kway(h, 4, rng=random.Random(0))
        assert len(parts) == h.n
        assert set(parts) == {0, 1, 2, 3}

    def test_k1_is_trivial(self):
        h = clustered_hypergraph()
        assert set(partition_kway(h, 1)) == {0}

    def test_k3_works(self):
        h = clustered_hypergraph(groups=3, size=6)
        parts = partition_kway(h, 3, ubfactor=8.0, rng=random.Random(0))
        sizes = [parts.count(k) for k in range(3)]
        assert all(3 <= s <= 9 for s in sizes)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            partition_kway(clustered_hypergraph(), 0)

    def test_matmul_partition_beats_striping(self):
        """On the 2D matmul, the partitioner should find block structure
        with lower cut than naive row striping."""
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        h = Hypergraph.from_taskgraph(g)
        parts = partition_kway(h, 2, nruns=5, rng=random.Random(0))
        cut = 0.0
        for d in range(g.n_data):
            sides = {parts[t] for t in g.users_of(d)}
            cut += len(sides) - 1
        # row striping (rows 0-3 vs 4-7) cuts all 8 column data = 8;
        # the partitioner must not do worse
        assert cut <= 8.0
