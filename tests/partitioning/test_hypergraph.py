"""Tests for the hypergraph structure."""

import pytest

from repro.core.problem import TaskGraph
from repro.partitioning.hypergraph import Hypergraph


class TestConstruction:
    def test_pin_lists_built(self):
        h = Hypergraph(3, [1.0] * 3, [(0, 1), (1, 2)], [1.0, 2.0])
        assert h.pins_of[1] == [0, 1]
        assert h.n_nets == 2
        assert h.total_vertex_weight == 3.0

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [1.0], [], [])

    def test_net_weight_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [1.0, 1.0], [(0, 1)], [])

    def test_unknown_pin_rejected(self):
        with pytest.raises(ValueError, match="unknown vertex"):
            Hypergraph(2, [1.0, 1.0], [(0, 5)], [1.0])

    def test_repeated_pin_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            Hypergraph(2, [1.0, 1.0], [(0, 0)], [1.0])


class TestFromTaskGraph:
    def test_one_net_per_shared_datum(self, figure1_graph):
        h = Hypergraph.from_taskgraph(figure1_graph)
        assert h.n == 9
        assert h.n_nets == 6  # every datum has 3 readers

    def test_singleton_nets_dropped(self):
        g = TaskGraph()
        shared = g.add_data(1.0)
        solo = g.add_data(1.0)
        g.add_task([shared, solo], flops=1.0)
        g.add_task([shared], flops=1.0)
        h = Hypergraph.from_taskgraph(g)
        assert h.n_nets == 1  # only the shared datum survives

    def test_flops_weights(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        g.add_task([d], flops=5.0)
        g.add_task([d], flops=7.0)
        h = Hypergraph.from_taskgraph(g, use_flops_weights=True)
        assert h.vwgt == [5.0, 7.0]
        h = Hypergraph.from_taskgraph(g, use_flops_weights=False)
        assert h.vwgt == [1.0, 1.0]

    def test_net_weights_are_data_sizes(self):
        g = TaskGraph()
        d = g.add_data(42.0)
        g.add_task([d], flops=1.0)
        g.add_task([d], flops=1.0)
        h = Hypergraph.from_taskgraph(g)
        assert h.nwgt == [42.0]


class TestNeighborWeights:
    def test_scaled_by_net_size(self, figure1_graph):
        h = Hypergraph.from_taskgraph(figure1_graph)
        # T0 shares a 3-pin net with T1 (row) and with T3 (column):
        # each contributes w/(|net|-1) = 1/2.
        scores = h.neighbor_weights(0)
        assert scores[1] == pytest.approx(0.5)
        assert scores[3] == pytest.approx(0.5)
        assert 4 not in scores  # diagonal neighbour shares nothing

    def test_exclude_parameter(self, figure1_graph):
        h = Hypergraph.from_taskgraph(figure1_graph)
        scores = h.neighbor_weights(0, exclude=1)
        assert 1 not in scores
