"""Tests for task-level partitioning and the graph-model baseline."""

import random

import pytest

from repro.partitioning.graphpart import clique_graph_partition
from repro.partitioning.interface import cut_weight, partition_tasks
from repro.workloads.matmul2d import matmul2d
from repro.workloads.sparse import sparse_matmul2d


class TestPartitionTasks:
    def test_parts_cover_tasks_exactly_once(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        res = partition_tasks(g, 3, nruns=3, rng=random.Random(0))
        seen = sorted(t for p in res.parts for t in p)
        assert seen == list(range(g.n_tasks))
        assert res.k == 3

    def test_parts_keep_submission_order(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        res = partition_tasks(g, 2, nruns=2, rng=random.Random(0))
        for p in res.parts:
            assert p == sorted(p)

    def test_balance_reported(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        res = partition_tasks(g, 2, nruns=3, rng=random.Random(0))
        assert 1.0 <= res.imbalance <= 1.3

    def test_cut_bytes_consistent(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        res = partition_tasks(g, 2, nruns=3, rng=random.Random(0))
        assert res.cut_bytes == pytest.approx(cut_weight(g, res.parts))

    def test_k1_has_zero_cut(self):
        g = matmul2d(4, data_size=1.0, task_flops=1.0)
        res = partition_tasks(g, 1)
        assert res.cut_bytes == 0.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            partition_tasks(matmul2d(3), 0)

    def test_sparse_instance_partitionable(self):
        g = sparse_matmul2d(30, density=0.05, data_size=1.0,
                            task_flops=1.0, seed=1)
        res = partition_tasks(g, 4, nruns=2, rng=random.Random(0))
        assert sorted(t for p in res.parts for t in p) == list(
            range(g.n_tasks)
        )


class TestCutWeight:
    def test_connectivity_minus_one(self, figure1_graph):
        # rows to GPUs: each column datum spans 3 parts -> (3-1)*3 data
        parts = [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        assert cut_weight(figure1_graph, parts) == 6.0

    def test_no_cut_single_part(self, figure1_graph):
        assert cut_weight(figure1_graph, [list(range(9))]) == 0.0


class TestGraphModelBaseline:
    def test_clique_partition_valid(self):
        g = matmul2d(6, data_size=1.0, task_flops=1.0)
        res = clique_graph_partition(g, 2, nruns=3, rng=random.Random(0))
        assert sorted(t for p in res.parts for t in p) == list(
            range(g.n_tasks)
        )

    def test_hypergraph_not_worse_on_shared_data(self):
        """§IV-B ablation: on instances with widely-shared data the
        hypergraph model's true cut is at least as good on average."""
        g = matmul2d(8, data_size=1.0, task_flops=1.0)
        hyper = partition_tasks(g, 4, nruns=5, rng=random.Random(1))
        clique = clique_graph_partition(g, 4, nruns=5, rng=random.Random(1))
        assert hyper.cut_bytes <= clique.cut_bytes * 1.25
