"""Tests for the FM refinement pass and cut computation."""

import random

import pytest

from repro.partitioning.fm import bisection_cut, fm_refine
from repro.partitioning.hypergraph import Hypergraph


def two_cliques(k=4, bridge_weight=0.1):
    """Two k-vertex groups, heavy internal nets, one light bridge net."""
    n = 2 * k
    nets = [tuple(range(k)), tuple(range(k, n)), (k - 1, k)]
    weights = [10.0, 10.0, bridge_weight]
    return Hypergraph(n, [1.0] * n, nets, weights)


class TestCut:
    def test_uncut_partition_costs_zero(self):
        h = two_cliques()
        side = [0] * 4 + [1] * 4
        assert bisection_cut(h, side) == pytest.approx(0.1)

    def test_fully_mixed_cuts_everything(self):
        h = two_cliques()
        side = [0, 1] * 4
        assert bisection_cut(h, side) == pytest.approx(20.1)

    def test_all_on_one_side_cuts_nothing(self):
        h = two_cliques()
        assert bisection_cut(h, [0] * 8) == 0.0


class TestRefinement:
    def test_repairs_a_bad_bisection(self):
        h = two_cliques()
        # swap one vertex across: both heavy nets become cut
        side = [0, 0, 0, 1, 0, 1, 1, 1]
        refined = fm_refine(h, side, target0=4.0, tolerance=1.0)
        assert bisection_cut(h, refined) == pytest.approx(0.1)

    def test_respects_balance(self):
        h = two_cliques()
        side = [0, 0, 0, 1, 0, 1, 1, 1]
        refined = fm_refine(h, side, target0=4.0, tolerance=1.0)
        w0 = sum(1 for s in refined if s == 0)
        assert 3 <= w0 <= 5

    def test_never_worsens_cut(self):
        rng = random.Random(4)
        for trial in range(10):
            n = 12
            nets = []
            for _ in range(20):
                size = rng.randint(2, 4)
                nets.append(tuple(rng.sample(range(n), size)))
            h = Hypergraph(n, [1.0] * n, nets, [1.0] * 20)
            side = [rng.randint(0, 1) for _ in range(n)]
            before = bisection_cut(h, side)
            refined = fm_refine(h, side, target0=n / 2, tolerance=2.0)
            assert bisection_cut(h, refined) <= before + 1e-9

    def test_repairs_infeasible_balance(self):
        """All vertices on one side: FM must move some across."""
        h = two_cliques()
        refined = fm_refine(h, [0] * 8, target0=4.0, tolerance=1.0)
        w0 = sum(1 for s in refined if s == 0)
        assert w0 < 8

    def test_weighted_vertices_balanced_by_weight(self):
        h = Hypergraph(4, [3.0, 1.0, 1.0, 1.0], [(0, 1), (2, 3)], [1.0, 1.0])
        refined = fm_refine(h, [0, 0, 1, 1], target0=3.0, tolerance=0.5)
        w0 = sum(h.vwgt[v] for v in range(4) if refined[v] == 0)
        assert abs(w0 - 3.0) <= 1.0
