"""Tests for dependency sets and the Cholesky DAG."""

import pytest

from repro.core.problem import TaskGraph
from repro.dag.deps import CycleError, DependencySet
from repro.dag.workloads import cholesky_dag
from repro.workloads.cholesky import cholesky_tasks


def chain_deps(n):
    return DependencySet(n, [(i, i + 1) for i in range(n - 1)])


class TestDependencySet:
    def test_edges_recorded_both_ways(self):
        d = DependencySet(3, [(0, 2)])
        assert d.preds[2] == {0}
        assert d.succs[0] == {2}
        assert d.n_edges == 1

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            DependencySet(2, [(0, 5)])

    def test_self_edge_rejected(self):
        with pytest.raises(CycleError):
            DependencySet(2, [(1, 1)])

    def test_sources(self):
        d = DependencySet(4, [(0, 2), (1, 2), (2, 3)])
        assert d.sources() == [0, 1]

    def test_indegrees(self):
        d = DependencySet(3, [(0, 2), (1, 2)])
        assert d.indegrees() == [0, 0, 2]

    def test_topological_order_respects_edges(self):
        d = DependencySet(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
        order = d.topological_order()
        pos = {t: i for i, t in enumerate(order)}
        for succ in range(5):
            for pred in d.preds[succ]:
                assert pos[pred] < pos[succ]

    def test_cycle_detected(self):
        d = DependencySet(3, [(0, 1), (1, 2), (2, 0)])
        with pytest.raises(CycleError):
            d.topological_order()

    def test_validate_checks_graph_size(self):
        g = TaskGraph()
        datum = g.add_data(1.0)
        g.add_task([datum], flops=1.0)
        with pytest.raises(ValueError, match="covers"):
            DependencySet(5).validate(g)

    def test_critical_path_of_chain(self):
        g = TaskGraph()
        datum = g.add_data(1.0)
        for _ in range(4):
            g.add_task([datum], flops=2.0)
        assert chain_deps(4).critical_path_flops(g) == pytest.approx(8.0)

    def test_critical_path_of_independent_set(self):
        g = TaskGraph()
        datum = g.add_data(1.0)
        for _ in range(4):
            g.add_task([datum], flops=2.0)
        assert DependencySet(4).critical_path_flops(g) == pytest.approx(2.0)

    def test_transitive_closure_size(self):
        assert chain_deps(4).transitive_closure_size() == 3 + 2 + 1


class TestCholeskyDag:
    def test_same_task_set_as_independent_version(self):
        g_dep, _ = cholesky_dag(6)
        g_ind = cholesky_tasks(6)
        assert [t.name for t in g_dep.tasks] == [t.name for t in g_ind.tasks]
        assert [t.inputs for t in g_dep.tasks] == [
            t.inputs for t in g_ind.tasks
        ]

    def test_is_a_dag(self):
        g, deps = cholesky_dag(8)
        deps.validate(g)

    def test_first_potrf_is_the_only_source_of_step0(self):
        g, deps = cholesky_dag(4)
        names = {t.id: t.name for t in g.tasks}
        sources = {names[t] for t in deps.sources()}
        assert "POTRF(0)" in sources
        assert not any(s.startswith("TRSM") for s in sources)

    def test_gemm_waits_for_both_trsms(self):
        g, deps = cholesky_dag(4)
        by_name = {t.name: t.id for t in g.tasks}
        gemm = by_name["GEMM(2,1,0)"]
        assert by_name["TRSM(2,0)"] in deps.preds[gemm]
        assert by_name["TRSM(1,0)"] in deps.preds[gemm]

    def test_potrf_waits_for_prior_syrks(self):
        g, deps = cholesky_dag(4)
        by_name = {t.name: t.id for t in g.tasks}
        assert by_name["SYRK(2,0)"] in deps.preds[by_name["POTRF(2)"]]
        assert by_name["SYRK(2,1)"] in deps.preds[by_name["POTRF(2)"]]

    def test_critical_path_grows_with_n(self):
        g4, d4 = cholesky_dag(4)
        g8, d8 = cholesky_dag(8)
        assert d8.critical_path_flops(g8) > d4.critical_path_flops(g4)
