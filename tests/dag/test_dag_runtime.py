"""Tests for dependency-aware execution in the runtime."""

import pytest

from repro.core.problem import TaskGraph
from repro.dag.deps import DependencySet
from repro.dag.workloads import cholesky_dag
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.randomgraph import random_bipartite

from tests.conftest import toy_platform


def chain_instance(n=5):
    g = TaskGraph()
    datum = g.add_data(1.0)
    for i in range(n):
        g.add_task([datum], flops=1.0, name=f"T{i}")
    deps = DependencySet(n, [(i, i + 1) for i in range(n - 1)])
    return g, deps


SCHEDS = ["eager", "dmdar", "mhfp", "hmetis+r", "darts", "darts+luf"]


class TestExecutionOrder:
    @pytest.mark.parametrize("name", SCHEDS)
    def test_chain_executes_in_order(self, name):
        g, deps = chain_instance(6)
        sched, eviction = make_scheduler(name)
        result = simulate(
            g,
            toy_platform(n_gpus=2, memory=3.0),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=1,
        )
        finish = {}
        t_order = []
        for order in result.executed_order:
            t_order.extend(order)
        assert sorted(t_order) == list(range(6))
        # reconstruct completion order from the trace-free executed
        # lists: a chain forces strictly sequential execution, so the
        # makespan is at least the sum of durations
        assert result.makespan >= 6.0 - 1e-9

    @pytest.mark.parametrize("name", SCHEDS)
    def test_diamond_respects_precedence(self, name):
        g = TaskGraph()
        datum = g.add_data(1.0)
        for i in range(4):
            g.add_task([datum], flops=1.0)
        deps = DependencySet(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        sched, eviction = make_scheduler(name)
        result = simulate(
            g,
            toy_platform(n_gpus=2, memory=2.0),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=2,
            record_trace=True,
        )
        starts = {
            e.ref: e.time for e in result.trace.of_kind("task_start")
        }
        ends = {e.ref: e.time for e in result.trace.of_kind("task_end")}
        assert starts[1] >= ends[0] - 1e-9
        assert starts[2] >= ends[0] - 1e-9
        assert starts[3] >= max(ends[1], ends[2]) - 1e-9

    def test_edge_list_accepted_directly(self):
        g, _ = chain_instance(3)
        sched, eviction = make_scheduler("eager")
        result = simulate(
            g,
            toy_platform(memory=2.0),
            sched,
            dependencies=[(0, 1), (1, 2)],
        )
        assert result.executed_order[0] == [0, 1, 2]

    def test_cyclic_dependencies_rejected(self):
        g, _ = chain_instance(3)
        sched, _ = make_scheduler("eager")
        from repro.dag.deps import CycleError

        with pytest.raises(CycleError):
            simulate(
                g,
                toy_platform(memory=2.0),
                sched,
                dependencies=[(0, 1), (1, 0)],
            )


class TestCholeskyDagRuns:
    @pytest.mark.parametrize("name", ["eager", "dmdar", "darts+luf"])
    def test_all_tasks_complete(self, name):
        g, deps = cholesky_dag(8, data_size=1.0)
        sched, eviction = make_scheduler(name)
        result = simulate(
            g,
            toy_platform(n_gpus=2, memory=12.0, bandwidth=50.0,
                         gflops=1e10),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=3,
        )
        assert sum(s.n_tasks for s in result.gpus) == g.n_tasks

    def test_makespan_at_least_critical_path(self):
        g, deps = cholesky_dag(8, data_size=1.0)
        sched, eviction = make_scheduler("darts+luf")
        gflops = 1e10
        result = simulate(
            g,
            toy_platform(n_gpus=4, memory=20.0, bandwidth=1e12,
                         gflops=gflops),
            sched,
            eviction=eviction,
            dependencies=deps,
            seed=1,
        )
        cp = deps.critical_path_flops(g) / gflops
        assert result.makespan >= cp - 1e-9

    def test_dependencies_slow_things_down(self):
        g, deps = cholesky_dag(8, data_size=1.0)
        sched1, ev1 = make_scheduler("dmdar")
        sched2, ev2 = make_scheduler("dmdar")
        plat = toy_platform(n_gpus=4, memory=20.0, bandwidth=50.0,
                            gflops=1e10)
        free = simulate(g, plat, sched1, eviction=ev1, seed=1)
        dag = simulate(g, plat, sched2, eviction=ev2, seed=1,
                       dependencies=deps)
        assert dag.makespan >= free.makespan - 1e-9


class TestRandomDags:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_layered_dag_completes(self, seed):
        import random

        rng = random.Random(seed)
        g = random_bipartite(24, 8, arity=2, seed=seed)
        edges = []
        for t in range(24):
            for _ in range(rng.randint(0, 2)):
                pred = rng.randrange(24)
                if pred < t:
                    edges.append((pred, t))
        deps = DependencySet(24, edges)
        for name in ("eager", "darts+luf"):
            sched, eviction = make_scheduler(name)
            result = simulate(
                g,
                toy_platform(n_gpus=2, memory=4.0),
                sched,
                eviction=eviction,
                dependencies=deps,
                seed=seed,
            )
            assert sum(s.n_tasks for s in result.gpus) == 24
