"""Unit tests for the bipartite task/data model."""

import pytest

from repro.core.problem import Data, Task, TaskGraph


class TestConstruction:
    def test_add_data_assigns_dense_ids(self):
        g = TaskGraph()
        d0 = g.add_data(1.0)
        d1 = g.add_data(2.0)
        assert (d0.id, d1.id) == (0, 1)
        assert g.n_data == 2

    def test_add_task_assigns_submission_order_ids(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        t0 = g.add_task([d], flops=1.0)
        t1 = g.add_task([d], flops=1.0)
        assert (t0.id, t1.id) == (0, 1)

    def test_add_task_accepts_data_objects_and_ids(self):
        g = TaskGraph()
        d0, d1 = g.add_data(1.0), g.add_data(1.0)
        t = g.add_task([d0, 1], flops=1.0)
        assert t.inputs == (0, 1)

    def test_data_size_recorded(self):
        g = TaskGraph()
        d = g.add_data(14.75e6, name="A[0]")
        assert d.size == 14.75e6
        assert d.name == "A[0]"

    def test_zero_size_data_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="positive"):
            g.add_data(0.0)

    def test_negative_flops_rejected(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        with pytest.raises(ValueError, match="positive"):
            g.add_task([d], flops=-1.0)

    def test_empty_inputs_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="at least one"):
            g.add_task([], flops=1.0)

    def test_duplicate_inputs_rejected(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_task([d, d], flops=1.0)

    def test_unknown_data_id_rejected(self):
        g = TaskGraph()
        g.add_data(1.0)
        with pytest.raises(ValueError, match="unknown"):
            g.add_task([5], flops=1.0)

    def test_tasks_and_data_are_frozen(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        t = g.add_task([d], flops=1.0)
        with pytest.raises(AttributeError):
            t.flops = 2.0
        with pytest.raises(AttributeError):
            d.size = 2.0


class TestQueries:
    def test_inputs_of(self, figure1_graph):
        # T1 (id 0) reads D1 (id 0) and D4 (id 3)
        assert figure1_graph.inputs_of(0) == (0, 3)

    def test_users_of_in_submission_order(self, figure1_graph):
        # D1 (row 0) is read by T1, T2, T3 = ids 0,1,2
        assert list(figure1_graph.users_of(0)) == [0, 1, 2]

    def test_degree(self, figure1_graph):
        assert all(figure1_graph.degree(d) == 3 for d in range(6))

    def test_shared_inputs_same_row(self, figure1_graph):
        # T1 and T2 share the row datum D1 (id 0)
        assert figure1_graph.shared_inputs(0, 1) == (0,)

    def test_shared_inputs_disjoint(self, figure1_graph):
        # T1 (row 0, col 0) and T5 (row 1, col 1) share nothing
        assert figure1_graph.shared_inputs(0, 4) == ()

    def test_shared_weight_uses_sizes(self):
        g = TaskGraph()
        big = g.add_data(10.0)
        small = g.add_data(1.0)
        g.add_task([big, small], flops=1.0)
        g.add_task([big, small], flops=1.0)
        assert g.shared_weight(0, 1) == 11.0

    def test_task_input_bytes(self, figure1_graph):
        assert figure1_graph.task_input_bytes(0) == 2.0

    def test_footprint_union(self, figure1_graph):
        # T1, T2 together touch D1, D4, D5 = 3 data
        assert figure1_graph.footprint_bytes([0, 1]) == 3.0

    def test_total_flops(self, figure1_graph):
        assert figure1_graph.total_flops == 9.0

    def test_working_set(self, figure1_graph):
        assert figure1_graph.working_set_bytes == 6.0

    def test_uniform_data_size_detected(self, figure1_graph):
        assert figure1_graph.uniform_data_size() == 1.0

    def test_uniform_data_size_none_when_mixed(self):
        g = TaskGraph()
        g.add_data(1.0)
        g.add_data(2.0)
        assert g.uniform_data_size() is None

    def test_max_task_arity(self, figure1_graph):
        assert figure1_graph.max_task_arity() == 2

    def test_len_and_iter(self, figure1_graph):
        assert len(figure1_graph) == 9
        assert [t.id for t in figure1_graph] == list(range(9))

    def test_validate_passes_on_consistent_graph(self, figure1_graph):
        figure1_graph.validate()


class TestDerivedStructures:
    def test_hyperedges_one_per_datum(self, figure1_graph):
        hedges = figure1_graph.as_hyperedges()
        assert len(hedges) == 6
        assert hedges[0] == (0, 1, 2)  # D1's users
        assert hedges[3] == (0, 3, 6)  # D4's users (column 0)

    def test_clique_expansion_pairwise_weights(self, chain_graph):
        edges = chain_graph.clique_expansion()
        # consecutive chain tasks share exactly one unit datum
        assert edges[(0, 1)] == 1.0
        assert (0, 2) not in edges

    def test_clique_expansion_triple_counts_shared_data(self):
        """The §IV-B weakness: a datum shared by 3 tasks yields 3 edges."""
        g = TaskGraph()
        d = g.add_data(5.0)
        extra = [g.add_data(1.0) for _ in range(3)]
        for e in extra:
            g.add_task([d, e], flops=1.0)
        edges = g.clique_expansion()
        assert set(edges) == {(0, 1), (0, 2), (1, 2)}
        # total counted weight is 3x the datum's size
        assert sum(edges.values()) == pytest.approx(15.0)

    def test_clique_expansion_keys_are_ordered(self, figure1_graph):
        assert all(a < b for a, b in figure1_graph.clique_expansion())
