"""Tests for schedules, analytic replay, and the live-set recursion."""

import pytest

from repro.core.problem import TaskGraph
from repro.core.schedule import (
    InfeasibleScheduleError,
    LruReplay,
    ReplayPolicy,
    Schedule,
    make_replay_policy,
    replay_schedule,
    verify_live_set_recursion,
)


class TestScheduleObject:
    def test_single_gpu_constructor(self):
        s = Schedule.single_gpu([2, 0, 1])
        assert s.n_gpus == 1
        assert s.order == [[2, 0, 1]]

    def test_nb_and_max_load(self):
        s = Schedule(order=[[0, 1, 2], [3]])
        assert s.nb(0) == 3
        assert s.nb(1) == 1
        assert s.max_load == 3

    def test_all_tasks_flattens_in_gpu_order(self):
        s = Schedule(order=[[1], [0, 2]])
        assert s.all_tasks == [1, 0, 2]

    def test_gpu_of(self):
        s = Schedule(order=[[1], [0, 2]])
        assert s.gpu_of() == {1: 0, 0: 1, 2: 1}

    def test_validate_complete_ok(self, figure1_graph):
        s = Schedule(order=[[0, 1, 4, 3], [2, 5, 8, 7, 6]])
        s.validate(figure1_graph)

    def test_validate_missing_task_raises(self, figure1_graph):
        s = Schedule(order=[[0, 1], [2]])
        with pytest.raises(InfeasibleScheduleError, match="missing"):
            s.validate(figure1_graph)

    def test_validate_duplicate_raises(self, figure1_graph):
        s = Schedule(order=[list(range(9)), [0]])
        with pytest.raises(InfeasibleScheduleError):
            s.validate(figure1_graph)

    def test_validate_partial_allows_subsets(self, figure1_graph):
        Schedule(order=[[0, 3]]).validate_partial(figure1_graph)

    def test_validate_partial_rejects_duplicates(self, figure1_graph):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(order=[[0, 0]]).validate_partial(figure1_graph)

    def test_validate_partial_rejects_unknown_ids(self, figure1_graph):
        with pytest.raises(InfeasibleScheduleError):
            Schedule(order=[[99]]).validate_partial(figure1_graph)


class TestPaperFigure1:
    def test_paper_figure1_example(self, figure1_graph):
        """The worked example: M=2, the given σ costs exactly 11 loads."""
        s = Schedule(order=[[0, 1, 4, 3], [2, 5, 8, 7, 6]])
        res = replay_schedule(figure1_graph, s, capacity_items=2, policy="lru")
        assert res.total_loads == 11
        # GPU1 loads D1 twice (the paper's point); GPU2 never reloads.
        assert res.gpus[0].n_loads == 5
        assert res.gpus[1].n_loads == 6

    def test_figure1_gpu2_order_avoids_reloads(self, figure1_graph):
        """T3,T6,T9,T8,T7 snakes through the grid: 6 compulsory loads."""
        s = Schedule.single_gpu([2, 5, 8, 7, 6])
        res = replay_schedule(figure1_graph, s, capacity_items=2)
        assert res.total_loads == 6

    def test_live_set_recursion_matches(self, figure1_graph):
        s = Schedule(order=[[0, 1, 4, 3], [2, 5, 8, 7, 6]])
        res = replay_schedule(figure1_graph, s, capacity_items=2)
        verify_live_set_recursion(figure1_graph, s, res, capacity_items=2)


class TestReplayMechanics:
    def test_unlimited_memory_loads_each_datum_once(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        res = replay_schedule(figure1_graph, s)
        assert res.total_loads == 6
        assert res.gpus[0].bytes_loaded == 6.0

    def test_capacity_bytes_equivalent_to_items(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        a = replay_schedule(figure1_graph, s, capacity_items=3)
        b = replay_schedule(figure1_graph, s, capacity_bytes=3.0)
        assert a.total_loads == b.total_loads

    def test_both_capacities_rejected(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        with pytest.raises(ValueError, match="not both"):
            replay_schedule(
                figure1_graph, s, capacity_items=3, capacity_bytes=3.0
            )

    def test_capacity_items_needs_uniform_sizes(self):
        g = TaskGraph()
        g.add_data(1.0)
        g.add_data(2.0)
        g.add_task([0, 1], flops=1.0)
        with pytest.raises(ValueError, match="uniform"):
            replay_schedule(g, Schedule.single_gpu([0]), capacity_items=2)

    def test_task_exceeding_memory_raises(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        with pytest.raises(InfeasibleScheduleError, match="capacity"):
            replay_schedule(figure1_graph, s, capacity_items=1)

    def test_current_task_inputs_never_evicted(self, figure1_graph):
        """V(k,i) ∩ D(T_σ(k,i)) = ∅ by construction."""
        s = Schedule.single_gpu(list(range(9)))
        res = replay_schedule(figure1_graph, s, capacity_items=2)
        ev_sets = res.gpus[0].eviction_sets()
        for step, task in enumerate(s.order[0]):
            overlap = set(ev_sets[step]) & set(figure1_graph.inputs_of(task))
            assert not overlap

    def test_live_size_never_exceeds_capacity(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        res = replay_schedule(figure1_graph, s, capacity_items=3)
        assert max(res.gpus[0].live_sizes) <= 3
        assert res.max_live <= 3

    def test_row_major_with_tight_memory_thrashes_lru(self):
        """n×n grid, M=n: row-major reloads all columns every row."""
        n = 4
        g = TaskGraph()
        rows = [g.add_data(1.0) for _ in range(n)]
        cols = [g.add_data(1.0) for _ in range(n)]
        for i in range(n):
            for j in range(n):
                g.add_task([rows[i], cols[j]], flops=1.0)
        s = Schedule.single_gpu(list(range(n * n)))
        res = replay_schedule(g, s, capacity_items=n, policy="lru")
        # every row needs its row datum + n column reloads
        assert res.total_loads >= n * n

    def test_loads_counted_per_gpu(self, figure1_graph):
        s = Schedule(order=[[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        res = replay_schedule(figure1_graph, s, capacity_items=4)
        assert [g.n_loads for g in res.gpus] == [4, 4, 4]
        assert res.loads_on(1) == 4
        assert res.total_loads == 12

    def test_policy_instance_accepted(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        res = replay_schedule(
            figure1_graph, s, capacity_items=2, policy=LruReplay()
        )
        assert res.policy_name == "lru"

    def test_unknown_policy_name_raises(self, figure1_graph):
        with pytest.raises(ValueError, match="unknown replay policy"):
            replay_schedule(
                figure1_graph,
                Schedule.single_gpu(list(range(9))),
                capacity_items=2,
                policy="clairvoyant",
            )

    def test_make_replay_policy_all_names(self):
        for name in ("lru", "fifo", "belady"):
            assert make_replay_policy(name).name == name

    def test_replay_is_deterministic(self, figure1_graph):
        s = Schedule.single_gpu([0, 3, 6, 1, 4, 7, 2, 5, 8])
        a = replay_schedule(figure1_graph, s, capacity_items=2)
        b = replay_schedule(figure1_graph, s, capacity_items=2)
        assert a.gpus[0].loads == b.gpus[0].loads
        assert a.gpus[0].evictions == b.gpus[0].evictions

    def test_bad_policy_choice_detected(self, figure1_graph):
        class Rogue(ReplayPolicy):
            name = "rogue"

            def choose_victim(self, candidates, step, future):
                return -42

        with pytest.raises(InfeasibleScheduleError, match="non-candidate"):
            replay_schedule(
                figure1_graph,
                Schedule.single_gpu(list(range(9))),
                capacity_items=2,
                policy=Rogue(),
            )


class TestFifoVsLru:
    def test_fifo_and_lru_may_differ(self):
        """A datum reused late: LRU keeps it, FIFO evicts it first."""
        g = TaskGraph()
        d = [g.add_data(1.0) for _ in range(4)]
        # task order uses: (0,1) (0,2) (0,3) — 0 stays hot
        g.add_task([0, 1], flops=1.0)
        g.add_task([0, 2], flops=1.0)
        g.add_task([0, 3], flops=1.0)
        s = Schedule.single_gpu([0, 1, 2])
        lru = replay_schedule(g, s, capacity_items=2, policy="lru")
        fifo = replay_schedule(g, s, capacity_items=2, policy="fifo")
        assert lru.total_loads == 4  # 0,1 then 2 then 3 (evicting 1, 2)
        assert fifo.total_loads >= lru.total_loads
