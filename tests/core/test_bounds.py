"""Tests for roofline / PCI-limit / compulsory-load bounds."""

import pytest

from repro.core.bounds import (
    achieved_gflops,
    compulsory_loads,
    compute_time_lower_bound,
    pci_transfer_limit_bytes,
    perfect_balance_load,
    roofline_gflops,
    time_lower_bound,
    transfer_time_lower_bound,
)
from repro.core.schedule import Schedule


class TestRoofline:
    def test_scales_with_gpus(self):
        assert roofline_gflops(4, 13253.0) == 4 * 13253.0

    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            roofline_gflops(0, 13253.0)


class TestTimeBounds:
    def test_compute_bound(self, figure1_graph):
        # 9 tasks x 1 flop at 1e-9 GFlop/s = 1 flop/s -> 9 seconds on 1 GPU
        t = compute_time_lower_bound(figure1_graph, 1, 1e-9)
        assert t == pytest.approx(9.0)

    def test_compute_bound_divides_across_gpus(self, figure1_graph):
        t1 = compute_time_lower_bound(figure1_graph, 1, 1e-9)
        t3 = compute_time_lower_bound(figure1_graph, 3, 1e-9)
        assert t3 == pytest.approx(t1 / 3)

    def test_transfer_bound(self, figure1_graph):
        # 6 bytes over a 2 B/s bus -> 3 seconds
        assert transfer_time_lower_bound(figure1_graph, 2.0) == pytest.approx(3.0)

    def test_transfer_bound_rejects_bad_bandwidth(self, figure1_graph):
        with pytest.raises(ValueError):
            transfer_time_lower_bound(figure1_graph, 0.0)

    def test_combined_bound_is_max(self, figure1_graph):
        t = time_lower_bound(figure1_graph, 1, 1e-9, 0.5)
        assert t == pytest.approx(12.0)  # transfer-bound: 6/0.5
        t = time_lower_bound(figure1_graph, 1, 1e-9, 100.0)
        assert t == pytest.approx(9.0)  # compute-bound


class TestPciLimit:
    def test_limit_is_compute_time_times_bandwidth(self, figure1_graph):
        limit = pci_transfer_limit_bytes(figure1_graph, 1, 1e-9, 2.0)
        assert limit == pytest.approx(18.0)  # 9 s x 2 B/s

    def test_limit_shrinks_with_more_gpus(self, figure1_graph):
        one = pci_transfer_limit_bytes(figure1_graph, 1, 1e-9, 2.0)
        four = pci_transfer_limit_bytes(figure1_graph, 4, 1e-9, 2.0)
        assert four == pytest.approx(one / 4)


class TestCompulsoryLoads:
    def test_without_schedule_is_n_data(self, figure1_graph):
        assert compulsory_loads(figure1_graph) == 6

    def test_with_partition_counts_replication(self, figure1_graph):
        # rows 0..2 on GPU0 tasks {0..2}: uses D0 + all 3 columns = 4 data
        s = Schedule(order=[[0, 1, 2], [3, 4, 5], [6, 7, 8]])
        assert compulsory_loads(figure1_graph, s) == 12

    def test_single_gpu_partition_equals_plain_bound(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        assert compulsory_loads(figure1_graph, s) == 6


class TestMisc:
    def test_achieved_gflops(self, figure1_graph):
        assert achieved_gflops(figure1_graph, 9.0) == pytest.approx(1e-9)

    def test_achieved_gflops_rejects_zero_makespan(self, figure1_graph):
        with pytest.raises(ValueError):
            achieved_gflops(figure1_graph, 0.0)

    @pytest.mark.parametrize(
        "m,k,expected", [(9, 2, 5), (8, 2, 4), (10, 4, 3), (1, 8, 1)]
    )
    def test_perfect_balance_load(self, m, k, expected):
        assert perfect_balance_load(m, k) == expected
