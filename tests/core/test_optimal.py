"""Brute-force oracle tests (NP-complete problem, tiny instances)."""

import pytest

from repro.core.belady import belady_loads
from repro.core.optimal import (
    MAX_BRUTE_FORCE_TASKS,
    optimal_loads_single_gpu,
    optimal_schedule_multi_gpu,
)
from repro.core.problem import TaskGraph
from repro.core.schedule import Schedule


def tiny_grid(n=2):
    g = TaskGraph()
    rows = [g.add_data(1.0) for _ in range(n)]
    cols = [g.add_data(1.0) for _ in range(n)]
    for i in range(n):
        for j in range(n):
            g.add_task([rows[i], cols[j]], flops=1.0)
    return g


class TestSingleGpu:
    def test_2x2_grid_optimum(self):
        g = tiny_grid(2)
        loads, sched = optimal_loads_single_gpu(g, capacity_items=2)
        # snake order achieves the compulsory 4 loads + 1 reload:
        # (r0,c0)(r0,c1)(r1,c1)(r1,c0): loads r0,c0,c1,r1,c0 again? M=2:
        # each step swaps one datum: 4 + 1 = 5 loads is optimal.
        assert loads == 5
        assert belady_loads(g, sched, capacity_items=2) == loads

    def test_2x2_with_m3_reaches_compulsory(self):
        g = tiny_grid(2)
        loads, _ = optimal_loads_single_gpu(g, capacity_items=3)
        assert loads == 4  # snake order: every datum loaded exactly once

    def test_optimal_no_worse_than_any_heuristic_order(self):
        g = tiny_grid(2)
        best, _ = optimal_loads_single_gpu(g, capacity_items=2)
        natural = belady_loads(
            g, Schedule.single_gpu([0, 1, 2, 3]), capacity_items=2
        )
        assert best <= natural

    def test_size_guard(self):
        g = TaskGraph()
        d = g.add_data(1.0)
        for _ in range(MAX_BRUTE_FORCE_TASKS + 1):
            g.add_task([d], flops=1.0)
        with pytest.raises(ValueError, match="too many"):
            optimal_loads_single_gpu(g, capacity_items=2)

    def test_returned_schedule_is_complete_permutation(self):
        g = tiny_grid(2)
        _, sched = optimal_loads_single_gpu(g, capacity_items=2)
        sched.validate(g)


class TestMultiGpu:
    def test_balanced_partition_enforced(self):
        g = tiny_grid(2)
        loads, sched = optimal_schedule_multi_gpu(
            g, n_gpus=2, capacity_items=2
        )
        assert sched.max_load == 2
        sched.validate(g)

    def test_2gpu_grid_optimum_splits_rows(self):
        """Each GPU takes one row: 3 data per GPU, 6 loads total."""
        g = tiny_grid(2)
        loads, sched = optimal_schedule_multi_gpu(
            g, n_gpus=2, capacity_items=2
        )
        assert loads == 6

    def test_max_load_constraint_can_tighten(self):
        g = tiny_grid(2)
        loads_tight, _ = optimal_schedule_multi_gpu(
            g, n_gpus=2, capacity_items=2, max_load=2
        )
        loads_loose, _ = optimal_schedule_multi_gpu(
            g, n_gpus=2, capacity_items=2, max_load=4
        )
        assert loads_loose <= loads_tight

    def test_size_guard(self):
        g = tiny_grid(3)  # 9 tasks > 6
        with pytest.raises(ValueError, match="limited"):
            optimal_schedule_multi_gpu(g, n_gpus=2, capacity_items=3)
