"""Tests for Belady's rule helpers and its optimality on fixed orders."""

import pytest

from repro.core.belady import (
    belady_loads,
    belady_victim,
    next_use_distance,
    policy_gap,
)
from repro.core.problem import TaskGraph
from repro.core.schedule import Schedule, replay_schedule


class TestNextUse:
    def test_distance_zero_when_current(self):
        assert next_use_distance(5, [(5, 1), (2,)]) == 0

    def test_distance_counts_steps(self):
        assert next_use_distance(7, [(1,), (2,), (7, 1)]) == 2

    def test_none_when_never_used(self):
        assert next_use_distance(9, [(1,), (2,)]) is None

    def test_empty_future(self):
        assert next_use_distance(1, []) is None


class TestVictimSelection:
    def test_prefers_never_used_again(self):
        future = [(1,), (2,), (3,)]
        assert belady_victim({1, 2, 99}, future) == 99

    def test_furthest_next_use_wins(self):
        future = [(1,), (2,), (3,)]
        assert belady_victim({1, 2, 3}, future) == 3

    def test_tie_broken_by_smallest_id(self):
        future = [(9,)]  # neither candidate ever used
        assert belady_victim({4, 7}, future) == 4

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            belady_victim(set(), [(1,)])


class TestBeladyOptimality:
    def _grid(self, n):
        g = TaskGraph()
        rows = [g.add_data(1.0) for _ in range(n)]
        cols = [g.add_data(1.0) for _ in range(n)]
        for i in range(n):
            for j in range(n):
                g.add_task([rows[i], cols[j]], flops=1.0)
        return g

    def test_belady_never_worse_than_lru(self):
        g = self._grid(4)
        s = Schedule.single_gpu(list(range(16)))
        got, best = policy_gap(g, s, "lru", capacity_items=4)
        assert best <= got

    def test_belady_never_worse_than_fifo(self):
        g = self._grid(4)
        s = Schedule.single_gpu(list(range(16)))
        got, best = policy_gap(g, s, "fifo", capacity_items=4)
        assert best <= got

    def test_belady_beats_lru_on_row_major_thrash(self):
        """The classic LRU pathology: Belady keeps the about-to-be-reused
        columns instead of cycling through all of them."""
        g = self._grid(5)
        s = Schedule.single_gpu(list(range(25)))
        got, best = policy_gap(g, s, "lru", capacity_items=5)
        assert best < got

    def test_belady_loads_figure1(self, figure1_graph):
        s = Schedule(order=[[0, 1, 4, 3], [2, 5, 8, 7, 6]])
        # Belady cannot beat 11 here: GPU1's order forces the D1 reload.
        assert belady_loads(figure1_graph, s, capacity_items=2) == 11

    def test_belady_equals_compulsory_with_enough_memory(self, figure1_graph):
        s = Schedule.single_gpu(list(range(9)))
        assert belady_loads(figure1_graph, s, capacity_items=6) == 6

    def test_belady_exhaustive_check_tiny(self):
        """Belady matches the best achievable eviction found by brute
        force over all eviction choices on a tiny instance."""
        g = TaskGraph()
        d = [g.add_data(1.0) for _ in range(4)]
        g.add_task([0, 1], flops=1.0)
        g.add_task([2, 3], flops=1.0)
        g.add_task([0, 1], flops=1.0)
        s = Schedule.single_gpu([0, 1, 2])
        # M=2: after T0 (0,1 in mem), T1 evicts both; T2 reloads 0,1.
        # No eviction scheme can do better than 6 loads.
        assert belady_loads(g, s, capacity_items=2) == 6

    def test_belady_uses_lookahead_not_history(self):
        """Belady ignores access recency entirely."""
        g = TaskGraph()
        d = [g.add_data(1.0) for _ in range(3)]
        g.add_task([0, 1], flops=1.0)  # 0 and 1 loaded
        g.add_task([0, 2], flops=1.0)  # needs 2: evict 1 (next use far)
        g.add_task([0, 1], flops=1.0)  # hmm, 1 is reused!
        g.add_task([0, 2], flops=1.0)
        s = Schedule.single_gpu([0, 1, 2, 3])
        res = replay_schedule(g, s, capacity_items=2, policy="belady")
        # loads: 0,1 | 2 (evict 1? next use of 1 is step2, of 2... ) —
        # optimal here is 5 loads; LRU would also manage 5; key assert:
        assert res.total_loads == belady_loads(g, s, capacity_items=2)
