"""Plain-text rendering of sweeps: aligned tables and ASCII plots."""

from __future__ import annotations

from typing import List

from repro.metrics.collect import Sweep


def format_series_table(
    sweep: Sweep, metric: str = "gflops", width: int = 12
) -> str:
    """One row per working-set point, one column per scheduler.

    This is the textual equivalent of the paper's figures: the same
    series, printed.  Reference lines (roofline, PCI limit) are appended.
    """
    scheds = sweep.schedulers()
    if not scheds:
        return f"{sweep.title}: (empty sweep)"
    xs = sweep.series[scheds[0]].xs()
    header = f"{'WS(MB)':>10} " + " ".join(f"{s:>{width}}" for s in scheds)
    lines = [sweep.title, header, "-" * len(header)]
    for i, x in enumerate(xs):
        cells = []
        for s in scheds:
            pts = sweep.series[s].points
            cells.append(
                f"{pts[i].metric(metric):>{width}.1f}"
                if i < len(pts)
                else " " * width
            )
        lines.append(f"{x:>10.0f} " + " ".join(cells))
    for name, value in sweep.reference_lines.items():
        lines.append(f"{'ref':>10} {name} = {value:.1f}")
    for name, values in sweep.reference_curves.items():
        formatted = " ".join(f"{v:.0f}" for v in values)
        lines.append(f"{'ref':>10} {name}: {formatted}")
    return "\n".join(lines)


def ascii_plot(
    sweep: Sweep,
    metric: str = "gflops",
    height: int = 16,
    width: int = 70,
) -> str:
    """Rough terminal plot of every series (one symbol per scheduler)."""
    scheds = sweep.schedulers()
    if not scheds:
        return "(empty sweep)"
    symbols = "ox+*#@%&$~"
    all_x: List[float] = []
    all_y: List[float] = []
    for s in scheds:
        all_x.extend(sweep.series[s].xs())
        all_y.extend(sweep.series[s].values(metric))
    for v in sweep.reference_lines.values():
        all_y.append(v)
    if not all_x:
        return "(no points)"
    x0, x1 = min(all_x), max(all_x)
    y0, y1 = 0.0, max(all_y) * 1.05 or 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        if x1 == x0:
            col = 0
        else:
            col = int((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
        row = min(max(row, 0), height - 1)
        grid[row][col] = ch

    for value in sweep.reference_lines.values():
        row = height - 1 - int((value - y0) / (y1 - y0) * (height - 1))
        row = min(max(row, 0), height - 1)
        for c in range(width):
            grid[row][c] = "."
    for idx, s in enumerate(scheds):
        ch = symbols[idx % len(symbols)]
        for x, y in zip(sweep.series[s].xs(), sweep.series[s].values(metric)):
            put(x, y, ch)

    lines = [f"{sweep.title}  [{metric}]"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x0:.0f} .. {x1:.0f} MB   y: 0 .. {y1:.0f}")
    legend = "   ".join(
        f"{symbols[i % len(symbols)]}={s}" for i, s in enumerate(scheds)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
