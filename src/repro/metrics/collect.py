"""Sweep measurement containers.

A :class:`Sweep` holds, for each x-axis point (working set size) and each
scheduler, one :class:`Measurement` distilled from a
:class:`repro.simulator.trace.RunResult` — the quantities the paper plots
(GFlop/s with and without scheduling time, transferred MB) plus
diagnostics (loads, evictions, balance).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, FrozenSet, List, Optional

from repro.simulator.trace import RunResult


@dataclass(frozen=True)
class Measurement:
    """One (scheduler, instance) data point.

    Most fields are simulation-derived and bit-reproducible for a given
    seed (the repo's determinism contract).  The exceptions are listed
    in :attr:`WALL_CLOCK_FIELDS`: they incorporate the host wall-clock
    cost of the static scheduling phase (mHFP packing, hMETIS
    partitioning — what the paper charges as "scheduling time"), so
    they vary slightly between any two runs, serial or parallel.
    :meth:`deterministic_dict` strips them for exact comparisons.
    """

    scheduler: str
    n: int
    working_set_mb: float
    gflops: float
    gflops_with_sched: float
    transfers_mb: float
    loads: int
    evictions: int
    makespan_s: float
    scheduling_time_s: float
    balance: float

    #: fields tainted by host wall-clock timing of the static scheduling
    #: phase; everything else is deterministic in the seed
    WALL_CLOCK_FIELDS: ClassVar[FrozenSet[str]] = frozenset(
        {"gflops_with_sched", "scheduling_time_s"}
    )

    @classmethod
    def from_result(
        cls, result: RunResult, n: int, working_set_mb: float
    ) -> "Measurement":
        return cls(
            scheduler=result.scheduler,
            n=n,
            working_set_mb=working_set_mb,
            gflops=result.gflops,
            gflops_with_sched=result.gflops_with_scheduling,
            transfers_mb=result.total_mb,
            loads=result.total_loads,
            evictions=result.total_evictions,
            makespan_s=result.makespan,
            scheduling_time_s=result.scheduling_time,
            balance=result.balance_ratio(),
        )

    def metric(self, name: str) -> float:
        """Look a metric up by the names used in figure configs."""
        if name == "gflops":
            return self.gflops
        if name == "gflops_with_sched":
            return self.gflops_with_sched
        if name == "transfers_mb":
            return self.transfers_mb
        if name == "loads":
            return float(self.loads)
        raise ValueError(f"unknown metric {name!r}")

    # ------------------------------------------------------------------
    # JSON round-trip (lossless: json floats carry full repr precision,
    # so ``from_dict(json.loads(json.dumps(to_dict())))`` is identity)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def deterministic_dict(self) -> Dict[str, Any]:
        """Serialization restricted to the bit-reproducible fields."""
        return {
            k: v
            for k, v in self.to_dict().items()
            if k not in self.WALL_CLOCK_FIELDS
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Measurement":
        kwargs = {f.name: d[f.name] for f in fields(cls)}
        kwargs["n"] = int(kwargs["n"])
        kwargs["loads"] = int(kwargs["loads"])
        kwargs["evictions"] = int(kwargs["evictions"])
        return cls(**kwargs)


@dataclass
class Series:
    """One scheduler's curve over the sweep."""

    scheduler: str
    points: List[Measurement] = field(default_factory=list)

    def xs(self) -> List[float]:
        return [p.working_set_mb for p in self.points]

    def values(self, metric: str) -> List[float]:
        return [p.metric(metric) for p in self.points]

    def mean(self, metric: str) -> float:
        vals = self.values(metric)
        return sum(vals) / len(vals) if vals else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Series":
        return cls(
            scheduler=d["scheduler"],
            points=[Measurement.from_dict(p) for p in d["points"]],
        )


@dataclass
class Sweep:
    """All curves of one figure."""

    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    reference_lines: Dict[str, float] = field(default_factory=dict)
    reference_curves: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, m: Measurement) -> None:
        self.series.setdefault(m.scheduler, Series(m.scheduler)).points.append(m)

    def schedulers(self) -> List[str]:
        return list(self.series)

    def gain(
        self, metric: str, a: str, b: str, last_k: Optional[int] = None
    ) -> float:
        """Average ratio ``a / b`` of a metric across the sweep.

        ``last_k`` restricts the average to the most constrained points
        (the tail of the sweep), mirroring how the paper quotes e.g.
        "DARTS+LUF achieves 8.5 % more GFlop/s than DMDAR".
        """
        sa = self.series[a].values(metric)
        sb = self.series[b].values(metric)
        if len(sa) != len(sb) or not sa:
            raise ValueError("series are not aligned")
        if last_k is not None:
            sa, sb = sa[-last_k:], sb[-last_k:]
        ratios = [x / y for x, y in zip(sa, sb) if y > 0]
        return sum(ratios) / len(ratios)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize preserving series insertion order."""
        return {
            "title": self.title,
            "series": [s.to_dict() for s in self.series.values()],
            "reference_lines": dict(self.reference_lines),
            "reference_curves": {
                k: list(v) for k, v in self.reference_curves.items()
            },
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """Like :meth:`to_dict`, restricted to bit-reproducible fields.

        Two sweeps of the same spec — serial, parallel with any worker
        count, or cache-served — are equal under this projection; the
        full ``to_dict`` additionally matches when both runs drew their
        cells from the same cache entries.
        """
        return {
            "title": self.title,
            "series": [
                {
                    "scheduler": s.scheduler,
                    "points": [p.deterministic_dict() for p in s.points],
                }
                for s in self.series.values()
            ],
            "reference_lines": dict(self.reference_lines),
            "reference_curves": {
                k: list(v) for k, v in self.reference_curves.items()
            },
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Sweep":
        sweep = cls(title=d["title"])
        for sd in d["series"]:
            series = Series.from_dict(sd)
            sweep.series[series.scheduler] = series
        sweep.reference_lines = dict(d["reference_lines"])
        sweep.reference_curves = {
            k: list(v) for k, v in d["reference_curves"].items()
        }
        return sweep
