"""Sweep measurement containers.

A :class:`Sweep` holds, for each x-axis point (working set size) and each
scheduler, one :class:`Measurement` distilled from a
:class:`repro.simulator.trace.RunResult` — the quantities the paper plots
(GFlop/s with and without scheduling time, transferred MB) plus
diagnostics (loads, evictions, balance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simulator.trace import RunResult


@dataclass(frozen=True)
class Measurement:
    """One (scheduler, instance) data point."""

    scheduler: str
    n: int
    working_set_mb: float
    gflops: float
    gflops_with_sched: float
    transfers_mb: float
    loads: int
    evictions: int
    makespan_s: float
    scheduling_time_s: float
    balance: float

    @classmethod
    def from_result(
        cls, result: RunResult, n: int, working_set_mb: float
    ) -> "Measurement":
        return cls(
            scheduler=result.scheduler,
            n=n,
            working_set_mb=working_set_mb,
            gflops=result.gflops,
            gflops_with_sched=result.gflops_with_scheduling,
            transfers_mb=result.total_mb,
            loads=result.total_loads,
            evictions=result.total_evictions,
            makespan_s=result.makespan,
            scheduling_time_s=result.scheduling_time,
            balance=result.balance_ratio(),
        )

    def metric(self, name: str) -> float:
        """Look a metric up by the names used in figure configs."""
        if name == "gflops":
            return self.gflops
        if name == "gflops_with_sched":
            return self.gflops_with_sched
        if name == "transfers_mb":
            return self.transfers_mb
        if name == "loads":
            return float(self.loads)
        raise ValueError(f"unknown metric {name!r}")


@dataclass
class Series:
    """One scheduler's curve over the sweep."""

    scheduler: str
    points: List[Measurement] = field(default_factory=list)

    def xs(self) -> List[float]:
        return [p.working_set_mb for p in self.points]

    def values(self, metric: str) -> List[float]:
        return [p.metric(metric) for p in self.points]

    def mean(self, metric: str) -> float:
        vals = self.values(metric)
        return sum(vals) / len(vals) if vals else 0.0


@dataclass
class Sweep:
    """All curves of one figure."""

    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    reference_lines: Dict[str, float] = field(default_factory=dict)
    reference_curves: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, m: Measurement) -> None:
        self.series.setdefault(m.scheduler, Series(m.scheduler)).points.append(m)

    def schedulers(self) -> List[str]:
        return list(self.series)

    def gain(
        self, metric: str, a: str, b: str, last_k: Optional[int] = None
    ) -> float:
        """Average ratio ``a / b`` of a metric across the sweep.

        ``last_k`` restricts the average to the most constrained points
        (the tail of the sweep), mirroring how the paper quotes e.g.
        "DARTS+LUF achieves 8.5 % more GFlop/s than DMDAR".
        """
        sa = self.series[a].values(metric)
        sb = self.series[b].values(metric)
        if len(sa) != len(sb) or not sa:
            raise ValueError("series are not aligned")
        if last_k is not None:
            sa, sb = sa[-last_k:], sb[-last_k:]
        ratios = [x / y for x, y in zip(sa, sb) if y > 0]
        return sum(ratios) / len(ratios)
