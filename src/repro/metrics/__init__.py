"""Measurement containers and report formatting for experiment sweeps."""

from repro.metrics.collect import Measurement, Series, Sweep
from repro.metrics.report import ascii_plot, format_series_table

__all__ = [
    "Measurement",
    "Series",
    "Sweep",
    "format_series_table",
    "ascii_plot",
]
