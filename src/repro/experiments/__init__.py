"""Experiment harness regenerating the paper's evaluation figures.

Each of the paper's Figures 3-13 has a :class:`FigureConfig` describing
its workload, platform, scheduler set and metric; :func:`run_figure`
executes the sweep and returns a :class:`repro.metrics.Sweep` whose
printed table is the figure's data.  ``python -m repro.experiments fig3``
runs one from the command line.
"""

from repro.experiments.harness import SweepSpec, run_figure, run_sweep
from repro.experiments.figures import FIGURES, FigureConfig

__all__ = [
    "run_sweep",
    "run_figure",
    "SweepSpec",
    "FIGURES",
    "FigureConfig",
]
