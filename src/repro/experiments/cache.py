"""Content-addressed on-disk cache for sweep cell results.

Every ``(n, scheduler, repetition)`` cell of a sweep is a pure function
of its instance, platform, scheduler configuration, and seed, so its
:class:`~repro.metrics.collect.Measurement` can be memoised across
harness invocations.  Each cell is keyed by a SHA-256 digest covering

* the task graph itself (data sizes, task inputs/outputs/flops — not a
  workload *name*, so two differently-labelled workloads that build the
  same instance share entries and any change to a generator invalidates
  its cells),
* the platform (every GPU's name/GFlop/s/memory, bus and peer-link
  bandwidth/latency/model),
* the canonical scheduler name and the effective DARTS threshold,
* the prefetch window and the cell's mixed per-repetition seed,
* the fault-injection plan (``None`` for fault-free sweeps), so faulted
  and fault-free runs of the same cell never share an entry,
* a code-version salt — the digest of all installed ``repro`` sources —
  so editing the simulator or a scheduler automatically invalidates
  every cached result.

Entries are small JSON files under ``<cache_dir>/<key[:2]>/<key>.json``
(git-friendly, rsync-friendly, trivially inspectable).  Writes are
atomic (temp file + rename) so concurrent sweeps sharing a directory
never observe torn entries; unreadable or corrupt entries count as
misses and are recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.problem import TaskGraph
from repro.experiments.harness import SweepSpec, effective_threshold, rep_seed
from repro.metrics.collect import Measurement
from repro.platform.spec import BusSpec, PlatformSpec

#: default location, relative to the invoking process's cwd
DEFAULT_CACHE_DIR = ".repro-cache"

#: bump when the on-disk entry format changes
CACHE_FORMAT_VERSION = 1


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of every installed ``repro`` source file.

    Folded into each cell key, this is the cache's code-version salt:
    any edit anywhere in the package flushes all entries.  Coarse by
    design — correctness over reuse.
    """
    import repro

    pkg = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(pkg.rglob("*.py")):
        h.update(str(path.relative_to(pkg)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()


def graph_fingerprint(graph: TaskGraph) -> str:
    """Digest of the bipartite instance (simulation-relevant parts only).

    Covers data sizes and each task's inputs, outputs, and flops;
    labels are cosmetic and excluded.
    """
    h = hashlib.sha256()
    for d in graph.data:
        h.update(f"D|{d.size!r}\n".encode())
    for t in graph.tasks:
        ins = ",".join(map(str, t.inputs))
        outs = ",".join(map(str, t.outputs))
        h.update(f"T|{ins}|{outs}|{t.flops!r}\n".encode())
    return h.hexdigest()


def _bus_dict(bus: Optional[BusSpec]) -> Optional[Dict[str, Any]]:
    if bus is None:
        return None
    return {
        "bandwidth": bus.bandwidth,
        "latency": bus.latency,
        "model": bus.model,
    }


def platform_fingerprint(platform: PlatformSpec) -> Dict[str, Any]:
    """JSON-able identity of a platform spec."""
    return {
        "gpus": [
            {"name": g.name, "gflops": g.gflops, "memory": g.memory_bytes}
            for g in platform.gpus
        ],
        "bus": _bus_dict(platform.bus),
        "peer_link": _bus_dict(platform.peer_link),
    }


def cell_key(
    spec: SweepSpec,
    n: int,
    scheduler: str,
    rep: int,
    graph: Optional[TaskGraph] = None,
) -> str:
    """Content-addressed key of one sweep cell.

    ``graph`` is the instance already built for this ``n`` (built from
    ``spec.workload`` when omitted).
    """
    if graph is None:
        graph = spec.workload(n)
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "code": code_salt(),
        "graph": graph_fingerprint(graph),
        "n": n,
        "platform": platform_fingerprint(spec.platform()),
        "scheduler": scheduler.strip().lower().replace(" ", ""),
        "threshold": effective_threshold(spec, scheduler),
        "window": spec.window,
        "seed": rep_seed(spec.seed, scheduler, n, rep),
        "faults": None if spec.faults is None else spec.faults.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk measurement cache with hit/miss accounting."""

    def __init__(self, cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def key_for(
        self,
        spec: SweepSpec,
        n: int,
        scheduler: str,
        rep: int,
        graph: Optional[TaskGraph] = None,
    ) -> str:
        return cell_key(spec, n, scheduler, rep, graph=graph)

    def get(self, key: str) -> Optional[Measurement]:
        """Cached measurement for ``key``, or None (counted as a miss)."""
        path = self._path(key)
        try:
            with open(path, "r") as fh:
                entry = json.load(fh)
            m = Measurement.from_dict(entry["measurement"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return m

    def put(self, key: str, measurement: Measurement) -> None:
        """Store ``measurement`` under ``key`` atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "measurement": measurement.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Current counters (for per-figure stat deltas in the CLI)."""
        return {"hits": self.hits, "misses": self.misses}

    def stats_since(self, before: Dict[str, int]) -> Dict[str, int]:
        return {
            "hits": self.hits - before["hits"],
            "misses": self.misses - before["misses"],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({str(self.cache_dir)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
