"""Sweep driver: run a scheduler set across instance sizes.

Mirrors the paper's methodology (§V-A): for each working-set size, run
every strategy on the same instance and record throughput and transfer
volume; reference lines give the aggregate roofline and, for transfer
plots, the PCI-bus limit curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.bounds import pci_transfer_limit_bytes, roofline_gflops
from repro.core.problem import TaskGraph
from repro.metrics.collect import Measurement, Sweep
from repro.platform.spec import PlatformSpec
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate


@dataclass
class SweepSpec:
    """Everything needed to regenerate one figure's data."""

    title: str
    workload: Callable[[int], TaskGraph]
    ns: Sequence[int]
    platform: Callable[[], PlatformSpec]
    schedulers: Sequence[str]
    #: scheduler names additionally reported without scheduling time,
    #: e.g. ``["hmetis+r"]`` produces an extra "… no part. time" series
    no_sched_time_variants: Sequence[str] = ()
    window: int = 2
    seed: int = 0
    #: DARTS threshold applied when a scheduler name carries +threshold
    threshold: Optional[int] = None
    repetitions: int = 1


def run_sweep(spec: SweepSpec, verbose: bool = False) -> Sweep:
    """Execute the sweep and collect all series."""
    platform = spec.platform()
    sweep = Sweep(title=spec.title)
    sweep.reference_lines["GFlop/s max"] = roofline_gflops(
        platform.n_gpus, platform.gpus[0].gflops
    )
    pci_curve: List[float] = []

    for n in spec.ns:
        graph = spec.workload(n)
        ws_mb = graph.working_set_bytes / 1e6
        pci_curve.append(
            pci_transfer_limit_bytes(
                graph,
                platform.n_gpus,
                platform.gpus[0].gflops,
                platform.bus.bandwidth,
            )
            / 1e6
        )
        for name in spec.schedulers:
            measurements = []
            is_thresh = name.strip().lower().endswith("+threshold")
            for rep in range(max(1, spec.repetitions)):
                sched, eviction = make_scheduler(
                    name, threshold=spec.threshold if is_thresh else None
                )
                result = simulate(
                    graph,
                    platform,
                    sched,
                    eviction=eviction,
                    window=spec.window,
                    seed=spec.seed + rep,
                )
                measurements.append(
                    Measurement.from_result(result, n=n, working_set_mb=ws_mb)
                )
            m = _average(measurements)
            sweep.add(m)
            if verbose:
                print(
                    f"  n={n:4d} ws={ws_mb:7.0f}MB {m.scheduler:>24s} "
                    f"{m.gflops:9.0f} GF/s  {m.transfers_mb:9.0f} MB"
                )
            canon = name.strip().lower().replace(" ", "")
            if canon in {
                s.strip().lower().replace(" ", "")
                for s in spec.no_sched_time_variants
            }:
                # The paper plots these twice: with the static phase's
                # wall-clock charged, and without ("no part. time").
                pure = Measurement(
                    scheduler=f"{m.scheduler} no sched. time",
                    n=m.n,
                    working_set_mb=m.working_set_mb,
                    gflops=m.gflops,
                    gflops_with_sched=m.gflops,
                    transfers_mb=m.transfers_mb,
                    loads=m.loads,
                    evictions=m.evictions,
                    makespan_s=m.makespan_s,
                    scheduling_time_s=0.0,
                    balance=m.balance,
                )
                sweep.add(pure)
    sweep.reference_curves["PCI bus limit (MB)"] = pci_curve
    return sweep


def _average(ms: List[Measurement]) -> Measurement:
    """Mean across repetitions (the paper averages 10 iterations)."""
    if len(ms) == 1:
        return ms[0]
    k = len(ms)
    return Measurement(
        scheduler=ms[0].scheduler,
        n=ms[0].n,
        working_set_mb=ms[0].working_set_mb,
        gflops=sum(m.gflops for m in ms) / k,
        gflops_with_sched=sum(m.gflops_with_sched for m in ms) / k,
        transfers_mb=sum(m.transfers_mb for m in ms) / k,
        loads=round(sum(m.loads for m in ms) / k),
        evictions=round(sum(m.evictions for m in ms) / k),
        makespan_s=sum(m.makespan_s for m in ms) / k,
        scheduling_time_s=sum(m.scheduling_time_s for m in ms) / k,
        balance=sum(m.balance for m in ms) / k,
    )


def run_figure(
    figure_id: str,
    scale: str = "small",
    verbose: bool = False,
    points: Optional[int] = None,
) -> Sweep:
    """Regenerate a paper figure by id (``"fig3"`` … ``"fig13"``).

    ``points`` truncates the sweep to its first N working-set sizes.
    """
    from dataclasses import replace

    from repro.experiments.figures import FIGURES

    try:
        config = FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None
    spec = config.spec(scale)
    if points is not None:
        spec = replace(spec, ns=spec.ns[: max(1, points)])
    return run_sweep(spec, verbose=verbose)
