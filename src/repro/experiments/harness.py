"""Sweep driver: run a scheduler set across instance sizes.

Mirrors the paper's methodology (§V-A): for each working-set size, run
every strategy on the same instance and record throughput and transfer
volume; reference lines give the aggregate roofline and, for transfer
plots, the PCI-bus limit curve.

A sweep decomposes into independent *cells* — one ``(n, scheduler,
repetition)`` simulation each.  :func:`run_cell` computes a single cell
and :func:`run_sweep` assembles cells into the figure's series.  The
assembly accepts a pluggable ``cell_runner`` so other execution
strategies (the process-pool executor in
:mod:`repro.experiments.parallel`, the result cache in
:mod:`repro.experiments.cache`) produce byte-identical sweeps: only the
way cells are *computed* changes, never the order they are merged in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.bounds import pci_transfer_limit_bytes, roofline_gflops
from repro.core.problem import TaskGraph
from repro.metrics.collect import Measurement, Sweep
from repro.platform.spec import PlatformSpec
from repro.schedulers.registry import make_scheduler
from repro.simulator.faults import FaultPlan
from repro.simulator.runtime import simulate


@dataclass
class SweepSpec:
    """Everything needed to regenerate one figure's data."""

    title: str
    workload: Callable[[int], TaskGraph]
    ns: Sequence[int]
    platform: Callable[[], PlatformSpec]
    schedulers: Sequence[str]
    #: scheduler names additionally reported without scheduling time,
    #: e.g. ``["hmetis+r"]`` produces an extra "… no part. time" series
    no_sched_time_variants: Sequence[str] = ()
    window: int = 2
    seed: int = 0
    #: DARTS threshold applied when a scheduler name carries +threshold
    threshold: Optional[int] = None
    repetitions: int = 1
    #: deterministic fault-injection plan applied to every cell
    #: (``None`` = fault-free, byte-identical to the pre-fault harness)
    faults: Optional[FaultPlan] = None


#: computes one ``(n, scheduler, repetition)`` cell; the trailing graph
#: argument is the instance already built for this ``n`` (runners that
#: look results up instead of simulating may ignore it).  A runner may
#: return ``None`` for a cell it could not produce (e.g. excluded after
#: repeated worker crashes); the sweep assembly skips such cells.
CellRunner = Callable[
    ["SweepSpec", int, str, int, Optional[TaskGraph]], Optional[Measurement]
]


def rep_seed(base: int, scheduler: str, n: int, rep: int) -> int:
    """Deterministic seed for one sweep cell.

    Mixes the scheduler name, the instance size, and the repetition
    index into the base seed (rather than the old ``base + rep``), so
    no two cells of a sweep share a random state and repetitions differ
    even for schedulers whose only entropy source is the seed.
    """
    canon = scheduler.strip().lower().replace(" ", "")
    digest = hashlib.sha256(f"{base}|{canon}|{n}|{rep}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def effective_threshold(spec: SweepSpec, scheduler: str) -> Optional[int]:
    """The DARTS threshold actually applied to this scheduler name."""
    is_thresh = scheduler.strip().lower().endswith("+threshold")
    return spec.threshold if is_thresh else None


def run_cell(
    spec: SweepSpec,
    n: int,
    scheduler: str,
    rep: int,
    graph: Optional[TaskGraph] = None,
) -> Measurement:
    """Simulate one ``(n, scheduler, repetition)`` cell of the sweep."""
    if graph is None:
        graph = spec.workload(n)
    platform = spec.platform()
    sched, eviction = make_scheduler(
        scheduler, threshold=effective_threshold(spec, scheduler)
    )
    result = simulate(
        graph,
        platform,
        sched,
        eviction=eviction,
        window=spec.window,
        seed=rep_seed(spec.seed, scheduler, n, rep),
        faults=spec.faults,
    )
    return Measurement.from_result(
        result, n=n, working_set_mb=graph.working_set_bytes / 1e6
    )


def run_sweep(
    spec: SweepSpec,
    verbose: bool = False,
    cell_runner: Optional[CellRunner] = None,
) -> Sweep:
    """Execute the sweep and collect all series.

    ``cell_runner`` overrides how each cell's :class:`Measurement` is
    obtained (defaults to :func:`run_cell`, i.e. simulate in-process).
    Averaging across repetitions, series insertion order, the
    no-sched-time variants, and the reference lines/curves are computed
    here regardless of the runner, which is what guarantees that the
    parallel and cached executors reproduce the serial sweep exactly.
    """
    runner: CellRunner = cell_runner if cell_runner is not None else run_cell
    platform = spec.platform()
    sweep = Sweep(title=spec.title)
    sweep.reference_lines["GFlop/s max"] = roofline_gflops(
        platform.n_gpus, platform.gpus[0].gflops
    )
    pci_curve: List[float] = []

    for n in spec.ns:
        graph = spec.workload(n)
        ws_mb = graph.working_set_bytes / 1e6
        pci_curve.append(
            pci_transfer_limit_bytes(
                graph,
                platform.n_gpus,
                platform.gpus[0].gflops,
                platform.bus.bandwidth,
            )
            / 1e6
        )
        for name in spec.schedulers:
            maybe = [
                runner(spec, n, name, rep, graph)
                for rep in range(max(1, spec.repetitions))
            ]
            measurements = [m for m in maybe if m is not None]
            if not measurements:
                # every repetition of this cell failed (excluded by the
                # parallel executor); skip the point rather than abort
                # the whole sweep — partial merges stay usable.
                continue
            m = _average(measurements)
            sweep.add(m)
            if verbose:
                print(
                    f"  n={n:4d} ws={ws_mb:7.0f}MB {m.scheduler:>24s} "
                    f"{m.gflops:9.0f} GF/s  {m.transfers_mb:9.0f} MB"
                )
            canon = name.strip().lower().replace(" ", "")
            if canon in {
                s.strip().lower().replace(" ", "")
                for s in spec.no_sched_time_variants
            }:
                # The paper plots these twice: with the static phase's
                # wall-clock charged, and without ("no part. time").
                pure = Measurement(
                    scheduler=f"{m.scheduler} no sched. time",
                    n=m.n,
                    working_set_mb=m.working_set_mb,
                    gflops=m.gflops,
                    gflops_with_sched=m.gflops,
                    transfers_mb=m.transfers_mb,
                    loads=m.loads,
                    evictions=m.evictions,
                    makespan_s=m.makespan_s,
                    scheduling_time_s=0.0,
                    balance=m.balance,
                )
                sweep.add(pure)
    sweep.reference_curves["PCI bus limit (MB)"] = pci_curve
    return sweep


def _average(ms: List[Measurement]) -> Measurement:
    """Mean across repetitions (the paper averages 10 iterations)."""
    if len(ms) == 1:
        return ms[0]
    k = len(ms)
    return Measurement(
        scheduler=ms[0].scheduler,
        n=ms[0].n,
        working_set_mb=ms[0].working_set_mb,
        gflops=sum(m.gflops for m in ms) / k,
        gflops_with_sched=sum(m.gflops_with_sched for m in ms) / k,
        transfers_mb=sum(m.transfers_mb for m in ms) / k,
        loads=round(sum(m.loads for m in ms) / k),
        evictions=round(sum(m.evictions for m in ms) / k),
        makespan_s=sum(m.makespan_s for m in ms) / k,
        scheduling_time_s=sum(m.scheduling_time_s for m in ms) / k,
        balance=sum(m.balance for m in ms) / k,
    )


def figure_spec(
    figure_id: str, scale: str = "small", points: Optional[int] = None
) -> SweepSpec:
    """Resolve a figure id to its (possibly truncated) :class:`SweepSpec`."""
    from dataclasses import replace

    from repro.experiments.figures import FIGURES

    try:
        config = FIGURES[figure_id]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None
    spec = config.spec(scale)
    if points is not None:
        spec = replace(spec, ns=spec.ns[: max(1, points)])
    return spec


def run_figure(
    figure_id: str,
    scale: str = "small",
    verbose: bool = False,
    points: Optional[int] = None,
    cell_runner: Optional[CellRunner] = None,
) -> Sweep:
    """Regenerate a paper figure by id (``"fig3"`` … ``"fig13"``).

    ``points`` truncates the sweep to its first N working-set sizes.
    """
    spec = figure_spec(figure_id, scale=scale, points=points)
    return run_sweep(spec, verbose=verbose, cell_runner=cell_runner)
