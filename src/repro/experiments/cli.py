"""Command-line entry point: regenerate paper figures as text tables.

Examples::

    python -m repro.experiments fig3
    python -m repro.experiments fig8 --scale paper --plot
    python -m repro.experiments all --scale small
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.figures import FIGURES
from repro.experiments.harness import run_figure
from repro.metrics.report import ascii_plot, format_series_table


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the IPDPS'22 paper's evaluation figures "
        "on the simulated platform.",
    )
    parser.add_argument(
        "figure",
        help=f"figure id ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="instance sizes: 'small' runs in minutes, 'paper' is closer "
        "to the paper's sweep (slower)",
    )
    parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII plot"
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="only run the first N working-set points of the sweep",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print points as they finish"
    )
    args = parser.parse_args(argv)

    figure_ids = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for fid in figure_ids:
        if fid not in FIGURES:
            print(f"unknown figure {fid!r}; known: {sorted(FIGURES)}")
            return 2
        config = FIGURES[fid]
        print(f"== {fid}: {config.title} ==")
        if config.notes:
            print(f"   {config.notes}")
        t0 = time.perf_counter()
        sweep = run_figure(
            fid, scale=args.scale, verbose=args.verbose, points=args.points
        )
        print(format_series_table(sweep, metric=config.metric))
        if args.plot:
            print(ascii_plot(sweep, metric=config.metric))
        print(f"   [{time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
