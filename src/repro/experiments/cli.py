"""Command-line entry point: regenerate paper figures as text tables.

Examples::

    python -m repro.experiments fig3
    python -m repro.experiments fig8 --scale paper --plot
    python -m repro.experiments all --scale small
    python -m repro.experiments fig3 --jobs 4           # fan out cells
    python -m repro.experiments fig3 --no-cache         # force recompute
    python -m repro.experiments fig3 --fault-plan plan.json   # inject faults

Sweep cells run through :mod:`repro.experiments.parallel`: ``--jobs N``
fans independent ``(n, scheduler, repetition)`` simulations across N
worker processes (default: all CPUs), and results are memoised in a
content-addressed cache under ``--cache-dir`` (default
``.repro-cache/``) so re-running a figure is near-instant unless the
code, the instance, or the seed changed.  The per-figure footer reports
wall-clock time and cache hit/miss counts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.experiments.figures import FIGURES
from repro.experiments.parallel import run_figure_parallel
from repro.metrics.report import ascii_plot, format_series_table
from repro.simulator.faults import load_fault_plan


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the IPDPS'22 paper's evaluation figures "
        "on the simulated platform.",
    )
    parser.add_argument(
        "figure",
        help=f"figure id ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=["small", "paper"],
        default="small",
        help="instance sizes: 'small' runs in minutes, 'paper' is closer "
        "to the paper's sweep (slower)",
    )
    parser.add_argument(
        "--plot", action="store_true", help="also print an ASCII plot"
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="only run the first N working-set points of the sweep",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent sweep cells "
        "(default: all CPUs; 1 = in-process serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="directory of the content-addressed result cache "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH_OR_JSON",
        help="deterministic fault-injection plan applied to every sweep "
        "cell: a JSON file path, or an inline JSON object (starts with "
        "'{'); see repro.simulator.faults.FaultPlan",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print points as they finish"
    )
    args = parser.parse_args(argv)

    faults = None
    if args.fault_plan is not None:
        try:
            faults = load_fault_plan(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"bad --fault-plan: {exc}")
            return 2

    figure_ids = sorted(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [fid for fid in figure_ids if fid not in FIGURES]
    if unknown:
        # validate up front: nothing runs if any requested figure is bad
        print(f"unknown figure {unknown[0]!r}; known: {sorted(FIGURES)}")
        return 2

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    for fid in figure_ids:
        config = FIGURES[fid]
        print(f"== {fid}: {config.title} ==")
        if config.notes:
            print(f"   {config.notes}")
        before = cache.snapshot() if cache is not None else None
        t0 = time.perf_counter()
        sweep = run_figure_parallel(
            fid,
            scale=args.scale,
            points=args.points,
            jobs=args.jobs,
            cache=cache,
            verbose=args.verbose,
            faults=faults,
        )
        elapsed = time.perf_counter() - t0
        print(format_series_table(sweep, metric=config.metric))
        if args.plot:
            print(ascii_plot(sweep, metric=config.metric))
        if cache is not None and before is not None:
            stats = cache.stats_since(before)
            print(
                f"   [{elapsed:.1f}s] [cache: {stats['hits']} hits, "
                f"{stats['misses']} misses, dir {cache.cache_dir}]\n"
            )
        else:
            print(f"   [{elapsed:.1f}s] [cache off]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
