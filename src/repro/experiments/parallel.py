"""Process-pool sweep executor with a deterministic merge.

The cells of a sweep — one ``(n, scheduler, repetition)`` simulation
each — are mutually independent, like the independent work items
Celerity runs on concurrent queues or the independent DAG branches
GrCUDA overlaps.  :func:`run_sweep_parallel` fans them out across
worker processes and merges the results back by delegating assembly to
:func:`repro.experiments.harness.run_sweep` with a lookup-table cell
runner, so the output is byte-identical to the serial path regardless
of worker count or completion order.

Workers are forked (POSIX): the parent parks the spec and the built
instances in module globals before creating the pool, and children
inherit them through the fork, so specs whose ``workload``/``platform``
factories are lambdas (most figure configs) need never be pickled.
Only cell indices cross the pipe one way and ``Measurement`` dataclasses
the other.  Where fork is unavailable the executor transparently falls
back to in-process serial computation — same results, no speedup.

Determinism contract: every simulation-derived quantity (throughput,
transfers, loads, evictions, makespan, balance, series order) is
bit-identical to the serial sweep for any worker count — compare with
``Sweep.deterministic_dict()``.  The two wall-clock fields
(``Measurement.WALL_CLOCK_FIELDS``: static scheduling time and the
throughput charged with it) are *host measurements* and jitter between
any two runs, serial or parallel, exactly as they did in the serial-only
harness; serving cells from a shared :class:`ResultCache` freezes them
too, making warm reruns byte-identical end to end.

A :class:`repro.experiments.cache.ResultCache` plugs in before the
fan-out: cached cells are looked up first and only the misses are
simulated (then stored), so a warm rerun performs zero simulations.

Fault tolerance: the pool survives killed workers (``BrokenProcessPool``
— e.g. the OOM killer taking out one child mid-sweep) and wedged cells
(a per-cell wall-clock timeout).  Affected cells are retried with a
capped exponential backoff; a cell that keeps failing after
``max_attempts`` rounds is *excluded* — reported in the merge footer and
skipped by the assembly (`run_sweep` averages the repetitions that did
complete and drops the point entirely when none did).  Only cleanly
completed cells are ever written to the cache, so a crash can never
poison future warm runs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.core.problem import TaskGraph
from repro.experiments.cache import ResultCache
from repro.experiments.harness import (
    SweepSpec,
    figure_spec,
    run_cell,
    run_sweep,
)
from repro.metrics.collect import Measurement, Sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.faults import FaultPlan


class Cell(NamedTuple):
    """One independent unit of sweep work."""

    n: int
    scheduler: str
    rep: int


class ExcludedCell(NamedTuple):
    """A cell dropped from the merge after exhausting its retry budget."""

    cell: Cell
    attempts: int
    error: str


def enumerate_cells(spec: SweepSpec) -> List[Cell]:
    """All ``(n, scheduler, repetition)`` cells, in serial sweep order."""
    return [
        Cell(n, name, rep)
        for n in spec.ns
        for name in spec.schedulers
        for rep in range(max(1, spec.repetitions))
    ]


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: all usable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# fork-shared state: set in the parent immediately before the pool is
# created, inherited by the workers through the fork, cleared after
# ----------------------------------------------------------------------
_FORK_SPEC: Optional[SweepSpec] = None
_FORK_CELLS: List[Cell] = []
_FORK_GRAPHS: Dict[int, TaskGraph] = {}


def _run_indexed_cell(i: int) -> Tuple[int, Measurement]:
    """Worker entry point: compute cell ``i`` of the parked work list."""
    assert _FORK_SPEC is not None, "worker forked without a parked spec"
    cell = _FORK_CELLS[i]
    return i, run_cell(
        _FORK_SPEC,
        cell.n,
        cell.scheduler,
        cell.rep,
        graph=_FORK_GRAPHS.get(cell.n),
    )


def _teardown_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a wedged/broken pool without waiting on its workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - best effort
            pass


def _compute_pool(
    spec: SweepSpec,
    cells: List[Cell],
    graphs: Dict[int, TaskGraph],
    jobs: int,
    cell_timeout: float = 600.0,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
) -> Tuple[Dict[Cell, Measurement], List[ExcludedCell]]:
    """Run ``cells`` across a process pool, surviving crashes and hangs.

    Each round submits every still-pending cell to a fresh pool.  A cell
    whose future raises (worker exception), whose pool breaks under it
    (killed worker), or that exceeds ``cell_timeout`` of wall clock is
    charged one failed attempt and retried next round after a capped
    exponential backoff; cells untouched by the abort keep their attempt
    budget.  After ``max_attempts`` failures a cell is excluded and
    reported instead of aborting the sweep.
    """
    global _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS
    ctx = multiprocessing.get_context("fork")
    results: Dict[Cell, Measurement] = {}
    attempts = [0] * len(cells)
    errors: Dict[int, str] = {}
    excluded: List[ExcludedCell] = []
    # Largest instances dominate the wall clock; dispatch them first so
    # the tail of the schedule is short cells, not one straggler.
    pending = sorted(range(len(cells)), key=lambda i: (-cells[i].n, i))
    _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS = spec, list(cells), graphs
    try:
        round_no = 0
        while pending:
            round_no += 1
            if round_no > 1:
                time.sleep(min(retry_backoff * 2 ** (round_no - 2), 5.0))
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)), mp_context=ctx
            )
            futures = [(i, pool.submit(_run_indexed_cell, i)) for i in pending]
            done: List[int] = []
            failed: List[int] = []
            aborted = False
            try:
                for i, fut in futures:
                    if aborted:
                        break
                    try:
                        idx, m = fut.result(timeout=cell_timeout)
                        results[cells[idx]] = m
                        done.append(idx)
                    except FutureTimeout:
                        errors[i] = (
                            f"no result within {cell_timeout:.0f}s wall clock"
                        )
                        failed.append(i)
                        aborted = True  # pool is wedged; rebuild it
                    except BrokenProcessPool:
                        errors[i] = "worker process died (pool broken)"
                        failed.append(i)
                        aborted = True  # pool is unusable; rebuild it
                    except Exception as exc:
                        errors[i] = f"{type(exc).__name__}: {exc}"
                        failed.append(i)
            finally:
                if aborted:
                    _teardown_pool(pool)
                else:
                    pool.shutdown(wait=True)
            survivors: List[int] = []
            for i in failed:
                attempts[i] += 1
                if attempts[i] >= max_attempts:
                    excluded.append(
                        ExcludedCell(cells[i], attempts[i], errors[i])
                    )
                else:
                    survivors.append(i)
            finished = set(done)
            blamed = set(failed)
            # Cells neither finished nor blamed were innocent bystanders
            # of an aborted round: they retry without losing budget.
            pending = survivors + [
                i for i in pending if i not in finished and i not in blamed
            ]
            pending.sort(key=lambda i: (-cells[i].n, i))
        return results, excluded
    finally:
        _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS = None, [], {}


def _compute_serial(
    spec: SweepSpec,
    cells: List[Cell],
    graphs: Dict[int, TaskGraph],
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
) -> Tuple[Dict[Cell, Measurement], List[ExcludedCell]]:
    """In-process fallback with the same retry/exclusion semantics."""
    results: Dict[Cell, Measurement] = {}
    excluded: List[ExcludedCell] = []
    for cell in cells:
        last = ""
        for attempt in range(1, max_attempts + 1):
            if attempt > 1:
                time.sleep(min(retry_backoff * 2 ** (attempt - 2), 5.0))
            try:
                results[cell] = run_cell(
                    spec, cell.n, cell.scheduler, cell.rep,
                    graph=graphs[cell.n],
                )
                break
            except Exception as exc:
                last = f"{type(exc).__name__}: {exc}"
        else:
            excluded.append(ExcludedCell(cell, max_attempts, last))
    return results, excluded


def run_sweep_parallel(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
    cell_timeout: float = 600.0,
    max_attempts: int = 3,
    retry_backoff: float = 0.5,
) -> Sweep:
    """Execute ``spec`` across ``jobs`` workers, reusing cached cells.

    Produces exactly the :class:`Sweep` of ``run_sweep(spec)`` — same
    series, same values, same order — for every ``jobs`` value.  Cells
    that crash or hang are retried up to ``max_attempts`` times (capped
    exponential backoff starting at ``retry_backoff`` seconds, per-cell
    wall-clock budget ``cell_timeout``); persistent failures are excluded
    from the merge and reported in a footer instead of aborting.  Only
    cleanly completed cells are written to ``cache``.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    cells = enumerate_cells(spec)
    graphs = {n: spec.workload(n) for n in spec.ns}

    results: Dict[Cell, Measurement] = {}
    missing: List[Cell] = []
    keys: Dict[Cell, str] = {}
    if cache is not None:
        for cell in cells:
            keys[cell] = cache.key_for(
                spec, cell.n, cell.scheduler, cell.rep, graph=graphs[cell.n]
            )
            hit = cache.get(keys[cell])
            if hit is not None:
                results[cell] = hit
            else:
                missing.append(cell)
    else:
        missing = list(cells)

    excluded: List[ExcludedCell] = []
    if missing:
        if jobs > 1 and len(missing) > 1 and fork_available():
            computed, excluded = _compute_pool(
                spec,
                missing,
                graphs,
                min(jobs, len(missing)),
                cell_timeout=cell_timeout,
                max_attempts=max_attempts,
                retry_backoff=retry_backoff,
            )
        else:
            computed, excluded = _compute_serial(
                spec,
                missing,
                graphs,
                max_attempts=max_attempts,
                retry_backoff=retry_backoff,
            )
        if cache is not None:
            # Excluded cells never reach `computed`, so nothing a crash
            # touched can be stored and poison a warm rerun.
            for cell, m in computed.items():
                cache.put(keys[cell], m)
        results.update(computed)

    def lookup(
        spec_: SweepSpec,
        n: int,
        name: str,
        rep: int,
        graph: Optional[TaskGraph] = None,
    ) -> Optional[Measurement]:
        return results.get(Cell(n, name, rep))

    sweep = run_sweep(spec, verbose=verbose, cell_runner=lookup)
    if excluded:
        print(
            f"  [merge: {len(excluded)} cell(s) excluded after "
            f"{max_attempts} attempt(s) each]"
        )
        for exc_cell in sorted(excluded, key=lambda e: e.cell):
            c = exc_cell.cell
            print(
                f"    n={c.n} {c.scheduler} rep={c.rep}: {exc_cell.error}"
            )
    return sweep


def run_figure_parallel(
    figure_id: str,
    scale: str = "small",
    points: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
    faults: Optional["FaultPlan"] = None,
) -> Sweep:
    """Parallel, cache-aware counterpart of ``harness.run_figure``.

    ``faults`` overlays a deterministic fault-injection plan on every
    cell of the figure's sweep (see :mod:`repro.simulator.faults`).
    """
    spec = figure_spec(figure_id, scale=scale, points=points)
    if faults is not None:
        spec = replace(spec, faults=faults)
    return run_sweep_parallel(spec, jobs=jobs, cache=cache, verbose=verbose)
