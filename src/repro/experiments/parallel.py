"""Process-pool sweep executor with a deterministic merge.

The cells of a sweep — one ``(n, scheduler, repetition)`` simulation
each — are mutually independent, like the independent work items
Celerity runs on concurrent queues or the independent DAG branches
GrCUDA overlaps.  :func:`run_sweep_parallel` fans them out across
worker processes and merges the results back by delegating assembly to
:func:`repro.experiments.harness.run_sweep` with a lookup-table cell
runner, so the output is byte-identical to the serial path regardless
of worker count or completion order.

Workers are forked (POSIX): the parent parks the spec and the built
instances in module globals before creating the pool, and children
inherit them through the fork, so specs whose ``workload``/``platform``
factories are lambdas (most figure configs) need never be pickled.
Only cell indices cross the pipe one way and ``Measurement`` dataclasses
the other.  Where fork is unavailable the executor transparently falls
back to in-process serial computation — same results, no speedup.

Determinism contract: every simulation-derived quantity (throughput,
transfers, loads, evictions, makespan, balance, series order) is
bit-identical to the serial sweep for any worker count — compare with
``Sweep.deterministic_dict()``.  The two wall-clock fields
(``Measurement.WALL_CLOCK_FIELDS``: static scheduling time and the
throughput charged with it) are *host measurements* and jitter between
any two runs, serial or parallel, exactly as they did in the serial-only
harness; serving cells from a shared :class:`ResultCache` freezes them
too, making warm reruns byte-identical end to end.

A :class:`repro.experiments.cache.ResultCache` plugs in before the
fan-out: cached cells are looked up first and only the misses are
simulated (then stored), so a warm rerun performs zero simulations.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.problem import TaskGraph
from repro.experiments.cache import ResultCache
from repro.experiments.harness import (
    SweepSpec,
    figure_spec,
    run_cell,
    run_sweep,
)
from repro.metrics.collect import Measurement, Sweep


class Cell(NamedTuple):
    """One independent unit of sweep work."""

    n: int
    scheduler: str
    rep: int


def enumerate_cells(spec: SweepSpec) -> List[Cell]:
    """All ``(n, scheduler, repetition)`` cells, in serial sweep order."""
    return [
        Cell(n, name, rep)
        for n in spec.ns
        for name in spec.schedulers
        for rep in range(max(1, spec.repetitions))
    ]


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: all usable CPUs."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# fork-shared state: set in the parent immediately before the pool is
# created, inherited by the workers through the fork, cleared after
# ----------------------------------------------------------------------
_FORK_SPEC: Optional[SweepSpec] = None
_FORK_CELLS: List[Cell] = []
_FORK_GRAPHS: Dict[int, TaskGraph] = {}


def _run_indexed_cell(i: int) -> Tuple[int, Measurement]:
    """Worker entry point: compute cell ``i`` of the parked work list."""
    assert _FORK_SPEC is not None, "worker forked without a parked spec"
    cell = _FORK_CELLS[i]
    return i, run_cell(
        _FORK_SPEC,
        cell.n,
        cell.scheduler,
        cell.rep,
        graph=_FORK_GRAPHS.get(cell.n),
    )


def _compute_pool(
    spec: SweepSpec,
    cells: List[Cell],
    graphs: Dict[int, TaskGraph],
    jobs: int,
) -> Dict[Cell, Measurement]:
    global _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS
    ctx = multiprocessing.get_context("fork")
    # Largest instances dominate the wall clock; dispatch them first so
    # the tail of the schedule is short cells, not one straggler.
    order = sorted(range(len(cells)), key=lambda i: -cells[i].n)
    _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS = spec, list(cells), graphs
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            results: Dict[Cell, Measurement] = {}
            for i, m in pool.map(_run_indexed_cell, order):
                results[cells[i]] = m
            return results
    finally:
        _FORK_SPEC, _FORK_CELLS, _FORK_GRAPHS = None, [], {}


def run_sweep_parallel(
    spec: SweepSpec,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
) -> Sweep:
    """Execute ``spec`` across ``jobs`` workers, reusing cached cells.

    Produces exactly the :class:`Sweep` of ``run_sweep(spec)`` — same
    series, same values, same order — for every ``jobs`` value.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    cells = enumerate_cells(spec)
    graphs = {n: spec.workload(n) for n in spec.ns}

    results: Dict[Cell, Measurement] = {}
    missing: List[Cell] = []
    keys: Dict[Cell, str] = {}
    if cache is not None:
        for cell in cells:
            keys[cell] = cache.key_for(
                spec, cell.n, cell.scheduler, cell.rep, graph=graphs[cell.n]
            )
            hit = cache.get(keys[cell])
            if hit is not None:
                results[cell] = hit
            else:
                missing.append(cell)
    else:
        missing = list(cells)

    if missing:
        if jobs > 1 and len(missing) > 1 and fork_available():
            computed = _compute_pool(
                spec, missing, graphs, min(jobs, len(missing))
            )
        else:
            computed = {
                cell: run_cell(
                    spec,
                    cell.n,
                    cell.scheduler,
                    cell.rep,
                    graph=graphs[cell.n],
                )
                for cell in missing
            }
        if cache is not None:
            for cell, m in computed.items():
                cache.put(keys[cell], m)
        results.update(computed)

    def lookup(
        spec_: SweepSpec,
        n: int,
        name: str,
        rep: int,
        graph: Optional[TaskGraph] = None,
    ) -> Measurement:
        return results[Cell(n, name, rep)]

    return run_sweep(spec, verbose=verbose, cell_runner=lookup)


def run_figure_parallel(
    figure_id: str,
    scale: str = "small",
    points: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    verbose: bool = False,
) -> Sweep:
    """Parallel, cache-aware counterpart of ``harness.run_figure``."""
    spec = figure_spec(figure_id, scale=scale, points=points)
    return run_sweep_parallel(spec, jobs=jobs, cache=cache, verbose=verbose)
