"""One configuration per figure of the paper's evaluation (Figs 3-13).

Two scales are provided:

* ``"small"`` — reduced instance sizes (and, for the 4-GPU figures,
  memory halved to 250 MB/GPU) so a full regeneration of all figures
  runs in minutes while preserving the memory-pressure *ratios* the
  paper sweeps through (both "B fits" and "A and B fit" thresholds are
  crossed);
* ``"paper"`` — the 500 MB/GPU setup with sizes as close to the paper's
  as a pure-Python simulation can reasonably run.

The paper's absolute sizes (up to 300×300 = 90 000 tasks) are out of
reach for the quadratic-ish Python Ready scan, so "paper" tops out
earlier; the crossover structure is unaffected (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.problem import TaskGraph
from repro.experiments.harness import SweepSpec
from repro.platform.spec import PlatformSpec, tesla_v100_node
from repro.workloads import (
    cholesky_tasks,
    matmul2d,
    matmul3d,
    sparse_matmul2d,
)


@dataclass(frozen=True)
class FigureConfig:
    """Declarative description of one paper figure."""

    figure_id: str
    title: str
    workload: Callable[[int], TaskGraph]
    schedulers: Sequence[str]
    n_gpus: int
    metric: str  # "gflops" or "transfers_mb"
    ns_small: Sequence[int]
    ns_paper: Sequence[int]
    no_sched_time_variants: Sequence[str] = ()
    memory_small: Optional[float] = None  # bytes; None = paper's 500 MB
    unlimited_memory: bool = False
    threshold: Optional[int] = None
    notes: str = ""

    def platform_factory(self, scale: str) -> Callable[[], PlatformSpec]:
        mem = None
        if scale == "small" and self.memory_small is not None:
            mem = self.memory_small

        def factory() -> PlatformSpec:
            if self.unlimited_memory:
                return tesla_v100_node(self.n_gpus, unlimited_memory=True)
            if mem is not None:
                return tesla_v100_node(self.n_gpus, memory_bytes=mem)
            return tesla_v100_node(self.n_gpus)

        return factory

    def spec(self, scale: str = "small") -> SweepSpec:
        if scale not in ("small", "paper"):
            raise ValueError(f"scale must be 'small' or 'paper', got {scale!r}")
        ns = self.ns_small if scale == "small" else self.ns_paper
        return SweepSpec(
            title=f"{self.figure_id}: {self.title} [{scale}]",
            workload=self.workload,
            ns=ns,
            platform=self.platform_factory(scale),
            schedulers=self.schedulers,
            no_sched_time_variants=self.no_sched_time_variants,
            threshold=self.threshold,
        )


_MB = 1e6

FIGURES: Dict[str, FigureConfig] = {}


def _register(cfg: FigureConfig) -> None:
    FIGURES[cfg.figure_id] = cfg


_register(
    FigureConfig(
        figure_id="fig3",
        title="2D matmul, 1 GPU, throughput",
        workload=matmul2d,
        schedulers=["eager", "dmdar", "mhfp", "darts", "darts+luf"],
        no_sched_time_variants=["mhfp"],
        n_gpus=1,
        metric="gflops_with_sched",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42, 48],
        ns_paper=[5, 10, 16, 25, 34, 45, 60, 75, 90, 110],
        notes="EAGER collapses past 'B fits'; DARTS+LUF near roofline.",
    )
)
_register(
    FigureConfig(
        figure_id="fig4",
        title="2D matmul, 1 GPU, data transfers",
        workload=matmul2d,
        schedulers=["eager", "dmdar", "mhfp", "darts", "darts+luf"],
        n_gpus=1,
        metric="transfers_mb",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42, 48],
        ns_paper=[5, 10, 16, 25, 34, 45, 60, 75, 90, 110],
        notes="EAGER exceeds the PCI-bus limit curve; DARTS+LUF lowest.",
    )
)
_register(
    FigureConfig(
        figure_id="fig5",
        title="2D matmul, 2 GPUs, simulation (throughput)",
        workload=matmul2d,
        schedulers=[
            "eager",
            "dmdar",
            "mhfp",
            "hmetis+r",
            "darts",
            "darts+luf",
        ],
        n_gpus=2,
        metric="gflops",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42, 48],
        memory_small=250 * _MB,
        ns_paper=[10, 20, 33, 45, 60, 75, 90, 110, 130],
        notes="Scheduling cost ignored (SimGrid analogue): mHFP shines.",
    )
)
_register(
    FigureConfig(
        figure_id="fig6",
        title="2D matmul, 2 GPUs, real (throughput)",
        workload=matmul2d,
        schedulers=["eager", "dmdar", "hmetis+r", "darts", "darts+luf"],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=2,
        metric="gflops_with_sched",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42, 48],
        memory_small=250 * _MB,
        ns_paper=[10, 20, 33, 45, 60, 75, 90, 110, 130],
        notes="hMETIS+R shown with and without partitioning time.",
    )
)
_register(
    FigureConfig(
        figure_id="fig7",
        title="2D matmul, 2 GPUs, data transfers",
        workload=matmul2d,
        schedulers=["eager", "dmdar", "hmetis+r", "darts", "darts+luf"],
        n_gpus=2,
        metric="transfers_mb",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42, 48],
        memory_small=250 * _MB,
        ns_paper=[10, 20, 33, 45, 60, 75, 90, 110, 130],
        notes="DARTS+LUF may transfer more than DMDAR yet win on overlap.",
    )
)
_register(
    FigureConfig(
        figure_id="fig8",
        title="2D matmul, 4 GPUs, real (throughput)",
        workload=matmul2d,
        schedulers=[
            "eager",
            "dmdar",
            "hmetis+r",
            "darts",
            "darts+luf",
            "darts+luf+threshold",
        ],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=4,
        metric="gflops_with_sched",
        ns_small=[10, 18, 26, 33, 42, 50, 60, 70],
        ns_paper=[15, 30, 45, 67, 85, 105, 125],
        memory_small=250 * _MB,
        threshold=10,
        notes="DARTS's scan cost grows with 4 GPUs; +threshold recovers.",
    )
)
_register(
    FigureConfig(
        figure_id="fig9",
        title="2D matmul randomized order, 2 GPUs (throughput)",
        workload=lambda n: matmul2d(n, randomized=True, seed=7),
        schedulers=["eager", "dmdar", "hmetis+r", "darts", "darts+luf"],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=2,
        metric="gflops_with_sched",
        ns_small=[5, 8, 12, 16, 20, 25, 30, 36, 42],
        memory_small=250 * _MB,
        ns_paper=[10, 20, 33, 45, 60, 75, 90],
        notes="DMDAR/EAGER rely on submission order; DARTS+LUF does not.",
    )
)
_register(
    FigureConfig(
        figure_id="fig10",
        title="3D matmul, 4 GPUs, simulation (throughput)",
        workload=matmul3d,
        schedulers=[
            "eager",
            "dmdar",
            "hmetis+r",
            "darts+luf",
            "darts+luf-3inputs",
        ],
        n_gpus=4,
        metric="gflops",
        ns_small=[3, 4, 5, 6, 7, 8, 10, 12],
        ns_paper=[4, 6, 8, 10, 12, 14, 16],
        memory_small=250 * _MB,
        notes="3 inputs/task: the 3inputs variant avoids random starts.",
    )
)
_register(
    FigureConfig(
        figure_id="fig11",
        title="Cholesky task set, 4 GPUs, real (throughput)",
        workload=cholesky_tasks,
        schedulers=[
            "eager",
            "dmdar",
            "hmetis+r",
            "darts+luf",
            "darts+luf-3inputs",
            "darts+luf+opti-3inputs",
        ],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=4,
        metric="gflops_with_sched",
        ns_small=[6, 10, 14, 18, 22, 26],
        ns_paper=[8, 14, 20, 26, 32, 38],
        memory_small=250 * _MB,
        notes="Huge task counts: OPTI bounds DARTS's scan cost.",
    )
)
_register(
    FigureConfig(
        figure_id="fig12",
        title="Sparse 2D matmul, 4 GPUs (throughput)",
        workload=lambda n: sparse_matmul2d(n, density=0.02, seed=3),
        schedulers=[
            "eager",
            "dmdar",
            "hmetis+r",
            "darts+luf",
            "darts+luf+opti",
        ],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=4,
        metric="gflops_with_sched",
        ns_small=[40, 70, 100, 130, 160, 200],
        ns_paper=[60, 120, 180, 240, 300, 360],
        memory_small=250 * _MB,
        notes="High comm/comp ratio; DARTS navigates sparse reuse.",
    )
)
_register(
    FigureConfig(
        figure_id="fig13",
        title="Sparse 2D matmul, no memory limit, 4 GPUs (throughput)",
        workload=lambda n: sparse_matmul2d(n, density=0.02, seed=3),
        schedulers=[
            "eager",
            "dmdar",
            "hmetis+r",
            "darts+luf",
            "darts+luf+opti",
        ],
        no_sched_time_variants=["hmetis+r"],
        n_gpus=4,
        metric="gflops_with_sched",
        ns_small=[40, 70, 100, 130, 160, 200],
        ns_paper=[60, 120, 180, 240, 300, 360],
        unlimited_memory=True,
        notes="32 GB/GPU: ordering still matters for transfer overlap.",
    )
)
