"""Dependent-task workloads.

:func:`cholesky_dag` rebuilds the tiled Cholesky factorisation of
:mod:`repro.workloads.cholesky` *with* its dependencies — the DAG the
paper strips to obtain an independent task set (§V-F).  The dependency
structure is the classic one:

* ``POTRF(k)`` waits for ``SYRK(k, k')`` of every earlier step ``k' < k``
  (updates to the diagonal tile ``A[k,k]``);
* ``TRSM(i,k)`` waits for ``POTRF(k)`` and the ``GEMM(i,k,k')`` updates
  of tile ``A[i,k]``;
* ``SYRK(i,k)`` waits for ``TRSM(i,k)``;
* ``GEMM(i,j,k)`` waits for ``TRSM(i,k)`` and ``TRSM(j,k)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.problem import TaskGraph
from repro.dag.deps import DependencySet
from repro.platform.calibration import CHOLESKY_TILE_BYTES, TILE_N
from repro.workloads.cholesky import cholesky_tasks


def cholesky_dag(
    n: int,
    data_size: float = CHOLESKY_TILE_BYTES,
    tile_side: int = TILE_N,
) -> Tuple[TaskGraph, DependencySet]:
    """The ``n × n``-tile Cholesky task graph plus its dependency DAG.

    The task set (ids, inputs, flops, submission order) is identical to
    :func:`repro.workloads.cholesky.cholesky_tasks`, so results with and
    without dependencies are directly comparable.
    """
    graph = cholesky_tasks(n, data_size=data_size, tile_side=tile_side)
    by_name: Dict[str, int] = {t.name: t.id for t in graph.tasks}
    deps = DependencySet(graph.n_tasks)

    def edge(a: str, b: str) -> None:
        deps.add_edge(by_name[a], by_name[b])

    for k in range(n):
        # POTRF(k) needs every SYRK(k, k') with k' < k
        for kp in range(k):
            edge(f"SYRK({k},{kp})", f"POTRF({k})")
        for i in range(k + 1, n):
            # TRSM(i,k) needs POTRF(k) and the GEMM(i,k,k') updates
            edge(f"POTRF({k})", f"TRSM({i},{k})")
            for kp in range(k):
                edge(f"GEMM({i},{k},{kp})", f"TRSM({i},{k})")
            # SYRK(i,k) needs TRSM(i,k)
            edge(f"TRSM({i},{k})", f"SYRK({i},{k})")
            # GEMM(i,j,k) needs TRSM(i,k) and TRSM(j,k)
            for j in range(k + 1, i):
                edge(f"TRSM({i},{k})", f"GEMM({i},{j},{k})")
                edge(f"TRSM({j},{k})", f"GEMM({i},{j},{k})")
    deps.validate(graph)
    return graph, deps
