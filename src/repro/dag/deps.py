"""Dependency sets over task graphs."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.problem import TaskGraph


class CycleError(Exception):
    """The dependency relation is not a DAG."""


class DependencySet:
    """Precedence constraints ``pred → succ`` over task ids.

    Tasks absent from any edge are sources (released immediately).
    """

    def __init__(
        self, n_tasks: int, edges: Iterable[Tuple[int, int]] = ()
    ) -> None:
        if n_tasks < 0:
            raise ValueError("n_tasks must be >= 0")
        self.n_tasks = n_tasks
        self.preds: List[Set[int]] = [set() for _ in range(n_tasks)]
        self.succs: List[Set[int]] = [set() for _ in range(n_tasks)]
        for pred, succ in edges:
            self.add_edge(pred, succ)

    def add_edge(self, pred: int, succ: int) -> None:
        if not (0 <= pred < self.n_tasks and 0 <= succ < self.n_tasks):
            raise ValueError(f"edge ({pred}, {succ}) out of range")
        if pred == succ:
            raise CycleError(f"self-dependency on task {pred}")
        self.preds[succ].add(pred)
        self.succs[pred].add(succ)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self.succs)

    def indegrees(self) -> List[int]:
        return [len(p) for p in self.preds]

    def sources(self) -> List[int]:
        return [t for t in range(self.n_tasks) if not self.preds[t]]

    def topological_order(self) -> List[int]:
        """Kahn's algorithm; raises :class:`CycleError` on cycles."""
        indeg = self.indegrees()
        ready = deque(t for t in range(self.n_tasks) if indeg[t] == 0)
        out: List[int] = []
        while ready:
            t = ready.popleft()
            out.append(t)
            for s in sorted(self.succs[t]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(out) != self.n_tasks:
            raise CycleError(
                f"dependency cycle: only {len(out)}/{self.n_tasks} tasks "
                "are orderable"
            )
        return out

    def validate(self, graph: Optional[TaskGraph] = None) -> None:
        """Check acyclicity (and size consistency with ``graph``)."""
        if graph is not None and graph.n_tasks != self.n_tasks:
            raise ValueError(
                f"dependency set covers {self.n_tasks} tasks but the graph "
                f"has {graph.n_tasks}"
            )
        self.topological_order()

    def critical_path_flops(self, graph: TaskGraph) -> float:
        """Largest total flops along any dependency chain.

        Divided by a GPU's flop rate this lower-bounds the makespan of
        the dependent-task problem regardless of the GPU count.
        """
        self.validate(graph)
        longest: Dict[int, float] = {}
        for t in self.topological_order():
            base = max(
                (longest[p] for p in self.preds[t]), default=0.0
            )
            longest[t] = base + graph.tasks[t].flops
        return max(longest.values(), default=0.0)

    def transitive_closure_size(self) -> int:
        """Number of (ancestor, descendant) pairs; diagnostics only."""
        total = 0
        for t in range(self.n_tasks):
            seen: Set[int] = set()
            stack = list(self.succs[t])
            while stack:
                s = stack.pop()
                if s not in seen:
                    seen.add(s)
                    stack.extend(self.succs[s])
            total += len(seen)
        return total
