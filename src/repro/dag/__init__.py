"""Task dependencies — the paper's main future-work direction (§VI).

The paper's model deliberately restricts itself to independent tasks
("In the long run, our objective is to consider tasks with
dependencies").  This package adds that extension to the runtime:

* :class:`DependencySet` — a DAG over the task ids of a
  :class:`repro.core.TaskGraph` (validation, topological order, critical
  path);
* runtime support — ``simulate(..., dependencies=...)`` releases a task
  only once all its predecessors completed; schedulers see only released
  tasks (EAGER skips, Ready filters, DARTS counts only released tasks as
  "free");
* :func:`cholesky_dag` — the tiled Cholesky workload *with* its real
  dependencies, the DAG the paper's §V-F strips.
"""

from repro.dag.deps import CycleError, DependencySet
from repro.dag.workloads import cholesky_dag

__all__ = ["DependencySet", "CycleError", "cholesky_dag"]
