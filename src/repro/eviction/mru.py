"""Most Recently Used eviction (ablation baseline).

MRU is the classic antidote to cyclic-scan patterns that defeat LRU:
when a working set loops over more data than fit, evicting the *most*
recently used datum keeps the rest of the loop resident.  Included to
show the paper's EAGER pathology is an LRU artefact, not a law.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.eviction.base import EvictionPolicy


class MruPolicy(EvictionPolicy):
    """Evict the candidate touched most recently."""

    name = "mru"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        self._stamp: Dict[int, int] = {}
        self._clock = 0

    def _touch(self, d: int) -> None:
        self._clock += 1
        self._stamp[d] = self._clock

    def on_insert(self, data_id: int) -> None:
        self._touch(data_id)

    def on_access(self, data_id: int) -> None:
        self._touch(data_id)

    def on_evict(self, data_id: int) -> None:
        self._stamp.pop(data_id, None)

    def choose_victim(self, candidates: Set[int]) -> int:
        return max(candidates, key=lambda d: (self._stamp.get(d, -1), -d))
