"""First-In First-Out eviction (ablation baseline)."""

from __future__ import annotations

from typing import Dict, Set

from repro.eviction.base import EvictionPolicy


class FifoPolicy(EvictionPolicy):
    """Evict the candidate that was loaded the longest ago, ignoring use."""

    name = "fifo"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        self._loaded_at: Dict[int, int] = {}
        self._clock = 0

    def on_insert(self, data_id: int) -> None:
        self._clock += 1
        self._loaded_at[data_id] = self._clock

    def on_evict(self, data_id: int) -> None:
        self._loaded_at.pop(data_id, None)

    def choose_victim(self, candidates: Set[int]) -> int:
        return min(candidates, key=lambda d: (self._loaded_at.get(d, -1), d))
