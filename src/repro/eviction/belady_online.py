"""Belady's rule online, for schedulers whose future order is known.

Only static schedulers (mHFP, hMETIS+R and fixed-schedule replays) can
expose their remaining per-GPU order; for them this policy realises the
offline-optimal eviction of the paper's Section III inside the simulator.
Dynamic schedulers expose nothing, in which case the policy degrades to
"evict anything not needed by the task buffer" with LRU ordering as the
tiebreak — it never crashes, but it is only *optimal* with full knowledge.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.eviction.base import EvictionPolicy


class OnlineBeladyPolicy(EvictionPolicy):
    """Evict the candidate whose next known use is furthest in the future."""

    name = "belady"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        self._stamp: Dict[int, int] = {}
        self._clock = 0

    def on_insert(self, data_id: int) -> None:
        self._clock += 1
        self._stamp[data_id] = self._clock

    def on_access(self, data_id: int) -> None:
        self._clock += 1
        self._stamp[data_id] = self._clock

    def on_evict(self, data_id: int) -> None:
        self._stamp.pop(data_id, None)

    def _future_tasks(self):
        assert self.view is not None
        future = list(self.view.task_buffer(self.gpu))
        if self.scheduler is not None:
            future.extend(self.scheduler.remaining_order(self.gpu))
        return future

    def choose_victim(self, candidates: Set[int]) -> int:
        graph = self.view.graph
        future = self._future_tasks()
        best_d = -1
        best_key = None
        for d in sorted(candidates):
            dist = None
            for offset, t in enumerate(future):
                if d in graph.inputs_of(t):
                    dist = offset
                    break
            if dist is None:
                # Never used again (as far as we know): ideal victim; among
                # several, prefer the least recently used.
                key = (2, -self._stamp.get(d, -1), 0)
            else:
                key = (1, dist, 0)
            if best_key is None or key > best_key:
                best_key, best_d = key, d
        return best_d
