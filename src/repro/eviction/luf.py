"""Least Used in the Future — the paper's Algorithm 6 (DARTS+LUF).

When an eviction is needed on GPU ``k``:

1. for each resident candidate ``D``, compute ``nb(D)`` (uses of ``D`` by
   tasks in ``taskBuffer_k`` — tasks already handed to the runtime, whose
   placement cannot change) and ``np(D)`` (uses by tasks in
   ``plannedTasks_k`` — reserved by DARTS but still revocable);
2. if some candidate has ``nb(D) = 0``, evict the one among them with
   minimal ``np(D)``;
3. otherwise fall back to Belady's rule over the task buffer: evict the
   candidate whose next use there is furthest in the future.

The scheduler is then notified through ``on_data_evicted`` and removes
the planned tasks that depended on the victim (Algorithm 6, line 8) —
that part lives in :class:`repro.schedulers.darts.Darts`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.eviction.base import EvictionPolicy


class LufPolicy(EvictionPolicy):
    """Least Used in the Future (Algorithm 6)."""

    name = "luf"

    def _counts(
        self, candidates: Set[int]
    ) -> Tuple[Dict[int, int], Dict[int, int], List[int]]:
        assert self.view is not None
        graph = self.view.graph
        buffer = self.view.task_buffer(self.gpu)
        planned = (
            self.scheduler.planned_tasks(self.gpu)
            if self.scheduler is not None
            else ()
        )
        nb = {d: 0 for d in candidates}
        np_ = {d: 0 for d in candidates}
        for t in buffer:
            for d in graph.inputs_of(t):
                if d in nb:
                    nb[d] += 1
        for t in planned:
            for d in graph.inputs_of(t):
                if d in np_:
                    np_[d] += 1
        return nb, np_, buffer

    def choose_victim(self, candidates: Set[int]) -> int:
        nb, np_, buffer = self._counts(candidates)
        unused = [d for d in sorted(candidates) if nb[d] == 0]
        if unused:
            return min(unused, key=lambda d: (np_[d], d))
        # Belady fallback over the task buffer (rarely reached, per paper).
        graph = self.view.graph

        def next_use(d: int) -> int:
            for offset, t in enumerate(buffer):
                if d in graph.inputs_of(t):
                    return offset
            return len(buffer)  # unreachable given nb[d] > 0, kept safe

        return max(sorted(candidates), key=lambda d: (next_use(d), -d))
