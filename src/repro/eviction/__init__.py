"""Online eviction policies for the simulated GPU memories.

* :class:`LruPolicy` — StarPU's default, used by every scheduler in the
  paper except DARTS+LUF;
* :class:`FifoPolicy`, :class:`RandomPolicy` — ablation baselines;
* :class:`OnlineBeladyPolicy` — Belady's rule applied to the *known*
  remaining order of a static scheduler (offline-optimal reference);
* :class:`LufPolicy` — the paper's Least Used in the Future policy
  (Algorithm 6), driven by DARTS's ``plannedTasks`` and the runtime's
  ``taskBuffer``.

Policies are instantiated per GPU by :func:`make_policy`.
"""

from repro.eviction.base import EvictionPolicy
from repro.eviction.lru import LruPolicy
from repro.eviction.fifo import FifoPolicy
from repro.eviction.mru import MruPolicy
from repro.eviction.lfu import LfuPolicy
from repro.eviction.random_policy import RandomPolicy
from repro.eviction.belady_online import OnlineBeladyPolicy
from repro.eviction.luf import LufPolicy

_BY_NAME = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "mru": MruPolicy,
    "lfu": LfuPolicy,
    "random": RandomPolicy,
    "belady": OnlineBeladyPolicy,
    "luf": LufPolicy,
}

POLICY_NAMES = tuple(sorted(_BY_NAME))


def make_policy(name, gpu, view, scheduler):
    """Build the eviction policy ``name`` for GPU ``gpu``.

    ``view`` is the :class:`repro.simulator.runtime.RuntimeView`;
    ``scheduler`` is passed so LUF can read ``planned_tasks`` and
    OnlineBelady can read ``remaining_order``.
    """
    try:
        cls = _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; expected one of {POLICY_NAMES}"
        ) from None
    return cls(gpu=gpu, view=view, scheduler=scheduler)


__all__ = [
    "EvictionPolicy",
    "LruPolicy",
    "FifoPolicy",
    "MruPolicy",
    "LfuPolicy",
    "RandomPolicy",
    "OnlineBeladyPolicy",
    "LufPolicy",
    "make_policy",
    "POLICY_NAMES",
]
