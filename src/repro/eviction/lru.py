"""Least Recently Used — StarPU's default eviction policy.

The paper runs every scheduler except DARTS+LUF on LRU, and attributes
both EAGER's collapse on row-major 2D matmul and DARTS's "domino effect"
to pathological LRU behaviour under memory pressure.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.eviction.base import EvictionPolicy


class LruPolicy(EvictionPolicy):
    """Evict the candidate whose last load-or-use is the oldest."""

    name = "lru"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        self._stamp: Dict[int, int] = {}
        self._clock = 0

    def _touch(self, d: int) -> None:
        self._clock += 1
        self._stamp[d] = self._clock

    def on_insert(self, data_id: int) -> None:
        self._touch(data_id)

    def on_access(self, data_id: int) -> None:
        self._touch(data_id)

    def on_evict(self, data_id: int) -> None:
        self._stamp.pop(data_id, None)

    def choose_victim(self, candidates: Set[int]) -> int:
        return min(candidates, key=lambda d: (self._stamp.get(d, -1), d))
