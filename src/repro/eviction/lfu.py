"""Least Frequently Used eviction (ablation baseline).

Counts accesses since load; evicts the least-used candidate (ties by
least recent).  Frequency is a decent proxy for the remaining-use counts
that LUF reads off DARTS's plans — comparing the two quantifies what the
scheduler's *foresight* adds over mere history.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.eviction.base import EvictionPolicy


class LfuPolicy(EvictionPolicy):
    """Evict the candidate with the fewest accesses since it loaded."""

    name = "lfu"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        self._count: Dict[int, int] = {}
        self._stamp: Dict[int, int] = {}
        self._clock = 0

    def on_insert(self, data_id: int) -> None:
        self._clock += 1
        self._count[data_id] = 0
        self._stamp[data_id] = self._clock

    def on_access(self, data_id: int) -> None:
        self._clock += 1
        self._count[data_id] = self._count.get(data_id, 0) + 1
        self._stamp[data_id] = self._clock

    def on_evict(self, data_id: int) -> None:
        self._count.pop(data_id, None)
        self._stamp.pop(data_id, None)

    def choose_victim(self, candidates: Set[int]) -> int:
        def key(d: int) -> Tuple[int, int, int]:
            return (self._count.get(d, 0), self._stamp.get(d, -1), d)

        return min(candidates, key=key)
