"""Common base class for online eviction policies."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.simulator.memory import EvictionPolicyProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import Scheduler
    from repro.simulator.runtime import RuntimeView


class EvictionPolicy(EvictionPolicyProtocol):
    """Per-GPU policy with access to the runtime view and the scheduler.

    Subclasses override :meth:`choose_victim` plus any notification hooks
    (:meth:`on_insert`, :meth:`on_access`, :meth:`on_evict`).  The memory
    manager guarantees ``candidates`` is non-empty and contains only
    present, unpinned data.
    """

    name = "abstract"

    def __init__(
        self,
        gpu: int,
        view: Optional["RuntimeView"] = None,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.gpu = gpu
        self.view = view
        self.scheduler = scheduler

    def choose_victim(self, candidates: Set[int]) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(gpu={self.gpu})"
