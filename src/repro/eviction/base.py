"""Common base class for online eviction policies."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.simulator.memory import EvictionPolicyProtocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.schedulers.base import Scheduler
    from repro.simulator.runtime import RuntimeView


#: the callable surface :class:`repro.simulator.memory.DeviceMemory`
#: drives; ``choose_victim`` is the only method subclasses *must*
#: override, the hooks have no-op defaults (``on_device_lost`` lets a
#: policy drop cross-device state after an injected GPU failure)
REQUIRED_API = (
    "choose_victim",
    "on_insert",
    "on_access",
    "on_evict",
    "on_device_lost",
)


def validate_policy_class(cls: type, name: str = "") -> list:
    """Audit one policy class against the eviction API (``API002``).

    Returns a list of problem strings (empty when conformant): the class
    must subclass :class:`EvictionPolicyProtocol`, override
    ``choose_victim``, expose every hook of :data:`REQUIRED_API`, carry a
    concrete ``name``, and accept the ``(gpu, view, scheduler)``
    constructor used by :func:`repro.eviction.make_policy`.
    """
    import inspect

    label = name or cls.__name__
    problems = []
    if not (isinstance(cls, type) and issubclass(cls, EvictionPolicyProtocol)):
        problems.append(
            f"policy {label!r} is not an EvictionPolicyProtocol subclass"
        )
        return problems
    # Both abstract bases raise NotImplementedError; neither counts as an
    # implementation.  (EvictionPolicy is defined below; by the time this
    # function can run the module is fully loaded.)
    if cls.choose_victim in (
        EvictionPolicyProtocol.choose_victim,
        EvictionPolicy.choose_victim,
    ):
        problems.append(f"policy {label!r} does not override choose_victim()")
    for method in REQUIRED_API:
        if not callable(getattr(cls, method, None)):
            problems.append(f"policy {label!r} is missing {method}()")
    if not getattr(cls, "name", "") or cls.name == "abstract":
        problems.append(f"policy {label!r} has no concrete name attribute")
    try:
        sig = inspect.signature(cls)
        sig.bind(gpu=0, view=None, scheduler=None)
    except TypeError as exc:
        problems.append(
            f"policy {label!r} does not accept (gpu, view, scheduler): {exc}"
        )
    return problems


class EvictionPolicy(EvictionPolicyProtocol):
    """Per-GPU policy with access to the runtime view and the scheduler.

    Subclasses override :meth:`choose_victim` plus any notification hooks
    (:meth:`on_insert`, :meth:`on_access`, :meth:`on_evict`).  The memory
    manager guarantees ``candidates`` is non-empty and contains only
    present, unpinned data.
    """

    name = "abstract"

    def __init__(
        self,
        gpu: int,
        view: Optional["RuntimeView"] = None,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.gpu = gpu
        self.view = view
        self.scheduler = scheduler

    def choose_victim(self, candidates: Set[int]) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(gpu={self.gpu})"
