"""Uniform-random eviction (ablation baseline).

Uses the runtime's seeded RNG so runs stay reproducible.
"""

from __future__ import annotations

import random
from typing import Set

from repro.eviction.base import EvictionPolicy


class RandomPolicy(EvictionPolicy):
    """Evict a uniformly random candidate."""

    name = "random"

    def __init__(self, gpu, view=None, scheduler=None) -> None:
        super().__init__(gpu, view, scheduler)
        # Derive an independent stream per GPU from the shared seed so
        # adding a GPU does not perturb the draws of the others.
        base = view.rng.randrange(2**31) if view is not None else 0
        self._rng = random.Random(f"{base}/{gpu}")

    def choose_victim(self, candidates: Set[int]) -> int:
        return self._rng.choice(sorted(candidates))
