"""Platform model: GPUs with private memory behind a shared PCIe bus.

Mirrors the paper's Figure 2 topology — ``K`` GPUs, each with a bounded
memory, all fetching input data from the host main memory over one shared
bus.  Presets reproduce the evaluation platform (Tesla V100 nodes with the
GPU memory artificially limited to 500 MB).
"""

from repro.platform.spec import BusSpec, GpuSpec, PlatformSpec, tesla_v100_node
from repro.platform.calibration import (
    DATA_SIZE_BYTES,
    DEFAULT_GPU_MEMORY_BYTES,
    PCIE_BANDWIDTH_BYTES_PER_S,
    TASK_FLOPS_GEMM,
    TILE_N,
    V100_GEMM_GFLOPS,
    data_items_per_memory,
    task_duration_s,
    transfer_duration_s,
)

__all__ = [
    "GpuSpec",
    "BusSpec",
    "PlatformSpec",
    "tesla_v100_node",
    "TILE_N",
    "DATA_SIZE_BYTES",
    "TASK_FLOPS_GEMM",
    "V100_GEMM_GFLOPS",
    "PCIE_BANDWIDTH_BYTES_PER_S",
    "DEFAULT_GPU_MEMORY_BYTES",
    "data_items_per_memory",
    "task_duration_s",
    "transfer_duration_s",
]
