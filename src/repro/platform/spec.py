"""Platform specification: GPUs, shared bus, and node presets."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.platform.calibration import (
    DEFAULT_GPU_MEMORY_BYTES,
    PCIE_BANDWIDTH_BYTES_PER_S,
    PCIE_LATENCY_S,
    UNLIMITED_GPU_MEMORY_BYTES,
    V100_GEMM_GFLOPS,
)


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator: peak throughput and private memory size."""

    name: str = "V100"
    gflops: float = V100_GEMM_GFLOPS
    memory_bytes: float = DEFAULT_GPU_MEMORY_BYTES

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValueError("gflops must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")


@dataclass(frozen=True)
class BusSpec:
    """The shared CPU↔GPU bus (paper Fig. 2).

    ``model`` selects the contention model of the simulator:

    * ``"fair"`` — fluid processor sharing: ``t`` concurrent transfers
      each progress at ``bandwidth / t`` (closest to PCIe behaviour with
      several GPUs pulling at once);
    * ``"fifo"`` — transfers are fully serialised in request order.
    """

    bandwidth: float = PCIE_BANDWIDTH_BYTES_PER_S
    latency: float = PCIE_LATENCY_S
    model: str = "fair"

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if self.model not in ("fair", "fifo"):
            raise ValueError(f"unknown bus model {self.model!r}")


@dataclass(frozen=True)
class PlatformSpec:
    """A node: homogeneous or heterogeneous GPUs behind one bus.

    ``peer_link`` enables NVLink-style GPU↔GPU copies (the paper's §VI
    extension): when set, a datum already resident on another GPU is
    copied over a per-source peer channel with this spec instead of
    re-fetched from host memory over the shared bus.
    """

    gpus: List[GpuSpec] = field(default_factory=lambda: [GpuSpec()])
    bus: BusSpec = field(default_factory=BusSpec)
    peer_link: Optional[BusSpec] = None

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ValueError("need at least one GPU")

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def total_gflops(self) -> float:
        return sum(g.gflops for g in self.gpus)

    @property
    def min_memory_bytes(self) -> float:
        return min(g.memory_bytes for g in self.gpus)

    def with_memory(self, memory_bytes: float) -> "PlatformSpec":
        """Same platform with every GPU's memory bound replaced."""
        return PlatformSpec(
            gpus=[replace(g, memory_bytes=memory_bytes) for g in self.gpus],
            bus=self.bus,
        )

    def homogeneous(self) -> bool:
        first = self.gpus[0]
        return all(g == first for g in self.gpus)


#: NVLink 2.0-class peer bandwidth (bytes/s, per source GPU).
NVLINK_BANDWIDTH_BYTES_PER_S: float = 48e9


def tesla_v100_node(
    n_gpus: int = 1,
    memory_bytes: float = DEFAULT_GPU_MEMORY_BYTES,
    bandwidth: float = PCIE_BANDWIDTH_BYTES_PER_S,
    bus_model: str = "fair",
    unlimited_memory: bool = False,
    nvlink: bool = False,
    nvlink_bandwidth: float = NVLINK_BANDWIDTH_BYTES_PER_S,
) -> PlatformSpec:
    """The paper's evaluation platform.

    ``memory_bytes`` defaults to the 500 MB cap used throughout the
    evaluation; pass ``unlimited_memory=True`` for the Fig. 13 setup
    (full 32 GB per GPU).  ``nvlink=True`` adds peer-to-peer links (the
    paper's §VI extension; off by default to match the evaluation).
    """
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    mem = UNLIMITED_GPU_MEMORY_BYTES if unlimited_memory else memory_bytes
    gpu = GpuSpec(name="V100", memory_bytes=mem)
    return PlatformSpec(
        gpus=[gpu] * n_gpus,
        bus=BusSpec(bandwidth=bandwidth, model=bus_model),
        peer_link=(
            BusSpec(bandwidth=nvlink_bandwidth, latency=2e-6, model="fair")
            if nvlink
            else None
        ),
    )
