"""Calibration constants matching the paper's evaluation setup.

The paper runs cuBLAS SGEMM on 960×960 single-precision tiles on Tesla
V100 GPUs, reports a per-GPU GEMM roofline of 13 253 GFlop/s, limits GPU
memory to 500 MB, and sweeps 2D-matmul instances from 5×5 to 300×300 tasks
described as working sets of 140 MB to 8 400 MB.

Those working-set figures pin down the data granularity: a 2D instance of
``N×N`` tasks has ``2N`` input data (block-rows of A, block-columns of B),
and ``140 MB / (2·5) = 14 MB`` per datum — i.e. each block-row of A is
``960 × 3840`` fp32 elements (a strip of four 960² cuBLAS tiles),
≈ 14.75 MB.  Task ``C[i,j]`` multiplies block-row ``A[i]`` (960×3840) by
block-column ``B[j]`` (3840×960): ``2·960²·3840 ≈ 7.08 GFlop``, about
0.53 ms at the roofline — while fetching one block over a 16 GB/s PCIe
bus takes ≈ 0.93 ms.  Transfers cost ~1.7× compute, so any scheduler
that degenerates to one load per task is bus-bound at roughly
``13253 × 0.53/0.93 ≈ 7.6 TFlop/s`` — exactly EAGER's collapsed plateau
in the paper's Fig. 3 — and reaching the roofline requires ≲ 0.58 loads
per task on average, which is what good data reuse buys.
"""

from __future__ import annotations

#: Short side of one data block (one cuBLAS tile), in matrix elements.
TILE_N: int = 960

#: Long side of one data block (four cuBLAS tiles).
BLOCK_LONG: int = 3840

#: Bytes per element (single precision).
BYTES_PER_ELEMENT: int = 4

#: Size of one input datum in bytes (960 × 3840 fp32 ≈ 14.75 MB).
DATA_SIZE_BYTES: float = float(TILE_N * BLOCK_LONG * BYTES_PER_ELEMENT)

#: Flops of one task: a 960² C-tile from a 960×3840 by 3840×960 product.
TASK_FLOPS_GEMM: float = 2.0 * TILE_N * TILE_N * BLOCK_LONG

#: Side of a *square* block with the same byte size (used by the 3D
#: matmul scenario, where all three matrices are tiled squarely).
BLOCK_SQUARE: int = 1920

#: Flops of one square-block product ``A[i,k] × B[k,j]`` (``2 b³``).
TASK_FLOPS_SQUARE: float = 2.0 * BLOCK_SQUARE**3

#: One square Cholesky tile (960² fp32 ≈ 3.69 MB) and its kernel costs.
CHOLESKY_TILE_BYTES: float = float(TILE_N * TILE_N * BYTES_PER_ELEMENT)

#: Per-GPU SGEMM roofline measured in the paper (GFlop/s).
V100_GEMM_GFLOPS: float = 13_253.0

#: Shared PCIe bus bandwidth (bytes/s); PCIe 3.0 x16 class.
PCIE_BANDWIDTH_BYTES_PER_S: float = 16e9

#: Per-transfer latency on the bus (seconds).  Small but non-zero, so
#: many tiny transfers are worse than one large one.
PCIE_LATENCY_S: float = 10e-6

#: GPU memory bound used in most experiments (bytes): 500 MB (MB = 1e6 B).
DEFAULT_GPU_MEMORY_BYTES: float = 500e6

#: Memory used in the "no memory limit" experiment (Fig. 13): 32 GB.
UNLIMITED_GPU_MEMORY_BYTES: float = 32e9


def data_items_per_memory(
    memory_bytes: float = DEFAULT_GPU_MEMORY_BYTES,
    data_size: float = DATA_SIZE_BYTES,
) -> int:
    """The paper's ``M``: how many equal-size data fit in GPU memory.

    500 MB holds 33 blocks of 14.75 MB.
    """
    return int(memory_bytes // data_size)


def task_duration_s(
    flops: float = TASK_FLOPS_GEMM, gflops: float = V100_GEMM_GFLOPS
) -> float:
    """Execution time of a task on one GPU at the given roofline."""
    if gflops <= 0:
        raise ValueError("gflops must be positive")
    return flops / (gflops * 1e9)


def transfer_duration_s(
    size_bytes: float = DATA_SIZE_BYTES,
    bandwidth: float = PCIE_BANDWIDTH_BYTES_PER_S,
    latency: float = PCIE_LATENCY_S,
) -> float:
    """Time to move one datum over an uncontended bus."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return latency + size_bytes / bandwidth
