"""Bipartite model of tasks sharing input data (paper Section III).

Tasks ``T = {T_1..T_m}`` and data ``D = {D_1..D_n}`` form a bipartite graph
``G = (T ∪ D, E)`` where an edge ``(T_i, D_j)`` means task ``T_i`` reads
``D_j``.  Tasks are otherwise independent.  The paper's base model assumes
equal data sizes and equal task durations; both generalisations mentioned in
the paper (heterogeneous sizes/durations) are supported by the ``size`` and
``flops`` attributes.

Identifiers are dense integers (``Task.id`` indexes ``TaskGraph.tasks``,
``Data.id`` indexes ``TaskGraph.data``) so that schedulers can use plain
lists/arrays keyed by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Data:
    """One input datum ``D_j`` (e.g. a block-row of a matrix).

    Attributes
    ----------
    id:
        Dense index into :attr:`TaskGraph.data`.
    size:
        Size in bytes.  The paper's base model uses a single common size.
    name:
        Optional human-readable label (e.g. ``"A[3]"``).
    """

    id: int
    size: float
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"D{self.id}"
        return f"Data({label}, {self.size:.0f}B)"


@dataclass(frozen=True)
class Task:
    """One task ``T_i`` with its input data set ``D(T_i)``.

    Attributes
    ----------
    id:
        Dense index into :attr:`TaskGraph.tasks`; also the submission order.
    inputs:
        Ids of the input data, in no particular order, without duplicates.
    flops:
        Work of the task in floating-point operations; drives the simulated
        duration.  Equal for all tasks in the paper's base model.
    name:
        Optional label (e.g. ``"C[2,5]"`` or ``"GEMM(1,2,3)"``).
    outputs:
        Ids of data this task *produces* (the paper's output extension;
        empty in the base model).  An output datum starts nowhere — it
        occupies GPU memory during execution and is written back to the
        host afterwards.
    """

    id: int
    inputs: Tuple[int, ...]
    flops: float
    name: str = ""
    outputs: Tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"T{self.id}"
        return f"Task({label}, in={list(self.inputs)})"


class TaskGraph:
    """The bipartite sharing graph ``G = (T ∪ D, E)``.

    Build incrementally with :meth:`add_data` and :meth:`add_task`.  The
    task id order is the submission order used by schedulers that rely on
    it (EAGER, DMDA).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.tasks: List[Task] = []
        self.data: List[Data] = []
        # data id -> ids of tasks using it, in submission order
        self._users: List[List[int]] = []
        # data id -> producing task id (output extension)
        self._producer: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_data(self, size: float, name: str = "") -> Data:
        """Create a new datum of ``size`` bytes and return it."""
        if size <= 0:
            raise ValueError(f"data size must be positive, got {size}")
        d = Data(id=len(self.data), size=float(size), name=name)
        self.data.append(d)
        self._users.append([])
        return d

    def add_task(
        self,
        inputs: Iterable[object],
        flops: float,
        name: str = "",
        outputs: Iterable[object] = (),
    ) -> Task:
        """Create a task reading ``inputs`` and producing ``outputs``.

        Each datum has at most one producer, and a task cannot read the
        datum it produces.
        """
        ids: List[int] = []
        seen = set()
        for x in inputs:
            did = x.id if isinstance(x, Data) else int(x)
            if did < 0 or did >= len(self.data):
                raise ValueError(f"unknown data id {did}")
            if did in seen:
                raise ValueError(f"duplicate input data id {did}")
            seen.add(did)
            ids.append(did)
        if not ids:
            raise ValueError("a task needs at least one input datum")
        if flops <= 0:
            raise ValueError(f"task flops must be positive, got {flops}")
        out_ids: List[int] = []
        for x in outputs:
            did = x.id if isinstance(x, Data) else int(x)
            if did < 0 or did >= len(self.data):
                raise ValueError(f"unknown output data id {did}")
            if did in seen or did in out_ids:
                raise ValueError(
                    f"datum {did} cannot be both input and output "
                    "(or listed twice)"
                )
            if did in self._producer:
                raise ValueError(
                    f"datum {did} already produced by task "
                    f"{self._producer[did]}"
                )
            out_ids.append(did)
        t = Task(
            id=len(self.tasks),
            inputs=tuple(ids),
            flops=float(flops),
            name=name,
            outputs=tuple(out_ids),
        )
        self.tasks.append(t)
        for did in ids:
            self._users[did].append(t.id)
        for did in out_ids:
            self._producer[did] = t.id
        return t

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_data(self) -> int:
        return len(self.data)

    def inputs_of(self, task_id: int) -> Tuple[int, ...]:
        """``D(T_i)`` as a tuple of data ids."""
        return self.tasks[task_id].inputs

    def users_of(self, data_id: int) -> Sequence[int]:
        """Ids of tasks that read ``data_id``, in submission order."""
        return self._users[data_id]

    def degree(self, data_id: int) -> int:
        """Number of tasks sharing ``data_id``."""
        return len(self._users[data_id])

    def shared_inputs(self, a: int, b: int) -> Tuple[int, ...]:
        """Data ids read by both tasks ``a`` and ``b``."""
        sb = set(self.tasks[b].inputs)
        return tuple(d for d in self.tasks[a].inputs if d in sb)

    def shared_weight(self, a: int, b: int) -> float:
        """Total bytes of input data shared by tasks ``a`` and ``b``."""
        return sum(self.data[d].size for d in self.shared_inputs(a, b))

    def task_input_bytes(self, task_id: int) -> float:
        """Total bytes of ``D(T_i)`` (the task's memory footprint)."""
        return sum(self.data[d].size for d in self.tasks[task_id].inputs)

    def footprint_bytes(self, task_ids: Iterable[int]) -> float:
        """Bytes of the union of inputs of ``task_ids`` (package footprint)."""
        seen: set = set()
        for t in task_ids:
            seen.update(self.tasks[t].inputs)
        return sum(self.data[d].size for d in seen)

    @property
    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    @property
    def working_set_bytes(self) -> float:
        """Total bytes of all distinct input data (the paper's x-axis)."""
        return sum(d.size for d in self.data)

    def uniform_data_size(self) -> Optional[float]:
        """The common data size if all data are equal-sized, else ``None``."""
        if not self.data:
            return None
        s = self.data[0].size
        return s if all(d.size == s for d in self.data) else None

    def max_task_arity(self) -> int:
        """Largest number of inputs of any task."""
        return max((len(t.inputs) for t in self.tasks), default=0)

    def producer_of(self, data_id: int) -> Optional[int]:
        """Task producing ``data_id``, or ``None`` for initial data."""
        return self._producer.get(data_id)

    def is_produced(self, data_id: int) -> bool:
        """Whether ``data_id`` is a task output (not initially in host
        memory)."""
        return data_id in self._producer

    @property
    def has_outputs(self) -> bool:
        return bool(self._producer)

    def outputs_of(self, task_id: int) -> Tuple[int, ...]:
        return self.tasks[task_id].outputs

    def task_footprint_bytes(self, task_id: int) -> float:
        """Bytes of inputs plus outputs (the task's memory requirement)."""
        t = self.tasks[task_id]
        return sum(self.data[d].size for d in t.inputs + t.outputs)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"TaskGraph({label} m={self.n_tasks} tasks, n={self.n_data} data)"

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency; raises ``AssertionError`` on bugs."""
        assert len(self._users) == len(self.data)
        for t in self.tasks:
            assert len(set(t.inputs)) == len(t.inputs)
            for d in t.inputs:
                assert t.id in self._users[d]
        for did, users in enumerate(self._users):
            for t in users:
                assert did in self.tasks[t].inputs
        for did, t in self._producer.items():
            assert did in self.tasks[t].outputs

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def as_hyperedges(self) -> List[Tuple[int, ...]]:
        """Hyperedge list for hypergraph partitioning (paper §IV-B).

        One hyperedge per datum, containing the ids of all tasks reading
        it.  Data read by fewer than two tasks still yield (trivial)
        hyperedges; partitioners may ignore singletons.
        """
        return [tuple(u) for u in self._users]

    def clique_expansion(self) -> Dict[Tuple[int, int], float]:
        """METIS-style graph model of data sharing (paper §IV-B).

        Returns edge weights between task pairs: for each datum shared by
        ``k`` tasks, every pair among them gets the datum's size added —
        which is exactly the triple-counting weakness the paper describes
        for data shared by three or more tasks.
        """
        edges: Dict[Tuple[int, int], float] = {}
        for did, users in enumerate(self._users):
            w = self.data[did].size
            for i in range(len(users)):
                for j in range(i + 1, len(users)):
                    a, b = users[i], users[j]
                    key = (a, b) if a < b else (b, a)
                    edges[key] = edges.get(key, 0.0) + w
        return edges
