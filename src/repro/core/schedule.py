"""Schedules σ with explicit eviction sets V, and their analytic replay.

The paper (Section III) describes a schedule on GPU ``k`` as ``nb_k`` steps;
step ``i`` (1) evicts the data in ``V(k, i)``, (2) loads the missing inputs
of ``T_σ(k,i)``, (3) runs the task.  The live set obeys

    ``L(k, i) = (L(k, i-1) \\ V(k, i)) ∪ D(T_σ(k,i))``  with  ``|L(k,i)| ≤ M``

and the number of loads is ``Σ_i |D(T_σ(k,i)) \\ L(k, i-1)|``.

:func:`replay_schedule` executes this state machine for a given task order
and eviction policy, returning the exact load/eviction sequence — the
*analytic* evaluation path (no timing, no bus).  It is the reference
implementation the discrete-event simulator and all tests are checked
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.problem import TaskGraph


class InfeasibleScheduleError(Exception):
    """A task's inputs exceed the memory bound, or σ is malformed."""


@dataclass
class Schedule:
    """A task partition and per-GPU processing order (the σ of the paper).

    ``order[k]`` is the ordered list of task ids processed by GPU ``k``.
    """

    order: List[List[int]]

    @classmethod
    def single_gpu(cls, tasks: Sequence[int]) -> "Schedule":
        return cls(order=[list(tasks)])

    @property
    def n_gpus(self) -> int:
        return len(self.order)

    def nb(self, k: int) -> int:
        """``nb_k``: number of tasks on GPU ``k``."""
        return len(self.order[k])

    @property
    def max_load(self) -> int:
        """Objective 1: ``max_k nb_k``."""
        return max((len(o) for o in self.order), default=0)

    @property
    def all_tasks(self) -> List[int]:
        out: List[int] = []
        for o in self.order:
            out.extend(o)
        return out

    def gpu_of(self) -> Dict[int, int]:
        """Map task id -> GPU index."""
        return {t: k for k, o in enumerate(self.order) for t in o}

    def validate(self, graph: TaskGraph) -> None:
        """Every task of ``graph`` appears exactly once across all GPUs."""
        seen = self.all_tasks
        if len(seen) != graph.n_tasks or set(seen) != set(range(graph.n_tasks)):
            missing = set(range(graph.n_tasks)) - set(seen)
            dupes = len(seen) - len(set(seen))
            raise InfeasibleScheduleError(
                f"schedule covers {len(set(seen))}/{graph.n_tasks} tasks "
                f"({len(missing)} missing, {dupes} duplicated)"
            )

    def validate_partial(self, graph: TaskGraph) -> None:
        """Ids are valid and no task appears twice (subset schedules OK)."""
        seen = self.all_tasks
        if len(seen) != len(set(seen)):
            raise InfeasibleScheduleError("a task appears more than once")
        for t in seen:
            if t < 0 or t >= graph.n_tasks:
                raise InfeasibleScheduleError(f"unknown task id {t}")


class ReplayPolicy:
    """Offline eviction policy interface for :func:`replay_schedule`.

    A policy sees the per-GPU access stream and must pick a victim among
    evictable resident data.  Subclasses override :meth:`choose_victim`
    and any of the notification hooks.
    """

    name = "abstract"

    def reset(self) -> None:
        """Called once per GPU before its replay starts."""

    def on_load(self, data_id: int, step: int) -> None:
        """``data_id`` was just loaded before task index ``step``."""

    def on_access(self, data_id: int, step: int) -> None:
        """``data_id`` is used by the task at index ``step``."""

    def on_evict(self, data_id: int, step: int) -> None:
        """``data_id`` was evicted before task index ``step``."""

    def choose_victim(
        self,
        candidates: Set[int],
        step: int,
        future: Sequence[Tuple[int, ...]],
    ) -> int:
        """Pick one of ``candidates`` to evict.

        ``future`` holds the input tuples of tasks at indices ``step``,
        ``step+1``, ... on this GPU (the current task first), so Belady-like
        policies can look ahead.
        """
        raise NotImplementedError


class LruReplay(ReplayPolicy):
    """Least Recently Used: evict the candidate with the oldest access."""

    name = "lru"

    def __init__(self) -> None:
        self._stamp: Dict[int, int] = {}
        self._clock = 0

    def reset(self) -> None:
        self._stamp.clear()
        self._clock = 0

    def _touch(self, d: int) -> None:
        self._clock += 1
        self._stamp[d] = self._clock

    def on_load(self, data_id: int, step: int) -> None:
        self._touch(data_id)

    def on_access(self, data_id: int, step: int) -> None:
        self._touch(data_id)

    def on_evict(self, data_id: int, step: int) -> None:
        self._stamp.pop(data_id, None)

    def choose_victim(
        self,
        candidates: Set[int],
        step: int,
        future: Sequence[Tuple[int, ...]],
    ) -> int:
        return min(candidates, key=lambda d: (self._stamp.get(d, -1), d))


class FifoReplay(ReplayPolicy):
    """First-In First-Out: evict the candidate loaded the longest ago."""

    name = "fifo"

    def __init__(self) -> None:
        self._loaded_at: Dict[int, int] = {}
        self._clock = 0

    def reset(self) -> None:
        self._loaded_at.clear()
        self._clock = 0

    def on_load(self, data_id: int, step: int) -> None:
        self._clock += 1
        self._loaded_at[data_id] = self._clock

    def on_evict(self, data_id: int, step: int) -> None:
        self._loaded_at.pop(data_id, None)

    def choose_victim(
        self,
        candidates: Set[int],
        step: int,
        future: Sequence[Tuple[int, ...]],
    ) -> int:
        return min(candidates, key=lambda d: (self._loaded_at.get(d, -1), d))


class BeladyReplay(ReplayPolicy):
    """Belady/MIN: evict the candidate whose next use is furthest away.

    Optimal for a fixed σ (paper Section III); ties and never-used-again
    candidates are broken by smallest id for determinism.
    """

    name = "belady"

    def choose_victim(
        self,
        candidates: Set[int],
        step: int,
        future: Sequence[Tuple[int, ...]],
    ) -> int:
        best_d = -1
        best_dist = -1
        for d in sorted(candidates):
            dist = None
            for offset, inputs in enumerate(future):
                if d in inputs:
                    dist = offset
                    break
            if dist is None:
                return d  # never used again: perfect victim
            if dist > best_dist:
                best_dist, best_d = dist, d
        return best_d


_REPLAY_POLICIES = {
    "lru": LruReplay,
    "fifo": FifoReplay,
    "belady": BeladyReplay,
}


def make_replay_policy(policy: Union[str, ReplayPolicy]) -> ReplayPolicy:
    """Instantiate a replay policy from its name, or pass one through."""
    if isinstance(policy, ReplayPolicy):
        return policy
    try:
        return _REPLAY_POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown replay policy {policy!r}; expected one of "
            f"{sorted(_REPLAY_POLICIES)} or a ReplayPolicy instance"
        ) from None


@dataclass
class GpuReplay:
    """Per-GPU replay outcome."""

    loads: List[Tuple[int, int]] = field(default_factory=list)  # (step, data)
    evictions: List[Tuple[int, int]] = field(default_factory=list)
    live_sizes: List[int] = field(default_factory=list)  # |L(k, i)| per step
    bytes_loaded: float = 0.0

    @property
    def n_loads(self) -> int:
        return len(self.loads)

    def eviction_sets(self) -> List[List[int]]:
        """The ``V(k, i)`` sets, one list per step (may be empty)."""
        n_steps = len(self.live_sizes)
        out: List[List[int]] = [[] for _ in range(n_steps)]
        for step, d in self.evictions:
            out[step].append(d)
        return out


@dataclass
class ReplayResult:
    """Outcome of :func:`replay_schedule` over all GPUs."""

    gpus: List[GpuReplay]
    policy_name: str

    @property
    def total_loads(self) -> int:
        """Objective 2: ``Σ_k #Loads_k``."""
        return sum(g.n_loads for g in self.gpus)

    @property
    def total_bytes(self) -> float:
        return sum(g.bytes_loaded for g in self.gpus)

    def loads_on(self, k: int) -> int:
        return self.gpus[k].n_loads

    @property
    def max_live(self) -> int:
        return max((max(g.live_sizes) for g in self.gpus if g.live_sizes), default=0)


def replay_schedule(
    graph: TaskGraph,
    schedule: Schedule,
    capacity_items: Optional[int] = None,
    policy: Union[str, ReplayPolicy] = "lru",
    capacity_bytes: Optional[float] = None,
) -> ReplayResult:
    """Execute σ analytically and count loads and evictions exactly.

    Capacity is given either as ``capacity_items`` (the paper's ``M``:
    number of equal-size data) or ``capacity_bytes`` for heterogeneous
    sizes.  Exactly one must be provided, or neither for unlimited memory.

    Data are loaded as late as possible and evictions happen only when the
    memory is full, matching the paper's model.  Inputs of the current task
    are never chosen as victims (``V(k,i) ∩ D(T_σ(k,i)) = ∅``).

    The schedule may cover a subset of the graph's tasks (used to replay a
    single package or a brute-force partition leg); completeness is the
    caller's concern via :meth:`Schedule.validate`.
    """
    schedule.validate_partial(graph)
    if capacity_items is not None and capacity_bytes is not None:
        raise ValueError("give capacity_items or capacity_bytes, not both")

    if capacity_bytes is None:
        if capacity_items is None:
            capacity_bytes = float("inf")
        else:
            usz = graph.uniform_data_size()
            if usz is None:
                raise ValueError(
                    "capacity_items requires uniform data sizes; "
                    "use capacity_bytes instead"
                )
            capacity_bytes = capacity_items * usz

    pol = make_replay_policy(policy)
    sizes = [d.size for d in graph.data]
    result = ReplayResult(gpus=[], policy_name=pol.name)

    for k in range(schedule.n_gpus):
        order = schedule.order[k]
        future_inputs: List[Tuple[int, ...]] = [graph.inputs_of(t) for t in order]
        pol.reset()
        gpu = GpuReplay()
        resident: Set[int] = set()
        used = 0.0

        for step, task_id in enumerate(order):
            inputs = graph.inputs_of(task_id)
            need = sum(sizes[d] for d in inputs)
            if need > capacity_bytes:
                raise InfeasibleScheduleError(
                    f"task {task_id} needs {need:.0f}B > capacity "
                    f"{capacity_bytes:.0f}B on GPU {k}"
                )
            protected = set(inputs)
            for d in sorted(set(inputs) - resident):
                while used + sizes[d] > capacity_bytes:
                    candidates = resident - protected
                    if not candidates:
                        raise InfeasibleScheduleError(
                            f"GPU {k} step {step}: nothing evictable while "
                            f"loading data {d} for task {task_id}"
                        )
                    victim = pol.choose_victim(
                        candidates, step, future_inputs[step:]
                    )
                    if victim not in candidates:
                        raise InfeasibleScheduleError(
                            f"policy {pol.name} returned non-candidate {victim}"
                        )
                    resident.discard(victim)
                    used -= sizes[victim]
                    pol.on_evict(victim, step)
                    gpu.evictions.append((step, victim))
                resident.add(d)
                used += sizes[d]
                pol.on_load(d, step)
                gpu.loads.append((step, d))
                gpu.bytes_loaded += sizes[d]
            for d in inputs:
                pol.on_access(d, step)
            gpu.live_sizes.append(len(resident))

        result.gpus.append(gpu)
    return result


def verify_live_set_recursion(
    graph: TaskGraph,
    schedule: Schedule,
    result: ReplayResult,
    capacity_items: Optional[int] = None,
) -> None:
    """Re-derive ``L(k, i)`` from the paper's recursion and cross-check.

    Raises ``AssertionError`` if the replay's live-set sizes diverge from
    the recursion, or if the memory bound is violated.  Used by tests.
    """
    for k in range(schedule.n_gpus):
        order = schedule.order[k]
        ev_sets = result.gpus[k].eviction_sets()
        live: Set[int] = set()
        for i, task_id in enumerate(order):
            live -= set(ev_sets[i])
            live |= set(graph.inputs_of(task_id))
            assert len(live) == result.gpus[k].live_sizes[i], (
                f"GPU {k} step {i}: recursion says |L|={len(live)}, "
                f"replay recorded {result.gpus[k].live_sizes[i]}"
            )
            if capacity_items is not None:
                assert len(live) <= capacity_items, (
                    f"GPU {k} step {i}: |L|={len(live)} > M={capacity_items}"
                )
