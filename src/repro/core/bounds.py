"""Reference bounds drawn on the paper's plots.

* the GFlop/s roofline (``GFlop/s max`` horizontal line of Figs 3, 5-13),
* the PCI-bus transfer limit (black dotted curve of Figs 4 and 7): the most
  bytes that can cross the bus during the compute-optimal makespan,
* the compulsory-loads lower bound on Objective 2 (each distinct datum must
  be loaded at least once on every GPU that uses it).

These functions take plain scalars so that :mod:`repro.core` stays free of
platform dependencies; :mod:`repro.platform` provides the presets.
"""

from __future__ import annotations

from typing import Optional

from repro.core.problem import TaskGraph
from repro.core.schedule import Schedule


def roofline_gflops(n_gpus: int, gpu_gflops: float) -> float:
    """Aggregate peak throughput in GFlop/s (``GFlop/s max`` line)."""
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    return n_gpus * gpu_gflops


def compute_time_lower_bound(
    graph: TaskGraph, n_gpus: int, gpu_gflops: float
) -> float:
    """Seconds needed if every GPU computed at peak with zero stalls."""
    return graph.total_flops / (roofline_gflops(n_gpus, gpu_gflops) * 1e9)


def transfer_time_lower_bound(graph: TaskGraph, bus_bandwidth: float) -> float:
    """Seconds the shared bus needs for the compulsory transfers.

    Every distinct datum crosses the bus at least once (it starts in main
    memory), so the working set divided by the bus bandwidth (bytes/s)
    lower-bounds the makespan of any schedule.
    """
    if bus_bandwidth <= 0:
        raise ValueError("bus bandwidth must be positive")
    return graph.working_set_bytes / bus_bandwidth


def time_lower_bound(
    graph: TaskGraph, n_gpus: int, gpu_gflops: float, bus_bandwidth: float
) -> float:
    """Max of the compute and transfer lower bounds on the makespan."""
    return max(
        compute_time_lower_bound(graph, n_gpus, gpu_gflops),
        transfer_time_lower_bound(graph, bus_bandwidth),
    )


def pci_transfer_limit_bytes(
    graph: TaskGraph, n_gpus: int, gpu_gflops: float, bus_bandwidth: float
) -> float:
    """Paper Fig. 4's ``PCI bus limit`` curve, in bytes.

    A schedule transferring more than ``T_compute × bandwidth`` bytes
    necessarily spends longer on transfers than the optimal compute time,
    so it cannot reach the roofline.
    """
    return compute_time_lower_bound(graph, n_gpus, gpu_gflops) * bus_bandwidth


def compulsory_loads(
    graph: TaskGraph, schedule: Optional[Schedule] = None
) -> int:
    """Lower bound on Objective 2 (``Σ_k #Loads_k``).

    Without a schedule: every datum read by at least one task is loaded
    at least once somewhere.  With a task partition: each GPU must load
    every distinct datum its tasks read, which is tighter (the same
    datum counted once per GPU using it).
    """
    if schedule is None:
        return sum(1 for d in range(graph.n_data) if graph.degree(d) > 0)
    total = 0
    for order in schedule.order:
        seen = set()
        for t in order:
            seen.update(graph.inputs_of(t))
        total += len(seen)
    return total


def achieved_gflops(graph: TaskGraph, makespan_s: float) -> float:
    """Throughput of a run: total task flops divided by the makespan."""
    if makespan_s <= 0:
        raise ValueError("makespan must be positive")
    return graph.total_flops / makespan_s / 1e9


def perfect_balance_load(n_tasks: int, n_gpus: int) -> int:
    """Smallest achievable value of Objective 1 (``max_k nb_k``)."""
    return -(-n_tasks // n_gpus)
