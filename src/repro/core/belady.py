"""Belady's MIN rule (paper Section III, [Belady 1966]).

Once a task order σ is fixed, evicting the resident datum whose next use
is furthest in the future minimises the number of loads.  The paper uses
this both as the offline-optimal baseline for a fixed σ and as the
fallback branch of the LUF eviction policy (Algorithm 6, line 7).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.core.problem import TaskGraph
from repro.core.schedule import Schedule, replay_schedule


def next_use_distance(
    data_id: int, future: Sequence[Tuple[int, ...]]
) -> Optional[int]:
    """Steps until ``data_id`` is next used, or ``None`` if never again.

    ``future[0]`` is the current step's input tuple.
    """
    for offset, inputs in enumerate(future):
        if data_id in inputs:
            return offset
    return None


def belady_victim(
    candidates: Iterable[int], future: Sequence[Tuple[int, ...]]
) -> int:
    """The Belady victim among ``candidates`` given the upcoming accesses.

    A candidate never used again is always preferred; ties are broken by
    smallest data id so the choice is deterministic.
    """
    best_d = -1
    best_dist = -1
    for d in sorted(candidates):
        dist = next_use_distance(d, future)
        if dist is None:
            return d
        if dist > best_dist:
            best_dist, best_d = dist, d
    if best_d < 0:
        raise ValueError("belady_victim called with no candidates")
    return best_d


def belady_loads(
    graph: TaskGraph,
    schedule: Schedule,
    capacity_items: Optional[int] = None,
    capacity_bytes: Optional[float] = None,
) -> int:
    """Minimum number of loads achievable for the fixed schedule σ.

    This is the paper's Objective 2 evaluated with the optimal eviction
    scheme, obtained by replaying σ under Belady's rule.
    """
    res = replay_schedule(
        graph,
        schedule,
        capacity_items=capacity_items,
        policy="belady",
        capacity_bytes=capacity_bytes,
    )
    return res.total_loads


def policy_gap(
    graph: TaskGraph,
    schedule: Schedule,
    policy: str,
    capacity_items: Optional[int] = None,
) -> Tuple[int, int]:
    """(loads under ``policy``, loads under Belady) for the same σ.

    The first component is always ≥ the second; the gap quantifies how far
    an online eviction policy is from offline-optimal on this schedule.
    """
    got = replay_schedule(
        graph, schedule, capacity_items=capacity_items, policy=policy
    ).total_loads
    best = belady_loads(graph, schedule, capacity_items=capacity_items)
    return got, best
