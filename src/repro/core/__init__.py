"""Core problem model from the paper (Section III).

Bipartite task/data sharing graph, schedules with explicit eviction sets,
live-set computation, Belady's optimal offline eviction, lower bounds,
and a brute-force optimal solver used as a test oracle for tiny instances.
"""

from repro.core.problem import Data, Task, TaskGraph
from repro.core.schedule import (
    InfeasibleScheduleError,
    ReplayResult,
    Schedule,
    replay_schedule,
)
from repro.core.belady import belady_loads, belady_victim, next_use_distance
from repro.core.bounds import (
    compulsory_loads,
    pci_transfer_limit_bytes,
    roofline_gflops,
    time_lower_bound,
)
from repro.core.optimal import optimal_loads_single_gpu, optimal_schedule_multi_gpu

__all__ = [
    "Data",
    "Task",
    "TaskGraph",
    "Schedule",
    "ReplayResult",
    "InfeasibleScheduleError",
    "replay_schedule",
    "belady_loads",
    "belady_victim",
    "next_use_distance",
    "compulsory_loads",
    "roofline_gflops",
    "pci_transfer_limit_bytes",
    "time_lower_bound",
    "optimal_loads_single_gpu",
    "optimal_schedule_multi_gpu",
]
