"""Brute-force optimal schedules for tiny instances.

The Bi-Obj-Multi-GPU-Task-Scheduling problem is NP-complete (paper
Theorem 1), so exhaustive search is only feasible for a handful of tasks.
These solvers exist as *test oracles*: heuristics are validated against
them on small instances, and the single-GPU solver also demonstrates that
Belady's rule turns the eviction sub-problem into pure ordering.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import List, Optional, Tuple

from repro.core.belady import belady_loads
from repro.core.problem import TaskGraph
from repro.core.schedule import Schedule

#: Safety cap: 8! = 40 320 orders is the most we allow per GPU.
MAX_BRUTE_FORCE_TASKS = 8


def optimal_loads_single_gpu(
    graph: TaskGraph, capacity_items: int
) -> Tuple[int, Schedule]:
    """Exhaustive minimum of Objective 2 on one GPU.

    Tries every task permutation with Belady eviction (optimal for a fixed
    order, per the paper) and returns ``(min_loads, best_schedule)``.
    """
    m = graph.n_tasks
    if m > MAX_BRUTE_FORCE_TASKS:
        raise ValueError(
            f"{m} tasks is too many for brute force "
            f"(limit {MAX_BRUTE_FORCE_TASKS})"
        )
    best_loads: Optional[int] = None
    best_order: Tuple[int, ...] = tuple(range(m))
    for order in permutations(range(m)):
        sched = Schedule.single_gpu(list(order))
        loads = belady_loads(graph, sched, capacity_items=capacity_items)
        if best_loads is None or loads < best_loads:
            best_loads, best_order = loads, order
    assert best_loads is not None
    return best_loads, Schedule.single_gpu(list(best_order))


def optimal_schedule_multi_gpu(
    graph: TaskGraph,
    n_gpus: int,
    capacity_items: int,
    max_load: Optional[int] = None,
) -> Tuple[int, Schedule]:
    """Exhaustive minimum of Objective 2 subject to ``max_k nb_k ≤ W``.

    This answers the decision problem of Definition 1 constructively for
    tiny instances: enumerate every task-to-GPU assignment, then every
    per-GPU order, evaluating loads with Belady eviction.  ``max_load``
    defaults to perfectly balanced (``ceil(m / K)``).
    """
    m = graph.n_tasks
    if m > 6 or n_gpus > 3:
        raise ValueError("multi-GPU brute force limited to m<=6, K<=3")
    if max_load is None:
        max_load = -(-m // n_gpus)

    best_loads: Optional[int] = None
    best: Optional[Schedule] = None
    for assign in product(range(n_gpus), repeat=m):
        groups: List[List[int]] = [[] for _ in range(n_gpus)]
        for t, k in enumerate(assign):
            groups[k].append(t)
        if max(len(g) for g in groups) > max_load:
            continue
        # Minimize loads independently per GPU (loads are additive).
        total = 0
        orders: List[List[int]] = []
        for g in groups:
            if not g:
                orders.append([])
                continue
            best_g: Optional[int] = None
            best_perm: Tuple[int, ...] = tuple(g)
            for perm in permutations(g):
                loads = belady_loads(
                    graph,
                    Schedule.single_gpu(list(perm)),
                    capacity_items=capacity_items,
                )
                if best_g is None or loads < best_g:
                    best_g, best_perm = loads, perm
            assert best_g is not None
            total += best_g
            orders.append(list(best_perm))
        if best_loads is None or total < best_loads:
            best_loads = total
            best = Schedule(order=orders)
    assert best_loads is not None and best is not None
    return best_loads, best
