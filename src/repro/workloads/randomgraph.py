"""Random bipartite instances for stress and property-based tests."""

from __future__ import annotations

import random
from repro.core.problem import TaskGraph


def random_bipartite(
    n_tasks: int,
    n_data: int,
    arity: int = 2,
    data_size: float = 1.0,
    task_flops: float = 1.0,
    seed: int = 0,
    heterogeneous_sizes: bool = False,
) -> TaskGraph:
    """``n_tasks`` tasks each reading ``arity`` distinct random data.

    Every datum is used at least once when ``n_data ≤ n_tasks × arity``
    is not guaranteed — unused data are permitted (they simply never
    transfer).  ``heterogeneous_sizes`` draws sizes in [0.5, 2.0]×size to
    exercise the byte-capacity code paths.
    """
    if n_tasks < 1 or n_data < 1:
        raise ValueError("need at least one task and one datum")
    if arity > n_data:
        raise ValueError("arity cannot exceed the number of data")
    rng = random.Random(seed)
    g = TaskGraph(name=f"random(m={n_tasks}, n={n_data}, arity={arity})")
    for d in range(n_data):
        size = (
            data_size * rng.uniform(0.5, 2.0)
            if heterogeneous_sizes
            else data_size
        )
        g.add_data(size, name=f"D{d}")
    for t in range(n_tasks):
        inputs = rng.sample(range(n_data), arity)
        g.add_task(inputs, flops=task_flops, name=f"T{t}")
    return g
