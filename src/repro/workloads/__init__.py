"""The paper's application scenarios as task-graph generators.

* :func:`matmul2d` — 2D-blocked matrix product: task ``C[i,j]`` reads
  block-row ``A[i]`` and block-column ``B[j]`` (natural row-major or
  randomized submission order);
* :func:`matmul3d` — 3D-blocked product: task ``(i,j,k)`` reads
  ``A[i,k]``, ``B[k,j]`` and the partial tile ``C[i,j]`` (3 inputs);
* :func:`cholesky_tasks` — the tasks of a tiled Cholesky factorisation
  (POTRF/TRSM/SYRK/GEMM) with dependencies stripped;
* :func:`sparse_matmul2d` — the 2D product with 98 % of tasks removed
  (high communication-to-computation ratio);
* :func:`random_bipartite` — random instances for stress/property tests.
"""

from repro.workloads.matmul2d import matmul2d
from repro.workloads.matmul3d import matmul3d
from repro.workloads.cholesky import cholesky_tasks
from repro.workloads.sparse import sparse_matmul2d
from repro.workloads.randomgraph import random_bipartite

__all__ = [
    "matmul2d",
    "matmul3d",
    "cholesky_tasks",
    "sparse_matmul2d",
    "random_bipartite",
]
