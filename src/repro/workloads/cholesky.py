"""Tasks of a tiled Cholesky factorisation, dependencies removed (§V-F).

The right-looking tiled Cholesky of an ``n × n`` tile matrix submits, for
each step ``k``:

* ``POTRF(k)`` — factorise the diagonal tile, reads ``A[k,k]``;
* ``TRSM(i,k)`` for ``i > k`` — reads ``A[i,k]`` and ``A[k,k]``;
* ``SYRK(i,k)`` for ``i > k`` — reads ``A[i,i]`` and ``A[i,k]``;
* ``GEMM(i,j,k)`` for ``i > j > k`` — reads ``A[i,j]``, ``A[i,k]``,
  ``A[j,k]`` (three inputs).

Per the paper, dependencies between these tasks are dropped so the set is
independent; what remains is a large (``Θ(n³)``), *irregular* sharing
pattern with heterogeneous task durations — the scenario that stresses
DARTS's scheduling time and motivates the OPTI variant.

Flop counts use the classic tile-kernel costs for tile side ``b``:
``b³/3`` (POTRF), ``b³`` (TRSM and SYRK), ``2 b³`` (GEMM).
"""

from __future__ import annotations

from repro.core.problem import TaskGraph
from repro.platform.calibration import CHOLESKY_TILE_BYTES, TILE_N


def cholesky_tasks(
    n: int,
    data_size: float = CHOLESKY_TILE_BYTES,
    tile_side: int = TILE_N,
) -> TaskGraph:
    """Build the independent-task Cholesky set on an ``n × n`` tile grid.

    Data are the ``n(n+1)/2`` lower-triangle tiles; the task count is
    ``n`` POTRF + ``n(n-1)/2`` TRSM + ``n(n-1)/2`` SYRK +
    ``n(n-1)(n-2)/6`` GEMM.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    b3 = float(tile_side) ** 3
    g = TaskGraph(name=f"cholesky(n={n})")
    tile = {}
    for i in range(n):
        for j in range(i + 1):
            tile[(i, j)] = g.add_data(data_size, name=f"A[{i},{j}]")

    for k in range(n):
        g.add_task([tile[(k, k)]], flops=b3 / 3.0, name=f"POTRF({k})")
        for i in range(k + 1, n):
            g.add_task(
                [tile[(i, k)], tile[(k, k)]], flops=b3, name=f"TRSM({i},{k})"
            )
        for i in range(k + 1, n):
            g.add_task(
                [tile[(i, i)], tile[(i, k)]], flops=b3, name=f"SYRK({i},{k})"
            )
            for j in range(k + 1, i):
                g.add_task(
                    [tile[(i, j)], tile[(i, k)], tile[(j, k)]],
                    flops=2.0 * b3,
                    name=f"GEMM({i},{j},{k})",
                )
    return g
