"""3D-blocked matrix multiplication (paper §V-E).

All three matrices are tiled: task ``(i,j,k)`` computes the block product
``A[i,k] × B[k,j]`` contributing to ``C[i,j]``.  Following the paper we
drop the final summation (dependencies) and keep the ``n³``
computationally intensive product tasks.  Each task reads three data —
``A[i,k]``, ``B[k,j]`` and the partial tile ``C[i,j]`` it accumulates
into — which is the ≥ 3-inputs regime motivating the DARTS "3inputs"
variant: at start-up *no* single data load can free a task.

``include_c=False`` gives the 2-inputs interpretation (pure products).
"""

from __future__ import annotations

from repro.core.problem import TaskGraph
from repro.platform.calibration import DATA_SIZE_BYTES, TASK_FLOPS_SQUARE


def matmul3d(
    n: int,
    data_size: float = DATA_SIZE_BYTES,
    task_flops: float = TASK_FLOPS_SQUARE,
    include_c: bool = True,
) -> TaskGraph:
    """Build the ``n³``-task 3D matmul graph (``3n²`` or ``2n²`` data)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    g = TaskGraph(name=f"matmul3d(n={n})")
    a = [
        [g.add_data(data_size, name=f"A[{i},{k}]") for k in range(n)]
        for i in range(n)
    ]
    b = [
        [g.add_data(data_size, name=f"B[{k},{j}]") for j in range(n)]
        for k in range(n)
    ]
    c = (
        [
            [g.add_data(data_size, name=f"C[{i},{j}]") for j in range(n)]
            for i in range(n)
        ]
        if include_c
        else None
    )
    for i in range(n):
        for j in range(n):
            for k in range(n):
                inputs = [a[i][k], b[k][j]]
                if c is not None:
                    inputs.append(c[i][j])
                g.add_task(inputs, flops=task_flops, name=f"P[{i},{j},{k}]")
    return g
