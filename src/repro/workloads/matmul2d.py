"""2D-blocked matrix multiplication (the paper's main scenario).

``C = A × B`` is decomposed into ``n × n`` independent tasks; task
``C[i,j]`` multiplies block-row ``A[i]`` with block-column ``B[j]``.
Input data are the ``n`` block-rows of A and ``n`` block-columns of B
(``2n`` data total); tasks are submitted row by row (row-major), which
is the natural order StarPU sees.  The randomized variant (paper §V-D)
shuffles the submission order to break the locality that EAGER and
DMDAR silently rely on.
"""

from __future__ import annotations

import random
from repro.core.problem import TaskGraph
from repro.platform.calibration import (
    BYTES_PER_ELEMENT,
    DATA_SIZE_BYTES,
    TASK_FLOPS_GEMM,
    TILE_N,
)

#: one 960² C tile in bytes (the output of a 2D matmul task)
C_TILE_BYTES: float = float(TILE_N * TILE_N * BYTES_PER_ELEMENT)


def matmul2d(
    n: int,
    data_size: float = DATA_SIZE_BYTES,
    task_flops: float = TASK_FLOPS_GEMM,
    randomized: bool = False,
    seed: int = 0,
    with_outputs: bool = False,
    output_size: float = C_TILE_BYTES,
) -> TaskGraph:
    """Build the ``n × n`` 2D matmul task graph.

    With the default calibration the working set is ``2n`` blocks of
    ≈ 14.75 MB, matching the paper's 140 MB (n=5) … 8 400 MB (n=300)
    x-axis.

    ``with_outputs=True`` models the C tiles explicitly (the paper's
    output extension): each task produces its 960² result tile
    (≈ 3.7 MB), which occupies GPU memory during execution and is
    written back to the host afterwards.  The paper's base model drops
    outputs because they are much smaller than the inputs and overlap
    with input traffic — a claim the output extension lets you verify.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    g = TaskGraph(name=f"matmul2d(n={n}{', randomized' if randomized else ''})")
    rows = [g.add_data(data_size, name=f"A[{i}]") for i in range(n)]
    cols = [g.add_data(data_size, name=f"B[{j}]") for j in range(n)]
    coords = [(i, j) for i in range(n) for j in range(n)]
    if randomized:
        random.Random(seed).shuffle(coords)
    for i, j in coords:
        outputs = (
            [g.add_data(output_size, name=f"C[{i},{j}]")]
            if with_outputs
            else ()
        )
        g.add_task(
            [rows[i], cols[j]],
            flops=task_flops,
            name=f"C[{i},{j}]",
            outputs=outputs,
        )
    return g
