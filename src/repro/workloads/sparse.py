"""Sparse 2D matrix multiplication (paper §V-G).

The 2D-blocked product with 98 % of the tasks removed at random: far
fewer tasks share each datum, so the communication-to-computation ratio
is much higher — typical of sparse computations.  Block-rows/columns
that end up with no surviving task are dropped from the graph so the
working set reflects data actually used.
"""

from __future__ import annotations

import random
from repro.core.problem import TaskGraph
from repro.platform.calibration import DATA_SIZE_BYTES, TASK_FLOPS_GEMM


def sparse_matmul2d(
    n: int,
    density: float = 0.02,
    data_size: float = DATA_SIZE_BYTES,
    task_flops: float = TASK_FLOPS_GEMM,
    seed: int = 0,
) -> TaskGraph:
    """Keep each of the ``n²`` tasks with probability ``density``.

    At least one task always survives (the draw is retried with the next
    seed on the — tiny-instance — event that all tasks vanish).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    for attempt in range(100):
        rng = random.Random(f"{seed}/{attempt}")
        kept = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if rng.random() < density
        ]
        if kept:
            break
    else:  # pragma: no cover - density > 0 makes this vanishingly unlikely
        kept = [(0, 0)]

    used_rows = sorted({i for i, _ in kept})
    used_cols = sorted({j for _, j in kept})
    g = TaskGraph(name=f"sparse2d(n={n}, density={density})")
    row_data = {i: g.add_data(data_size, name=f"A[{i}]") for i in used_rows}
    col_data = {j: g.add_data(data_size, name=f"B[{j}]") for j in used_cols}
    for i, j in kept:  # row-major submission, like the dense case
        g.add_task(
            [row_data[i], col_data[j]], flops=task_flops, name=f"C[{i},{j}]"
        )
    return g
