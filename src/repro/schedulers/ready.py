"""The Ready reordering heuristic (paper Algorithm 2).

Given a list of tasks already allocated to a GPU, repeatedly start the
task *requiring the fewest data transfers* given what the GPU memory
currently holds (resident or already being fetched).  Shared by DMDAR,
hMETIS+R and mHFP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.runtime import RuntimeView


class ReadyLists:
    """Per-GPU task lists with Ready-order popping.

    ``last_scanned`` exposes how many queue entries the latest
    :meth:`pop_ready` examined, so schedulers can charge decision
    operations to the runtime's virtual scheduler clock.
    """

    def __init__(self, n_gpus: int) -> None:
        self.lists: List[List[int]] = [[] for _ in range(n_gpus)]
        self.last_scanned = 0

    def assign(self, gpu: int, tasks) -> None:
        self.lists[gpu].extend(tasks)

    def remaining(self, gpu: int) -> List[int]:
        return self.lists[gpu]

    def total_remaining(self) -> int:
        return sum(len(l) for l in self.lists)

    def pop_ready(self, gpu: int, view: "RuntimeView") -> Optional[int]:
        """Remove and return the task with the fewest missing bytes.

        Ties go to list position, preserving the allocation order the
        partitioning/packing phase chose.  Tasks whose dependencies have
        not completed yet are skipped; returns ``None`` when no task in
        the list is released (the list may still be non-empty).
        """
        lst = self.lists[gpu]
        self.last_scanned = 0
        best_pos = -1
        best_missing = float("inf")
        for pos, task in enumerate(lst):
            self.last_scanned += 1
            if not view.is_released(task):
                continue
            missing = view.missing_bytes(gpu, task)
            if missing < best_missing:
                best_pos, best_missing = pos, missing
                if missing == 0:
                    break
        if best_pos < 0:
            return None
        return lst.pop(best_pos)

    def pop_fifo(self, gpu: int, view: Optional["RuntimeView"] = None) -> Optional[int]:
        """Head pop (DMDA without Ready): first *released* task."""
        lst = self.lists[gpu]
        if view is None or not view.has_dependencies:
            return lst.pop(0) if lst else None
        for pos, task in enumerate(lst):
            if view.is_released(task):
                return lst.pop(pos)
        return None

    def steal_half(self, thief: int) -> bool:
        """Task stealing used by hMETIS+R and mHFP (paper §IV-B).

        The idle GPU takes half of the remaining tasks of the most loaded
        GPU, from the tail of its list (the paper observed more slack for
        communication near the end of a package).  Returns True if any
        task moved.
        """
        victims = [
            (len(lst), k)
            for k, lst in enumerate(self.lists)
            if k != thief and lst
        ]
        if not victims:
            return False
        load, victim = max(victims, key=lambda lv: (lv[0], -lv[1]))
        take = max(1, load // 2)
        moved = self.lists[victim][-take:]
        del self.lists[victim][-take:]
        self.lists[thief].extend(moved)
        return True
