"""The Ready reordering heuristic (paper Algorithm 2).

Given a list of tasks already allocated to a GPU, repeatedly start the
task *requiring the fewest data transfers* given what the GPU memory
currently holds (resident or already being fetched).  Shared by DMDAR,
hMETIS+R and mHFP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.runtime import RuntimeView


class ReadyLists:
    """Per-GPU task lists with Ready-order popping.

    ``last_scanned`` exposes how many queue entries the latest
    :meth:`pop_ready` examined, so schedulers can charge decision
    operations to the runtime's virtual scheduler clock.

    :meth:`enable_incremental` switches :meth:`pop_ready` from a fresh
    ``missing_bytes`` sum per (scan, task) to a per-GPU cached array
    updated on the owner scheduler's ``on_fetch_issued`` /
    ``on_data_evicted`` hooks.  The cache is only enabled when the
    values are provably bit-equal to the fresh sums: no output data
    (ALLOCATED slots enter the held-set without an event) and
    integer-valued sizes (float adds/subtracts of integers far below
    2**53 are exact in any order).  ``check_incremental`` asserts
    equality with a recomputation (property tests).
    """

    def __init__(self, n_gpus: int) -> None:
        self.lists: List[List[int]] = [[] for _ in range(n_gpus)]
        self.last_scanned = 0
        #: per-GPU missing-bytes per task; None → fresh sums
        self._mb: Optional[List[List[float]]] = None
        self._graph = None
        self._sizes: List[float] = []
        #: GPUs removed from the device set by :meth:`drop_gpu`
        self._dead: Set[int] = set()

    def enable_incremental(self, view: "RuntimeView") -> bool:
        """Build the missing-bytes cache; False when ineligible."""
        graph = view.graph
        if graph.has_outputs:
            return False
        sizes = [d.size for d in graph.data]
        if any(s != int(s) for s in sizes):
            return False  # exactness not guaranteed for fractional sizes
        self._graph = graph
        self._sizes = sizes
        self._mb = []
        for g in range(len(self.lists)):
            held = view.held(g)
            self._mb.append(
                [
                    sum(sizes[d] for d in graph.inputs_of(t) if d not in held)
                    for t in range(graph.n_tasks)
                ]
            )
        return True

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        if self._mb is None:
            return
        mb = self._mb[gpu]
        sz = self._sizes[data_id]
        for t in self._graph.users_of(data_id):
            mb[t] -= sz

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        if self._mb is None:
            return
        mb = self._mb[gpu]
        sz = self._sizes[data_id]
        for t in self._graph.users_of(data_id):
            mb[t] += sz

    def drop_gpu(self, gpu: int, requeued: Iterable[int]) -> None:
        """Remove ``gpu`` from the device set, redistributing its tasks.

        ``requeued`` (the tasks the runtime pulled back from the dead
        GPU's buffer) plus whatever was still allocated to it are handed
        to the surviving lists, each orphan going to the currently
        shortest list (ties to the lowest GPU index — deterministic).
        The dead GPU's list is left empty so ``steal_half`` never picks
        it as a victim and ``pop_*`` never returns work for it.
        """
        self._dead.add(gpu)
        orphans = list(requeued) + self.lists[gpu]
        self.lists[gpu] = []
        alive = [
            g for g in range(len(self.lists)) if g not in self._dead
        ]
        if not alive:
            raise RuntimeError("drop_gpu removed the last surviving GPU")
        for task in orphans:
            target = min(alive, key=lambda g: (len(self.lists[g]), g))
            self.lists[target].append(task)

    def check_incremental(self, view: "RuntimeView") -> None:
        """Assert the cache equals fresh ``missing_bytes`` (tests)."""
        if self._mb is None:
            return
        for g in range(len(self.lists)):
            if g in self._dead:
                continue  # wiped memory makes the cached rows stale
            for t in range(self._graph.n_tasks):
                fresh = view.missing_bytes(g, t)
                assert self._mb[g][t] == fresh, (
                    f"gpu{g} task{t}: cached {self._mb[g][t]} != {fresh}"
                )

    def assign(self, gpu: int, tasks) -> None:
        self.lists[gpu].extend(tasks)

    def remaining(self, gpu: int) -> List[int]:
        return self.lists[gpu]

    def total_remaining(self) -> int:
        return sum(len(l) for l in self.lists)

    def pop_ready(self, gpu: int, view: "RuntimeView") -> Optional[int]:
        """Remove and return the task with the fewest missing bytes.

        Ties go to list position, preserving the allocation order the
        partitioning/packing phase chose.  Tasks whose dependencies have
        not completed yet are skipped; returns ``None`` when no task in
        the list is released (the list may still be non-empty).
        """
        lst = self.lists[gpu]
        self.last_scanned = 0
        best_pos = -1
        best_missing = float("inf")
        mb = self._mb[gpu] if self._mb is not None else None
        for pos, task in enumerate(lst):
            self.last_scanned += 1
            if not view.is_released(task):
                continue
            missing = mb[task] if mb is not None else view.missing_bytes(gpu, task)
            if missing < best_missing:
                best_pos, best_missing = pos, missing
                if missing == 0:
                    break
        if best_pos < 0:
            return None
        return lst.pop(best_pos)

    def pop_fifo(self, gpu: int, view: Optional["RuntimeView"] = None) -> Optional[int]:
        """Head pop (DMDA without Ready): first *released* task."""
        lst = self.lists[gpu]
        if view is None or not view.has_dependencies:
            return lst.pop(0) if lst else None
        for pos, task in enumerate(lst):
            if view.is_released(task):
                return lst.pop(pos)
        return None

    def steal_half(self, thief: int) -> bool:
        """Task stealing used by hMETIS+R and mHFP (paper §IV-B).

        The idle GPU takes half of the remaining tasks of the most loaded
        GPU, from the tail of its list (the paper observed more slack for
        communication near the end of a package).  Returns True if any
        task moved.
        """
        victims = [
            (len(lst), k)
            for k, lst in enumerate(self.lists)
            if k != thief and lst
        ]
        if not victims:
            return False
        load, victim = max(victims, key=lambda lv: (lv[0], -lv[1]))
        take = max(1, load // 2)
        moved = self.lists[victim][-take:]
        del self.lists[victim][-take:]
        self.lists[thief].extend(moved)
        return True
