"""All scheduling strategies evaluated in the paper, plus test helpers.

* :class:`Eager` — baseline shared queue in submission order;
* :class:`Dmda` / :class:`Dmdar` — StarPU's Deque Model Data Aware
  scheduler, without/with the Ready reordering (Algorithms 1–2);
* :class:`HmetisR` — hypergraph partitioning + Ready + stealing
  (Algorithm 3), on our from-scratch hMETIS substitute;
* :class:`Mhfp` — multi-GPU Hierarchical Fair Packing (Algorithm 4);
* :class:`Darts` — Data-Aware Reactive Task Scheduling (Algorithm 5)
  with the LUF eviction policy (Algorithm 6) and the 3inputs / OPTI /
  threshold variants;
* :class:`FixedSchedule` — replay a precomputed :class:`repro.core.Schedule`
  through the simulator (used by tests and ablations).

:func:`make_scheduler` builds any of them from the names used in the
paper's plots (``"eager"``, ``"dmdar"``, ``"hmetis+r"``, ``"mhfp"``,
``"darts"``, ``"darts+luf"``, ``"darts+luf+3inputs"``, ...).
"""

from repro.schedulers.base import Scheduler
from repro.schedulers.eager import Eager
from repro.schedulers.fixed import FixedSchedule
from repro.schedulers.dmda import Dmda, Dmdar
from repro.schedulers.hfp import Hfp, Mhfp, hfp_pack
from repro.schedulers.partition import HmetisR
from repro.schedulers.darts import Darts
from repro.schedulers.registry import SCHEDULER_NAMES, eviction_for, make_scheduler

__all__ = [
    "Scheduler",
    "Eager",
    "FixedSchedule",
    "Dmda",
    "Dmdar",
    "Hfp",
    "Mhfp",
    "hfp_pack",
    "HmetisR",
    "Darts",
    "make_scheduler",
    "eviction_for",
    "SCHEDULER_NAMES",
]
