"""hMETIS+R — hypergraph partitioning + Ready + stealing (Algorithm 3).

The static phase builds a hyperedge per datum over its reader tasks and
partitions the tasks into K balanced parts with minimal shared data
(our from-scratch multilevel partitioner standing in for hMETIS, same
UBfactor/Nruns knobs).  At runtime each GPU pops from its own part with
Ready reordering; an idle GPU steals half of the most loaded GPU's
remaining tasks from the tail.

The partitioning wall-clock time is charged to ``scheduling_time``,
reproducing the paper's pair of curves ("hMETIS+R" vs "hMETIS+R no
part. time").
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.partitioning.interface import PartitionResult, partition_tasks
from repro.schedulers.base import Scheduler
from repro.schedulers.ready import ReadyLists


class HmetisR(Scheduler):
    """Algorithm 3: hypergraph partition + stealing + Ready."""

    name = "hMETIS+R"

    def __init__(
        self,
        ubfactor: float = 1.0,
        nruns: int = 10,
        use_ready: bool = True,
        use_stealing: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.ubfactor = ubfactor
        self.nruns = nruns
        self.use_ready = use_ready
        self.use_stealing = use_stealing
        self.seed = seed
        self.partition: Optional[PartitionResult] = None

    def prepare(self, view) -> None:
        super().prepare(view)
        self.partition = partition_tasks(
            view.graph,
            view.n_gpus,
            ubfactor=self.ubfactor,
            nruns=self.nruns,
            rng=random.Random(self.seed),
        )
        self._lists = ReadyLists(view.n_gpus)
        for k, part in enumerate(self.partition.parts):
            self._lists.assign(k, part)
        if self.use_ready:
            self._lists.enable_incremental(view)

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        self._lists.on_fetch_issued(gpu, data_id)

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        self._lists.on_data_evicted(gpu, data_id)

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        self._lists.drop_gpu(gpu, requeued)

    def next_task(self, gpu: int) -> Optional[int]:
        while True:
            if self.use_ready:
                task = self._lists.pop_ready(gpu, self.view)
                self.charge_ops(self._lists.last_scanned)
            else:
                task = self._lists.pop_fifo(gpu, self.view)
                self.charge_ops(1)
            if task is not None:
                return task
            if self._lists.remaining(gpu):
                return None  # blocked on dependencies, not out of work
            if not (self.use_stealing and self._lists.steal_half(gpu)):
                return None

    def remaining_order(self, gpu: int) -> Sequence[int]:
        return tuple(self._lists.remaining(gpu))
