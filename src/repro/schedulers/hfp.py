"""Hierarchical Fair Packing and its multi-GPU adaptation (Algorithm 4).

HFP (prior work [14] of the paper) greedily merges task *packages* that
share the most input data, preferring small packages (fairness), as long
as the merged package's input footprint fits in GPU memory.  A second
phase keeps merging by affinity, ignoring the memory bound, to chain
packages with high data reuse one after the other.  Task order inside a
package is never reshuffled by a merge (lists are concatenated), which
preserves intra-package locality.

mHFP stops the second phase at K packages (one per GPU), balances package
loads by moving tasks from the tail of the heaviest package to the
lightest (the paper notes more communication slack near a package's end),
and at runtime adds Ready reordering and task stealing.

The packing is deliberately *expensive* — a point the paper makes: mHFP's
scheduling time grows quickly with the task count and dominates its
benefit (Figs 3, 5).  Its wall-clock cost here is measured and charged to
``RunResult.scheduling_time``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.problem import TaskGraph
from repro.schedulers.base import Scheduler
from repro.schedulers.ready import ReadyLists


class _Packages:
    """Mergeable task packages with shared-input-weight adjacency.

    The adjacency ``nbr[pid][q]`` (bytes of input data shared between
    packages ``pid`` and ``q``) is maintained *incrementally* on merge
    instead of recomputed from ``pkgs_of`` per push round: absorbing
    ``b`` into ``a`` detaches ``b`` everywhere and, for each datum new
    to ``a``'s footprint, adds its size to the weights with every other
    package holding it.  With integer-valued sizes (every shipped
    workload) the running float sums are exact, hence bit-equal to a
    fresh recomputation in any order.
    """

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        sizes = [d.size for d in graph.data]
        n = graph.n_tasks
        #: merged-away packages hold None
        self.tasks: List[Optional[List[int]]] = []
        self.footprint: List[Set[int]] = []
        self.bytes: List[float] = []
        self.load: List[float] = []
        self.version: List[int] = [0] * n
        # datum -> set of active package ids whose footprint holds it
        self.pkgs_of: List[Set[int]] = [set() for _ in range(graph.n_data)]
        self.sizes = sizes
        self.n_active = n
        #: task count per package (len of tasks, without the Optional)
        self.ntasks: List[int] = [1] * n
        for t in graph.tasks:
            pid = t.id
            self.tasks.append([t.id])
            fp = set(t.inputs)
            self.footprint.append(fp)
            self.bytes.append(sum(sizes[d] for d in fp))
            self.load.append(t.flops)
            for d in fp:
                self.pkgs_of[d].add(pid)
        # shared-weight adjacency, same accumulation order per package
        # as a fresh shared_weights() scan (footprint-set iteration)
        self.nbr: List[Dict[int, float]] = []
        for pid in range(n):
            w: Dict[int, float] = {}
            for d in self.footprint[pid]:
                sz = sizes[d]
                for q in self.pkgs_of[d]:
                    if q != pid:
                        w[q] = w.get(q, 0.0) + sz
            self.nbr.append(w)

    @property
    def count(self) -> int:
        return self.n_active

    def active_ids(self) -> List[int]:
        return [pid for pid, t in enumerate(self.tasks) if t is not None]

    def shared_weights(self, pid: int) -> Dict[int, float]:
        """Bytes of input data shared between ``pid`` and each neighbour."""
        return dict(self.nbr[pid])

    def union_bytes(self, a: int, b: int, shared: float) -> float:
        return self.bytes[a] + self.bytes[b] - shared

    def merge(self, a: int, b: int) -> int:
        """Absorb package ``b`` into ``a`` (list concatenation)."""
        tasks_a = self.tasks[a]
        tasks_b = self.tasks[b]
        assert tasks_a is not None and tasks_b is not None
        tasks_a.extend(tasks_b)
        nbr = self.nbr
        # detach b from the adjacency
        nbr[a].pop(b, None)
        for q in nbr[b]:
            if q != a:
                nbr[q].pop(b, None)
        fp_a = self.footprint[a]
        nbr_a = nbr[a]
        for d in self.footprint[b]:
            self.pkgs_of[d].discard(b)
            if d not in fp_a:
                fp_a.add(d)
                sz = self.sizes[d]
                self.bytes[a] += sz
                for q in self.pkgs_of[d]:
                    if q != a:
                        nbr_a[q] = nbr_a.get(q, 0.0) + sz
                        nbr_q = nbr[q]
                        nbr_q[a] = nbr_q.get(a, 0.0) + sz
                self.pkgs_of[d].add(a)
        self.load[a] += self.load[b]
        self.ntasks[a] += self.ntasks[b]
        self.version[a] += 1
        self.tasks[b] = None
        self.footprint[b] = set()
        nbr[b] = {}
        self.n_active -= 1
        return a


def _push_pairs(heap, pk: _Packages, pid: int) -> None:
    """Push fresh heap entries for ``pid`` against all its neighbours."""
    version = pk.version
    ntasks = pk.ntasks
    push = heapq.heappush
    nt_pid = ntasks[pid]
    v_pid = version[pid]
    for q, w in pk.nbr[pid].items():
        if pid < q:
            push(heap, (-w, nt_pid + ntasks[q], pid, q, v_pid, version[q]))
        else:
            push(heap, (-w, nt_pid + ntasks[q], q, pid, version[q], v_pid))


def _merge_round(
    pk: _Packages,
    memory_bound: Optional[float],
    stop_at: int,
) -> None:
    """Greedy best-pair merging until the heap dries up or ``stop_at``.

    ``memory_bound`` restricts merges to packages whose combined input
    footprint fits (phase 1); ``None`` lifts the restriction (phase 2).
    """
    heap: List[Tuple[float, int, int, int, int, int]] = []
    for pid in pk.active_ids():
        _push_pairs(heap, pk, pid)
    # Stale entries (merged-away package or outdated version) are
    # skipped on pop; when they dominate the heap, filter them out in
    # one pass and re-heapify.  Live entries keep their exact keys, so
    # the pop order — and hence every merge decision — is unchanged
    # (a stale ``w <= 0`` pop breaks the loop just like the live or
    # stale ``w <= 0`` entry that follows it would).
    compact_at = max(4096, 2 * len(heap))
    while heap and pk.n_active > stop_at:
        neg_w, _, a, b, va, vb = heapq.heappop(heap)
        w = -neg_w
        if w <= 0:
            break
        if pk.tasks[a] is None or pk.tasks[b] is None:
            continue
        if pk.version[a] != va or pk.version[b] != vb:
            continue  # stale entry; fresh ones were pushed at merge time
        if memory_bound is not None and pk.union_bytes(a, b, w) > memory_bound:
            continue
        merged = pk.merge(a, b)
        _push_pairs(heap, pk, merged)
        if len(heap) > compact_at:
            tasks = pk.tasks
            version = pk.version
            heap = [
                item
                for item in heap
                if tasks[item[2]] is not None
                and tasks[item[3]] is not None
                and version[item[2]] == item[4]
                and version[item[3]] == item[5]
            ]
            heapq.heapify(heap)
            compact_at = max(4096, 2 * len(heap))


def hfp_pack(
    graph: TaskGraph,
    memory_bytes: float,
    k_packages: int,
) -> List[List[int]]:
    """Run HFP packing and return ``k_packages`` ordered task lists.

    Phase 1 merges data-sharing packages under the memory bound; phase 2
    merges by affinity regardless of memory until ``k_packages`` remain;
    any leftover disconnected packages are folded smallest-first.
    """
    if k_packages < 1:
        raise ValueError("k_packages must be >= 1")
    pk = _Packages(graph)
    _merge_round(pk, memory_bytes, stop_at=k_packages)
    if pk.count > k_packages:
        _merge_round(pk, None, stop_at=k_packages)
    # Disconnected leftovers (e.g. sparse instances): fold smallest pairs.
    while pk.count > k_packages:
        ids = sorted(
            pk.active_ids(), key=lambda p: (len(pk.tasks[p]), p)
        )
        pk.merge(ids[0], ids[1])
    out = [pk.tasks[pid] for pid in pk.active_ids()]
    while len(out) < k_packages:  # fewer tasks than GPUs
        out.append([])
    return out


def balance_packages(
    packages: List[List[int]], graph: TaskGraph
) -> List[List[int]]:
    """Algorithm 4 lines 2–6: even the load out across the K packages.

    Moves tasks from the *tail* of the heaviest package to the lightest
    until no package exceeds the average load.  Load is the total task
    duration — proportional to flops — which reduces to the task count
    for homogeneous tasks.
    """
    packages = [list(p) for p in packages]
    if len(packages) <= 1:
        return packages
    flops = [t.flops for t in graph.tasks]

    def load(p: List[int]) -> float:
        return sum(flops[t] for t in p)

    l_avg = sum(load(p) for p in packages) / len(packages)
    loads = [load(p) for p in packages]
    for _ in range(sum(len(p) for p in packages) + len(packages)):
        i_max = max(range(len(packages)), key=lambda i: (loads[i], -i))
        i_min = min(range(len(packages)), key=lambda i: (loads[i], i))
        budget = min(loads[i_max] - l_avg, l_avg - loads[i_min])
        if i_max == i_min or budget <= 0:
            break
        # Move tail tasks worth at most `budget` load; never overshoot,
        # otherwise two packages straddling the average would swap the
        # same task back and forth forever.
        tol = 1e-9 * max(l_avg, 1.0)
        moved = 0.0
        while packages[i_max]:
            t = packages[i_max][-1]
            if moved + flops[t] > budget + tol:
                break
            packages[i_max].pop()
            packages[i_min].append(t)
            moved += flops[t]
            loads[i_max] -= flops[t]
            loads[i_min] += flops[t]
        if moved == 0.0:
            break
    return packages


class Mhfp(Scheduler):
    """multi-GPU Hierarchical Fair Packing (paper Algorithm 4)."""

    name = "mHFP"

    def __init__(self, use_ready: bool = True, use_stealing: bool = True) -> None:
        super().__init__()
        self.use_ready = use_ready
        self.use_stealing = use_stealing

    def prepare(self, view) -> None:
        super().prepare(view)
        memory = min(g.memory_bytes for g in view.platform.gpus)
        packages = hfp_pack(view.graph, memory, view.n_gpus)
        packages = balance_packages(packages, view.graph)
        self._lists = ReadyLists(view.n_gpus)
        for k, p in enumerate(packages):
            self._lists.assign(k, p)
        if self.use_ready:
            self._lists.enable_incremental(view)

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        self._lists.on_fetch_issued(gpu, data_id)

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        self._lists.on_data_evicted(gpu, data_id)

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        self._lists.drop_gpu(gpu, requeued)

    def next_task(self, gpu: int) -> Optional[int]:
        while True:
            if self.use_ready:
                task = self._lists.pop_ready(gpu, self.view)
                self.charge_ops(self._lists.last_scanned)
            else:
                task = self._lists.pop_fifo(gpu, self.view)
                self.charge_ops(1)
            if task is not None:
                return task
            if self._lists.remaining(gpu):
                return None  # blocked on dependencies, not out of work
            if not (self.use_stealing and self._lists.steal_half(gpu)):
                return None

    def remaining_order(self, gpu: int) -> Sequence[int]:
        return tuple(self._lists.remaining(gpu))

    def packages(self) -> List[List[int]]:
        """The balanced packages (before any runtime stealing); for tests."""
        return [list(l) for l in self._lists.lists]


class Hfp(Mhfp):
    """Single-GPU HFP (prior work [14]); identical machinery, K = 1."""

    name = "HFP"
