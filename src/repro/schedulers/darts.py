"""DARTS — Data-Aware Reactive Task Scheduling (paper Algorithm 5).

Fully dynamic strategy that considers *data movement before task
allocation*.  When GPU ``k`` asks for work and its reservation list
``plannedTasks_k`` is empty, DARTS scans ``dataNotInMem_k`` for the datum
``D`` that, if loaded, unlocks the most **free tasks** — tasks whose
other inputs are all already on the GPU.  All those tasks are reserved
for the GPU; the datum with the highest remaining use count wins ties
(broken randomly so different GPUs rarely chase the same data).

If no single datum unlocks a task (e.g. at start-up when every task needs
two absent inputs), the base algorithm picks a random unprocessed task;
the **3inputs** variant instead looks for a datum unlocking tasks at one
*additional* load's distance — decisive for the 3D matmul and Cholesky
scenarios with ≥ 3 inputs per task.

Variants controlling scheduling cost (paper §V-E/F):

* **OPTI** — stop the scan at the first datum unlocking ≥ 1 task;
* **threshold** — scan at most ``threshold`` candidate data per refill.

Eviction coupling (Algorithm 6, line 8): when the LUF policy — or any
other — evicts ``V`` from GPU ``k``, planned tasks depending on ``V`` are
un-reserved (returned to the common pool) and ``V`` returns to
``dataNotInMem_k``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set

from repro.schedulers.base import Scheduler


class Darts(Scheduler):
    """Algorithm 5, with the paper's variants as constructor flags."""

    def __init__(
        self,
        three_inputs: bool = False,
        opti: bool = False,
        threshold: Optional[int] = None,
        threshold_activation_ratio: float = 1.75,
    ) -> None:
        super().__init__()
        if threshold is not None and threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.three_inputs = three_inputs
        self.opti = opti
        self.threshold = threshold
        #: the paper enables the threshold "for working sets larger than
        #: 3 500 MB only" on a 4×500 MB node — i.e. beyond 1.75× the
        #: cumulated GPU memory; we keep that rule scale-free.
        self.threshold_activation_ratio = threshold_activation_ratio
        self.name = "DARTS"
        if opti:
            self.name += "+OPTI"
        if three_inputs:
            self.name += "-3inputs"
        if threshold is not None:
            self.name += "+threshold"

    # ------------------------------------------------------------------
    def prepare(self, view) -> None:
        super().prepare(view)
        graph = view.graph
        self._rng = view.rng
        #: tasks not yet reserved by any GPU nor executed
        self._unowned: Set[int] = set(range(graph.n_tasks))
        #: remaining unprocessed tasks using each datum (tie-break metric)
        self._remaining_users: List[int] = [
            graph.degree(d) for d in range(graph.n_data)
        ]
        self._planned: List[Deque[int]] = [
            deque() for _ in range(view.n_gpus)
        ]
        self._data_not_in_mem: List[Set[int]] = [
            set(range(graph.n_data)) for _ in range(view.n_gpus)
        ]
        self._executed: Set[int] = set()
        #: GPUs lost to injected device failures (never refilled again)
        self._dead_gpus: Set[int] = set()
        total_memory = sum(g.memory_bytes for g in view.platform.gpus)
        self._threshold_active = (
            self.threshold is not None
            and graph.working_set_bytes
            > self.threshold_activation_ratio * total_memory
        )
        # Incremental free-task index (see _count_free_tasks for the
        # definition it mirrors).  Gated off when the graph has outputs:
        # ALLOCATED output slots enter the held-set without any event to
        # update the index on.
        self._use_index = not graph.has_outputs
        if self._use_index:
            self._build_index()

    # ------------------------------------------------------------------
    # incremental free-task index
    # ------------------------------------------------------------------
    #
    # Per GPU ``g`` and task ``t``:
    #   _miss_count[g][t]  — number of t's inputs not in held(g);
    #   _miss_sum[g][t]    — sum of those input ids (when the count is 1
    #                        this identifies the single missing datum);
    #   _free_by_datum[g]  — datum d → set of *unowned* tasks whose only
    #                        missing input on g is d.
    # Updated on fetch-issue/evict (held-set transitions) and on tasks
    # entering/leaving the unowned pool, so ``_refill`` answers "how
    # many free tasks would loading d unlock" with one len() instead of
    # rescanning ``users_of``.  Dependency release is filtered at query
    # time (``is_released`` flips as tasks finish, without any per-datum
    # event).  ``check_index`` asserts equality with a fresh rescan.
    def _build_index(self) -> None:
        view = self.view
        graph = view.graph
        self._miss_count: List[List[int]] = []
        self._miss_sum: List[List[int]] = []
        self._free_by_datum: List[Dict[int, Set[int]]] = []
        for g in range(view.n_gpus):
            held = view.held(g)
            mc = []
            ms = []
            idx: Dict[int, Set[int]] = {}
            for t in range(graph.n_tasks):
                missing = [x for x in graph.inputs_of(t) if x not in held]
                mc.append(len(missing))
                ms.append(sum(missing))
                if len(missing) == 1 and t in self._unowned:
                    idx.setdefault(missing[0], set()).add(t)
            self._miss_count.append(mc)
            self._miss_sum.append(ms)
            self._free_by_datum.append(idx)

    def _index_remove_task(self, t: int) -> None:
        """``t`` leaves the unowned pool (planned or taken)."""
        for g in range(self.view.n_gpus):
            if self._miss_count[g][t] == 1:
                s = self._free_by_datum[g].get(self._miss_sum[g][t])
                if s is not None:
                    s.discard(t)

    def _index_add_task(self, t: int) -> None:
        """``t`` returns to the unowned pool (un-reserved on eviction)."""
        for g in range(self.view.n_gpus):
            if self._miss_count[g][t] == 1:
                self._free_by_datum[g].setdefault(
                    self._miss_sum[g][t], set()
                ).add(t)

    def check_index(self) -> None:
        """Assert the index equals a from-scratch recomputation (tests)."""
        if not self._use_index:
            return
        view = self.view
        graph = view.graph
        for g in range(view.n_gpus):
            if g in self._dead_gpus:
                continue  # wiped memory makes the dead GPU's rows stale
            held = view.held(g)
            idx: Dict[int, Set[int]] = {}
            for t in range(graph.n_tasks):
                missing = [x for x in graph.inputs_of(t) if x not in held]
                assert self._miss_count[g][t] == len(missing), (
                    f"gpu{g} task{t}: miss_count "
                    f"{self._miss_count[g][t]} != {len(missing)}"
                )
                assert self._miss_sum[g][t] == sum(missing), (
                    f"gpu{g} task{t}: miss_sum "
                    f"{self._miss_sum[g][t]} != {sum(missing)}"
                )
                if len(missing) == 1 and t in self._unowned:
                    idx.setdefault(missing[0], set()).add(t)
            live = {d: s for d, s in self._free_by_datum[g].items() if s}
            assert live == idx, f"gpu{g}: free_by_datum {live} != {idx}"

    # ------------------------------------------------------------------
    # Algorithm 5
    # ------------------------------------------------------------------
    def next_task(self, gpu: int) -> Optional[int]:
        planned = self._planned[gpu]
        if planned:
            self.charge_ops(1)
            return planned.popleft()
        if not self._unowned:
            return None
        return self._refill(gpu)

    def _refill(self, gpu: int) -> Optional[int]:
        graph = self.view.graph
        inmem = self.view.held(gpu)
        planned = self._planned[gpu]
        threshold = self.threshold if self._threshold_active else None
        use_index = self._use_index
        deps = self.view.has_dependencies
        not_in_mem = self._data_not_in_mem[gpu]
        idx = self._free_by_datum[gpu] if use_index else None

        n_max = 0
        candidates: List[int] = []
        scanned = 0
        # Iterate a sorted copy: deterministic under a fixed seed, and the
        # set is mutated on selection.  The full scan is order-blind (it
        # takes the max, ties broken randomly), but the early-exit modes
        # are order-*sensitive*: visit data with the most remaining
        # unprocessed users first, so the first hit is usually a good
        # one (cheap to order, and what makes OPTI "close to optimal").
        # One sort either way; (-users, d) keeps the id tie order the old
        # stable double sort produced.
        if self.opti or threshold is not None:
            ru = self._remaining_users
            scan_order = sorted(not_in_mem, key=lambda d: (-ru[d], d))
        else:
            scan_order = sorted(not_in_mem)
        for d in scan_order:
            if d in inmem:
                not_in_mem.discard(d)  # stale entry: purge, don't revisit
                continue
            scanned += 1
            self.charge_ops(len(graph.users_of(d)))
            if use_index:
                s = idx.get(d)
                if not s:
                    n_d = 0
                elif deps:
                    n_d = sum(1 for t in s if self.view.is_released(t))
                else:
                    n_d = len(s)
            else:
                n_d = self._count_free_tasks(d, inmem)
            if n_d > n_max:
                n_max = n_d
                candidates = [d]
                if self.opti:
                    break
            elif n_d == n_max and n_d > 0:
                candidates.append(d)
            if threshold is not None and scanned >= threshold:
                break

        if n_max > 0:
            d_opt = self._select_candidate(candidates)
            self.charge_ops(len(graph.users_of(d_opt)))
            if use_index:
                s = idx.get(d_opt, set())
                # users_of order, exactly like the rescan produced
                free = [
                    t
                    for t in graph.users_of(d_opt)
                    if t in s and (not deps or self.view.is_released(t))
                ]
            else:
                free = self._free_tasks(d_opt, inmem)
            for t in free:
                self._unowned.discard(t)
                if use_index:
                    self._index_remove_task(t)
                planned.append(t)
            self._data_not_in_mem[gpu].discard(d_opt)
            return planned.popleft()

        # No datum unlocks a task with a single load.
        if self.three_inputs:
            self.charge_ops(len(self._unowned))
            task = self._best_two_load_task(gpu, inmem)
            if task is not None:
                self._take(gpu, task)
                return task
        self.charge_ops(1)
        task = self._random_unowned()
        if task is None:
            return None
        self._take(gpu, task)
        return task

    def _count_free_tasks(self, d: int, inmem: Set[int]) -> int:
        """``n(D)``: unowned tasks whose only absent input is ``d``."""
        graph = self.view.graph
        n = 0
        for t in graph.users_of(d):
            if t not in self._unowned or not self.view.is_released(t):
                continue
            if all(x in inmem or x == d for x in graph.inputs_of(t)):
                n += 1
        return n

    def _free_tasks(self, d: int, inmem: Set[int]) -> List[int]:
        graph = self.view.graph
        return [
            t
            for t in graph.users_of(d)
            if t in self._unowned
            and self.view.is_released(t)
            and all(x in inmem or x == d for x in graph.inputs_of(t))
        ]

    def _select_candidate(self, candidates: List[int]) -> int:
        """Among equally-unlocking data, prefer the most used overall."""
        if len(candidates) == 1:
            return candidates[0]
        best = max(self._remaining_users[d] for d in candidates)
        top = sorted(d for d in candidates if self._remaining_users[d] == best)
        return top[0] if len(top) == 1 else self._rng.choice(top)

    def _best_two_load_task(
        self, gpu: int, inmem: Set[int]
    ) -> Optional[int]:
        """The 3inputs variant's fallback: tasks two loads away.

        Find the datum ``D`` maximising the number of unowned tasks that
        need ``D`` plus exactly one other absent datum; return one such
        task (so both its missing inputs get loaded).
        """
        graph = self.view.graph
        score: Dict[int, int] = {}
        task_for: Dict[int, int] = {}
        for t in sorted(self._unowned):
            if not self.view.is_released(t):
                continue
            missing = [x for x in graph.inputs_of(t) if x not in inmem]
            if len(missing) != 2:
                continue
            for d in missing:
                score[d] = score.get(d, 0) + 1
                task_for.setdefault(d, t)
        if not score:
            return None
        best = max(score.values())
        top = sorted(d for d, s in score.items() if s == best)
        d = top[0] if len(top) == 1 else self._rng.choice(top)
        return task_for[d]

    def _random_unowned(self) -> Optional[int]:
        pool = sorted(
            t for t in self._unowned if self.view.is_released(t)
        )
        if not pool:
            return None
        return self._rng.choice(pool)

    def _take(self, gpu: int, task: int) -> None:
        """Direct allocation (Algorithm 5 line 13)."""
        self._unowned.discard(task)
        if self._use_index:
            self._index_remove_task(task)
        for d in self.view.graph.inputs_of(task):
            self._data_not_in_mem[gpu].discard(d)

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------
    def task_done(self, gpu: int, task_id: int) -> None:
        self._executed.add(task_id)
        for d in self.view.graph.inputs_of(task_id):
            self._remaining_users[d] -= 1

    def on_data_loaded(self, gpu: int, data_id: int) -> None:
        self._data_not_in_mem[gpu].discard(data_id)

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        """``data_id`` joins ``gpu``'s held-set: one less missing input
        for each of its users there."""
        if not self._use_index:
            return
        mc = self._miss_count[gpu]
        ms = self._miss_sum[gpu]
        idx = self._free_by_datum[gpu]
        unowned = self._unowned
        for t in self.view.graph.users_of(data_id):
            old = mc[t]
            mc[t] = old - 1
            ms[t] -= data_id
            if t in unowned:
                if old == 1:
                    s = idx.get(data_id)
                    if s is not None:
                        s.discard(t)
                elif old == 2:
                    idx.setdefault(ms[t], set()).add(t)

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        """Return the dead GPU's reservations to the common pool.

        Both the runtime-pulled ``requeued`` tasks and this scheduler's
        own ``plannedTasks`` reservations for ``gpu`` become unowned
        again, re-entering the free-task index so surviving GPUs pick
        them up on their next refill.  The dead GPU's per-GPU index rows
        are left frozen — they are never queried again (``next_task`` is
        never called for a dead GPU; ``check_index`` skips it).
        """
        self._dead_gpus.add(gpu)
        returned = list(requeued) + list(self._planned[gpu])
        self._planned[gpu].clear()
        for t in returned:
            if t in self._executed or t in self._unowned:
                continue
            self._unowned.add(t)
            if self._use_index:
                self._index_add_task(t)

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        """Algorithm 6 line 8: un-reserve planned tasks needing the victim."""
        self._data_not_in_mem[gpu].add(data_id)
        graph = self.view.graph
        if self._use_index:
            mc = self._miss_count[gpu]
            ms = self._miss_sum[gpu]
            idx = self._free_by_datum[gpu]
            unowned = self._unowned
            for t in graph.users_of(data_id):
                old = mc[t]
                mc[t] = old + 1
                ms[t] += data_id
                if t in unowned:
                    if old == 0:
                        idx.setdefault(data_id, set()).add(t)
                    elif old == 1:
                        s = idx.get(ms[t] - data_id)
                        if s is not None:
                            s.discard(t)
        planned = self._planned[gpu]
        if not planned:
            return
        self.charge_ops(len(planned))
        keep: List[int] = []
        for t in planned:
            if data_id in graph.inputs_of(t):
                self._unowned.add(t)
                if self._use_index:
                    self._index_add_task(t)
            else:
                keep.append(t)
        if len(keep) != len(planned):
            planned.clear()
            planned.extend(keep)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def planned_tasks(self, gpu: int) -> Sequence[int]:
        return tuple(self._planned[gpu])

    def describe(self) -> str:
        flags = []
        if self.opti:
            flags.append("OPTI")
        if self.three_inputs:
            flags.append("3inputs")
        if self.threshold is not None:
            flags.append(f"threshold={self.threshold}")
        return f"DARTS({', '.join(flags)})" if flags else "DARTS"
