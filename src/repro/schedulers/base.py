"""Scheduler interface against the StarPU-like runtime.

A scheduler sees the full set of submitted tasks (they are independent,
so all are ready from the start — the paper's setting) and is driven by
the runtime through three kinds of callbacks:

* :meth:`Scheduler.prepare` — one-shot static phase (partitioning,
  packing) before virtual time starts; its wall-clock cost is what the
  paper charges as "scheduling time" for mHFP / hMETIS+R;
* :meth:`Scheduler.next_task` — a GPU's task buffer has room: return the
  next task id for that GPU, or ``None`` if it has nothing to do now;
* notifications — task completions, data loads, and evictions, which
  dynamic strategies (DARTS) and stealing react to.

Schedulers never touch simulator internals directly; they query memory
state through the :class:`repro.simulator.runtime.RuntimeView` handed to
``prepare``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.runtime import RuntimeView


class Scheduler:
    """Base class; concrete strategies override the hooks they need."""

    #: Display name used in reports ("EAGER", "DMDAR", "DARTS+LUF", ...).
    name = "abstract"

    def __init__(self) -> None:
        self.view: Optional["RuntimeView"] = None
        self._ops = 0

    # ------------------------------------------------------------------
    # decision-cost accounting
    # ------------------------------------------------------------------
    def charge_ops(self, n: int) -> None:
        """Record ``n`` inner-loop operations spent deciding.

        The runtime converts accumulated operations into *virtual* time
        (``decision_op_cost`` seconds each, calibrated to a C-speed
        implementation) that gates when the decided task may start.
        This models the paper's scheduling-time effects (mHFP's packing
        aside — that is a static phase) deterministically, independent of
        how fast the host Python happens to run.
        """
        self._ops += n

    def consume_ops(self) -> int:
        """Return and reset the operation counter (runtime hook)."""
        ops = self._ops
        self._ops = 0
        return ops

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self, view: "RuntimeView") -> None:
        """Static phase.  Store the view; heavy work (partitioning) here."""
        self.view = view

    def next_task(self, gpu: int) -> Optional[int]:
        """Next task for ``gpu``, or ``None`` if it has nothing to run now.

        Returning a task transfers ownership: the runtime *will* execute
        it on ``gpu`` (its data may be prefetched immediately), matching
        the paper's ``taskBuffer`` semantics.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # notifications (optional)
    # ------------------------------------------------------------------
    def task_done(self, gpu: int, task_id: int) -> None:
        """Task finished executing on ``gpu``."""

    def on_data_loaded(self, gpu: int, data_id: int) -> None:
        """A fetch of ``data_id`` into ``gpu``'s memory completed."""

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        """A fetch of ``data_id`` into ``gpu`` was *issued* (space
        reserved, transfer in flight).  From this moment ``data_id``
        counts as *held* by ``gpu`` — schedulers that mirror the
        held-set incrementally (DARTS's free-task index, Ready's
        missing-bytes cache) update on this hook, not on completion.

        Must not call :meth:`charge_ops`: index maintenance replaces
        rescans whose modeled cost is charged at decision time by the
        existing ``charge_ops`` call sites — charging here would change
        ``virtual_decision_time`` and thus the simulated trace.
        """

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        """``data_id`` was evicted from ``gpu``'s memory."""

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        """GPU ``gpu`` failed permanently; ``requeued`` are the tasks it
        was running or had buffered, returned to this scheduler to place
        on the surviving devices.

        Every scheduler holding per-GPU structures (allocation lists,
        free-task indices, cached device counts) MUST rebalance here —
        handing out a task for a dead GPU afterwards is a runtime error.
        The base deliberately raises instead of silently dropping the
        tasks: a scheduler that cannot recover must fail loudly (the
        API004 lint rule flags strategies that cache the device list
        without implementing this hook).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement on_device_lost; "
            "it cannot survive device failure (tasks "
            f"{list(requeued)} from GPU {gpu} would be lost)"
        )

    # ------------------------------------------------------------------
    # introspection (used by the LUF eviction policy and reports)
    # ------------------------------------------------------------------
    def planned_tasks(self, gpu: int) -> Sequence[int]:
        """Tasks reserved for ``gpu`` but not yet handed to the runtime.

        DARTS's ``plannedTasks_k``; empty for schedulers without such a
        reservation structure.
        """
        return ()

    def remaining_order(self, gpu: int) -> Sequence[int]:
        """Known future task order for ``gpu`` beyond the task buffer.

        Static schedulers (mHFP, hMETIS+R, fixed schedules) expose their
        remaining per-GPU list so the online Belady eviction policy can be
        exact; dynamic schedulers return the default empty sequence.
        """
        return ()

    def describe(self) -> str:
        """One-line description for reports."""
        return self.name
