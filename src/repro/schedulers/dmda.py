"""DMDA and DMDAR — StarPU's Deque Model Data Aware scheduler.

Algorithm 1 of the paper: tasks are allocated, in submission order, to
the GPU minimising the predicted completion time

    ``C_k(T_i) = Σ_{D_j ∈ D(T_i), D_j ∉ InMem(k)} comm_k(D_j) + comp_k(T_i)``

added to the GPU's estimated availability.  ``InMem(k)`` tracks the data
the allocation phase has already planned onto GPU ``k`` (the prediction
does not model evictions, exactly like StarPU's performance-model-based
allocation).

DMDAR additionally applies the Ready strategy (Algorithm 2) at runtime:
within its local queue, a GPU always starts the task whose inputs need
the fewest bytes transferred given current memory content.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.schedulers.base import Scheduler
from repro.schedulers.ready import ReadyLists


class Dmda(Scheduler):
    """Deque Model Data Aware (no runtime reordering)."""

    name = "DMDA"
    use_ready = False

    def prepare(self, view) -> None:
        super().prepare(view)
        graph = view.graph
        k_gpus = view.n_gpus
        bandwidth = view.bus_bandwidth()
        sizes = [d.size for d in graph.data]

        avail = [0.0] * k_gpus
        inmem: List[Set[int]] = [set() for _ in range(k_gpus)]
        self._lists = ReadyLists(k_gpus)

        for task in graph.tasks:
            best_k = 0
            best_c = float("inf")
            comp = [
                task.flops / (view.gpu_gflops(k) * 1e9) for k in range(k_gpus)
            ]
            for k in range(k_gpus):
                comm = sum(
                    sizes[d] / bandwidth
                    for d in task.inputs
                    if d not in inmem[k]
                )
                c = avail[k] + comm + comp[k]
                if c < best_c:
                    best_c, best_k = c, k
            avail[best_k] = best_c
            inmem[best_k].update(task.inputs)
            self._lists.assign(best_k, [task.id])
        if self.use_ready:
            self._lists.enable_incremental(view)

    def on_fetch_issued(self, gpu: int, data_id: int) -> None:
        self._lists.on_fetch_issued(gpu, data_id)

    def on_data_evicted(self, gpu: int, data_id: int) -> None:
        self._lists.on_data_evicted(gpu, data_id)

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        self._lists.drop_gpu(gpu, requeued)

    def next_task(self, gpu: int) -> Optional[int]:
        if self.use_ready:
            task = self._lists.pop_ready(gpu, self.view)
            self.charge_ops(self._lists.last_scanned)
            return task
        self.charge_ops(1)
        return self._lists.pop_fifo(gpu, self.view)

    def remaining_order(self, gpu: int) -> Sequence[int]:
        return tuple(self._lists.remaining(gpu))

    def allocation(self) -> List[List[int]]:
        """The per-GPU allocation computed by prepare (for tests)."""
        return [list(l) for l in self._lists.lists]


class Dmdar(Dmda):
    """DMDA with the Ready reordering strategy (the paper's main rival)."""

    name = "DMDAR"
    use_ready = True
