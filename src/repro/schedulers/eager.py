"""The EAGER baseline scheduler.

GPUs pick tasks on demand from one shared queue holding the tasks in
their natural submission order (row-major for the matrix products).  No
locality consideration whatsoever — the paper's reference point, whose
throughput collapses as soon as one input matrix no longer fits in GPU
memory (LRU then reloads the whole B matrix per block-row of A).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence

from repro.schedulers.base import Scheduler


class Eager(Scheduler):
    """Shared FIFO queue, demand-driven."""

    name = "EAGER"

    def prepare(self, view) -> None:
        super().prepare(view)
        self._queue: Deque[int] = deque(range(view.graph.n_tasks))

    def next_task(self, gpu: int) -> Optional[int]:
        self.charge_ops(1)
        if not self._queue:
            return None
        if not self.view.has_dependencies:
            return self._queue.popleft()
        # Dependent-task extension: serve the first *released* task,
        # leaving blocked ones queued in submission order.
        for pos, task in enumerate(self._queue):
            if self.view.is_released(task):
                del self._queue[pos]
                return task
        return None

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        # The queue is shared, so nothing is owned by the dead GPU;
        # its pulled-back tasks go to the front in their original order
        # (they were submitted earliest among the remaining work).
        for task in reversed(requeued):
            self._queue.appendleft(task)
