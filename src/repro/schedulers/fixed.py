"""Replay a precomputed :class:`repro.core.Schedule` in the simulator.

Bridges the analytic model and the discrete-event simulator: any static
σ (brute-force optimal, hand-written, or produced by packing/partitioning
outside a runtime) can be executed with timing, bus contention and a real
eviction policy.  Optionally applies Ready reordering and task stealing
on top, which is how the static halves of mHFP/hMETIS+R behave at runtime.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.schedule import Schedule
from repro.schedulers.base import Scheduler
from repro.schedulers.ready import ReadyLists


class FixedSchedule(Scheduler):
    """Execute the given per-GPU task lists as-is (or with Ready/steal)."""

    name = "FIXED"

    def __init__(
        self,
        schedule: Schedule,
        use_ready: bool = False,
        use_stealing: bool = False,
    ) -> None:
        super().__init__()
        self.schedule = schedule
        self.use_ready = use_ready
        self.use_stealing = use_stealing
        if use_ready or use_stealing:
            suffix = "+R" if use_ready else ""
            suffix += "+steal" if use_stealing else ""
            self.name = f"FIXED{suffix}"

    def prepare(self, view) -> None:
        super().prepare(view)
        if self.schedule.n_gpus != view.n_gpus:
            raise ValueError(
                f"schedule targets {self.schedule.n_gpus} GPUs but the "
                f"platform has {view.n_gpus}"
            )
        self._lists = ReadyLists(view.n_gpus)
        for k, order in enumerate(self.schedule.order):
            self._lists.assign(k, order)

    def on_device_lost(self, gpu: int, requeued: Sequence[int]) -> None:
        self._lists.drop_gpu(gpu, requeued)

    def next_task(self, gpu: int) -> Optional[int]:
        while True:
            if self.use_ready:
                task = self._lists.pop_ready(gpu, self.view)
                self.charge_ops(self._lists.last_scanned)
            else:
                task = self._lists.pop_fifo(gpu, self.view)
                self.charge_ops(1)
            if task is not None:
                return task
            if self._lists.remaining(gpu):
                return None  # blocked on dependencies, not out of work
            if not (self.use_stealing and self._lists.steal_half(gpu)):
                return None

    def remaining_order(self, gpu: int) -> Sequence[int]:
        return tuple(self._lists.remaining(gpu))
