"""Build schedulers (and their paired eviction policy) from plot names.

The paper's figures label strategies as EAGER, DMDA, DMDAR, mHFP,
hMETIS+R, DARTS, DARTS+LUF, DARTS+LUF-3inputs, DARTS+LUF+OPTI,
DARTS+LUF+OPTI-3inputs, DARTS+LUF+threshold.  All schedulers run on LRU
eviction except the ``+LUF`` DARTS variants (paper §V-A).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.schedulers.base import Scheduler
from repro.schedulers.darts import Darts
from repro.schedulers.dmda import Dmda, Dmdar
from repro.schedulers.eager import Eager
from repro.schedulers.hfp import Mhfp
from repro.schedulers.partition import HmetisR

_FACTORIES: Dict[str, Callable[[], Scheduler]] = {
    "eager": Eager,
    "dmda": Dmda,
    "dmdar": Dmdar,
    "mhfp": Mhfp,
    "hmetis+r": HmetisR,
    "darts": lambda: Darts(),
    "darts+luf": lambda: Darts(),
    "darts+luf-3inputs": lambda: Darts(three_inputs=True),
    "darts+luf+opti": lambda: Darts(opti=True),
    "darts+luf+opti-3inputs": lambda: Darts(opti=True, three_inputs=True),
    "darts+opti": lambda: Darts(opti=True),
}

#: schedulers evicting with LUF rather than the default LRU
_LUF_NAMES = {
    "darts+luf",
    "darts+luf-3inputs",
    "darts+luf+opti",
    "darts+luf+opti-3inputs",
}

SCHEDULER_NAMES = tuple(sorted(set(_FACTORIES) | {"darts+luf+threshold"}))


def _canon(name: str) -> str:
    return name.strip().lower().replace(" ", "")


def eviction_for(name: str) -> str:
    """Eviction policy the paper pairs with this strategy."""
    canon = _canon(name)
    if canon in _LUF_NAMES or canon.startswith("darts+luf"):
        return "luf"
    return "lru"


def make_scheduler(
    name: str, threshold: Optional[int] = None
) -> Tuple[Scheduler, str]:
    """Return ``(scheduler, eviction policy name)`` for a plot label.

    ``threshold`` applies to DARTS variants (the Fig. 8 knob); names may
    also carry an explicit ``+threshold`` suffix, in which case a default
    of 10 candidate data per refill is used unless overridden.
    """
    canon = _canon(name)
    explicit = canon.endswith("+threshold")
    base = canon[: -len("+threshold")] if explicit else canon
    factory = _FACTORIES.get(base)
    if factory is None:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}"
        )
    sched = factory()
    # Display names follow the paper's plot labels.
    sched.name = _DISPLAY.get(base, sched.name)
    if explicit or threshold is not None:
        if not isinstance(sched, Darts):
            raise ValueError(f"threshold only applies to DARTS, got {name!r}")
        sched.threshold = threshold if threshold is not None else 10
        sched.name += "+threshold"
    return sched, eviction_for(base)


def validate_registry() -> list:
    """Audit the factory table against the :class:`Scheduler` contract.

    Returns a list of problem strings (empty when conformant).  Used by
    the ``API001`` rule of ``python -m repro.check``: every registered
    name must build a :class:`Scheduler` subclass that overrides
    :meth:`Scheduler.next_task` and carries a display name.
    """
    problems = []
    for name in sorted(_FACTORIES):
        try:
            sched, eviction = make_scheduler(name)
        except Exception as exc:  # pragma: no cover - registry bug
            problems.append(f"registry name {name!r} failed to build: {exc}")
            continue
        if not isinstance(sched, Scheduler):
            problems.append(
                f"registry name {name!r} built {type(sched).__name__}, "
                "which is not a Scheduler subclass"
            )
            continue
        if type(sched).next_task is Scheduler.next_task:
            problems.append(
                f"registry name {name!r} ({type(sched).__name__}) does not "
                "implement next_task()"
            )
        if not sched.name or sched.name == "abstract":
            problems.append(
                f"registry name {name!r} has no display name"
            )
        from repro.eviction import POLICY_NAMES

        if eviction not in POLICY_NAMES:
            problems.append(
                f"registry name {name!r} pairs unknown eviction policy "
                f"{eviction!r}"
            )
    return problems


_DISPLAY = {
    "eager": "EAGER",
    "dmda": "DMDA",
    "dmdar": "DMDAR",
    "mhfp": "mHFP",
    "hmetis+r": "hMETIS+R",
    "darts": "DARTS",
    "darts+luf": "DARTS+LUF",
    "darts+luf-3inputs": "DARTS+LUF-3inputs",
    "darts+luf+opti": "DARTS+LUF+OPTI",
    "darts+luf+opti-3inputs": "DARTS+LUF+OPTI-3inputs",
    "darts+opti": "DARTS+OPTI",
}
