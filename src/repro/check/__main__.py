"""Entry point for ``python -m repro.check``."""

import sys

from repro.check.cli import main

if __name__ == "__main__":
    sys.exit(main())
