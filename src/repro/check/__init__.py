"""Correctness tooling: determinism linter + simulation sanitizer.

``repro.check`` is the repo's static-analysis and invariant-checking
subsystem.  It has two sides:

* a **static AST linter** (:mod:`repro.check.lint`) whose rules encode
  this repository's determinism and API contracts — no unseeded
  randomness or wall-clock reads inside simulated code paths, no
  order-sensitive iteration over unordered containers in scheduling
  decisions, no ``==`` on simulated float times, and conformance of the
  scheduler registry and eviction policies to their base APIs;
* a **runtime trace sanitizer** (:mod:`repro.simulator.sanitizer`) that
  validates every simulated run against the paper's §III model — memory
  capacity, input residency, pinning, bus-bandwidth conservation, event
  monotonicity, and same-seed reproducibility.

Run both with ``python -m repro.check``; see :mod:`repro.check.cli`.
"""

from repro.check.lint.framework import (
    LintViolation,
    Linter,
    ModuleContext,
    Rule,
    all_rules,
)

__all__ = [
    "LintViolation",
    "Linter",
    "ModuleContext",
    "Rule",
    "all_rules",
]
