"""``python -m repro.check`` — lint the tree, then sanitize smoke runs.

Two stages, both gating the exit code:

1. the static determinism/API linter over ``src/`` (or the paths given);
2. sanitized smoke simulations of the paper's five scheduling
   strategies (EAGER, DMDA, DMDAR, mHFP, hMETIS+R — plus DARTS+LUF for
   the paper's contribution) on a small matmul instance, each run twice
   to verify the same-seed trace-digest contract (SAN007).

Exit status 0 means: no lint violations, no sanitizer violations, and
bit-identical double runs for every scheduler.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.check.lint.framework import LintViolation, Linter, all_rules
from repro.check.lint.reporters import json_report, text_report

#: the five strategies of the paper's evaluation plus the DARTS+LUF
#: contribution; every one is smoke-simulated under the sanitizer
SMOKE_SCHEDULERS: Sequence[str] = (
    "eager",
    "dmda",
    "dmdar",
    "mhfp",
    "hmetis+r",
    "darts+luf",
)


def _default_lint_root() -> Optional[Path]:
    """The installed ``repro`` package directory (linting its source)."""
    import repro

    pkg = Path(repro.__file__).resolve().parent
    return pkg if pkg.is_dir() else None


def run_lint(
    paths: Sequence[Path], rules: Optional[Sequence[str]] = None
) -> List[LintViolation]:
    """Lint ``paths``; returns the violation list."""
    selected = all_rules()
    if rules:
        wanted = {r.strip().upper() for r in rules}
        unknown = wanted - {r.code for r in selected}
        if unknown:
            raise SystemExit(f"unknown rule code(s): {sorted(unknown)}")
        selected = [r for r in selected if r.code in wanted]
    return Linter(selected).lint_paths(paths)


def run_smoke(verbose: bool = False) -> List[str]:
    """Sanitized double-run smoke simulations; returns problem strings."""
    from repro.platform.spec import tesla_v100_node
    from repro.simulator.sanitizer import Sanitizer, check_determinism
    from repro.workloads.matmul2d import matmul2d

    graph = matmul2d(6)
    # Memory holds ~8 of the 12 blocks: small enough to force evictions
    # (exercising SAN001/SAN003/SAN006) on a seconds-long smoke run.
    block = graph.data[0].size
    platform = tesla_v100_node(n_gpus=2, memory_bytes=8 * block)

    problems: List[str] = []
    for name in SMOKE_SCHEDULERS:
        collector = Sanitizer(strict=False)
        try:
            digest = check_determinism(
                graph, platform, name, seed=0, sanitizer=collector
            )
        except Exception as exc:  # sanitizer raise or simulation bug
            problems.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        for v in collector.violations:
            problems.append(f"{name}: {v.format()}")
        if verbose and not collector.violations:
            print(f"  smoke {name:12s} ok  digest={digest[:16]}…")
    return problems


def run_fault_smoke(verbose: bool = False) -> List[str]:
    """Fault-injection smoke: every strategy survives a pinned fault plan.

    For each smoke scheduler, a fault-free baseline fixes the makespan;
    a plan then kills GPU 1 at ~30% of that makespan, corrupts transfers
    with probability 0.2, and slows GPU 0 by 1.5×.  The faulted run must
    (a) be reproducible (same plan ⇒ same SAN007 digest, via
    ``check_determinism``) and (b) pass the recovery sanitizer checks
    SAN008 (exactly-once completion), SAN009 (no fetch from a failed
    device), SAN010 (degraded makespan within surviving capacity).
    """
    from repro.platform.spec import tesla_v100_node
    from repro.simulator.faults import (
        DeviceFailure,
        FaultPlan,
        StragglerSlowdown,
        TransferCorruption,
    )
    from repro.simulator.runtime import simulate
    from repro.simulator.sanitizer import Sanitizer, check_determinism
    from repro.schedulers.registry import make_scheduler
    from repro.workloads.matmul2d import matmul2d

    graph = matmul2d(6)
    block = graph.data[0].size
    platform = tesla_v100_node(n_gpus=3, memory_bytes=8 * block)

    problems: List[str] = []
    for name in SMOKE_SCHEDULERS:
        try:
            sched, eviction = make_scheduler(name)
            base = simulate(graph, platform, sched, eviction=eviction, seed=0)
            plan = FaultPlan(
                seed=11,
                device_failures=(
                    DeviceFailure(gpu=1, time=0.3 * base.makespan),
                ),
                transfer_faults=TransferCorruption(probability=0.2),
                stragglers=(StragglerSlowdown(gpu=0, factor=1.5),),
            )
            collector = Sanitizer(strict=False)
            digest = check_determinism(
                graph, platform, name, seed=0,
                sanitizer=collector, faults=plan,
            )
        except Exception as exc:  # sanitizer raise or recovery bug
            problems.append(f"{name}: {type(exc).__name__}: {exc}")
            continue
        for v in collector.violations:
            problems.append(f"{name}: {v.format()}")
        if verbose and not collector.violations:
            print(f"  fault-smoke {name:12s} ok  digest={digest[:16]}…")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description="Determinism linter + simulation sanitizer smoke runs.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the lint report as JSON"
    )
    parser.add_argument(
        "--no-smoke",
        action="store_true",
        help="skip the sanitized smoke simulations (lint only)",
    )
    parser.add_argument(
        "--fault-smoke",
        action="store_true",
        help="additionally smoke-run every strategy under a pinned "
        "fault-injection plan (device failure + transfer corruption + "
        "straggler) with the recovery sanitizer checks enabled",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print smoke-run progress"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:22s} {rule.description}")
        return 0

    paths = list(args.paths)
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2
    if not paths:
        root = _default_lint_root()
        if root is None:
            print("cannot locate the repro package to lint", file=sys.stderr)
            return 2
        paths = [root]

    rules = args.rules.split(",") if args.rules else None
    violations: List[LintViolation] = run_lint(paths, rules)
    if args.json:
        print(json_report(violations))
    else:
        print(text_report(violations))

    smoke_problems: List[str] = []
    if not args.no_smoke:
        if not args.json:
            print("running sanitized smoke simulations "
                  f"({', '.join(SMOKE_SCHEDULERS)}) ...")
        smoke_problems = run_smoke(verbose=args.verbose)
        for p in smoke_problems:
            print(f"smoke: {p}", file=sys.stderr)
        if not args.json:
            n = len(SMOKE_SCHEDULERS)
            ok = n - len({p.split(":", 1)[0] for p in smoke_problems})
            print(f"repro.check smoke: {ok}/{n} schedulers clean")

    fault_problems: List[str] = []
    if args.fault_smoke:
        if not args.json:
            print("running fault-injection smoke simulations "
                  f"({', '.join(SMOKE_SCHEDULERS)}) ...")
        fault_problems = run_fault_smoke(verbose=args.verbose)
        for p in fault_problems:
            print(f"fault-smoke: {p}", file=sys.stderr)
        if not args.json:
            n = len(SMOKE_SCHEDULERS)
            ok = n - len({p.split(":", 1)[0] for p in fault_problems})
            print(f"repro.check fault-smoke: {ok}/{n} schedulers clean")

    return 1 if (violations or smoke_problems or fault_problems) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
