"""Static AST linter for determinism and API conformance.

See :mod:`repro.check.lint.framework` for the rule machinery and
:mod:`repro.check.lint.rules` for the concrete rule set.
"""

from repro.check.lint.framework import (
    LintViolation,
    Linter,
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    parse_noqa,
    register,
)
from repro.check.lint.reporters import json_report, text_report

__all__ = [
    "LintViolation",
    "Linter",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "parse_noqa",
    "register",
    "json_report",
    "text_report",
]
