"""Tiny AST lint framework: rules, suppressions, and the driver.

Rules come in two flavours:

* **AST rules** subclass :class:`Rule` and implement
  :meth:`Rule.check_module`, yielding violations for one parsed module;
* **project rules** subclass :class:`ProjectRule` and implement
  :meth:`ProjectRule.check_project`, which sees the package root once
  (used for import-based conformance checks such as the scheduler
  registry audit).

Violations carry a stable rule ``code`` (``DET001``, ``API002``, ...).
A line can opt out of specific rules with a trailing comment::

    t0 = time.time()  # repro: noqa[DET002]

or out of everything with ``# repro: noqa``.  Suppressions are scoped to
the physical line the violation is reported on.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class ModuleContext:
    """Everything an AST rule may look at for one module."""

    path: Path
    #: dotted module name relative to the package root, e.g.
    #: ``repro.simulator.runtime`` (best effort; '' when unresolvable)
    module: str
    tree: ast.Module
    source_lines: Sequence[str]
    #: line number -> suppressed rule codes ('*' suppresses everything)
    noqa: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes


def parse_noqa(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Collect ``# repro: noqa[...]`` suppressions per physical line."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source_lines, 1):
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        raw = m.group("codes")
        if raw is None:
            out[lineno] = {"*"}
        else:
            out[lineno] = {c.strip().upper() for c in raw.split(",") if c.strip()}
    return out


class Rule:
    """Base class for per-module AST rules."""

    #: stable identifier, e.g. ``DET001``
    code: str = "XXX000"
    #: short human name
    name: str = "abstract"
    #: one-line description shown by ``--list-rules``
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        raise NotImplementedError

    def violation(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> LintViolation:
        return LintViolation(
            code=self.code,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Whole-project rule (import-based conformance audits)."""

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        return iter(())

    def check_project(self, root: Path) -> Iterator[LintViolation]:
        raise NotImplementedError


_REGISTRY: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    if any(existing.code == cls.code for existing in _REGISTRY):
        raise ValueError(f"duplicate rule code {cls.code!r}")
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    import repro.check.lint.rules  # noqa: F401  (populates the registry)

    return [cls() for cls in _REGISTRY]


def _module_name(path: Path) -> str:
    """Dotted module path relative to the nearest ``repro`` ancestor."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Linter:
    """Run a rule set over files or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()

    def lint_file(self, path: Path) -> List[LintViolation]:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                LintViolation(
                    code="SYN000",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"syntax error: {exc.msg}",
                )
            ]
        lines = source.splitlines()
        ctx = ModuleContext(
            path=path,
            module=_module_name(path),
            tree=tree,
            source_lines=lines,
            noqa=parse_noqa(lines),
        )
        out: List[LintViolation] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                continue
            for v in rule.check_module(ctx):
                if not ctx.is_suppressed(v.code, v.line):
                    out.append(v)
        return out

    def lint_paths(self, paths: Iterable[Path]) -> List[LintViolation]:
        """Lint files and/or directory trees; project rules run once."""
        out: List[LintViolation] = []
        roots: List[Path] = []
        for p in paths:
            p = Path(p)
            if p.is_dir():
                roots.append(p)
                for f in sorted(p.rglob("*.py")):
                    out.extend(self.lint_file(f))
            else:
                out.extend(self.lint_file(p))
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                for root in roots or [Path(".")]:
                    out.extend(rule.check_project(root))
        out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return out
