"""Concrete lint rules encoding this repo's determinism and API contracts.

Determinism rules (``DET``)
    DET001  unseeded ``random`` / ``numpy.random`` use
    DET002  wall-clock reads in simulated code paths
    DET003  order-sensitive iteration over unordered containers
    DET004  ``==`` / ``!=`` on simulated float times

API-conformance rules (``API``)
    API001  scheduler registry entries must be ``Scheduler`` subclasses
            implementing ``next_task`` (project-wide, import-based)
    API002  eviction policies must implement the ``EvictionPolicy`` API
            (project-wide, import-based)
    API003  scheduler/eviction code must not mutate runtime internals;
            everything goes through the read-only ``RuntimeView``
    API004  scheduler classes deriving per-device state from ``n_gpus``
            must participate in the device-loss protocol
            (``on_device_lost`` / ``drop_gpu``)

Performance rules (``PERF``)
    PERF001 filtered full-dict rescans (``self.X.items()`` under an
            ``if``) in simulator hot paths; maintain the derived set
            incrementally on state transitions instead

The determinism rules exist because every figure in the paper's
evaluation rests on "same seed ⇒ same trace" (DESIGN.md decision 5):
one wall-clock read or one iteration over a ``set`` feeding a
scheduling decision silently breaks bit-identical replay.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.check.lint.framework import (
    LintViolation,
    ModuleContext,
    ProjectRule,
    Rule,
    register,
)

#: packages whose code runs *inside* the simulated world — anything
#: nondeterministic here changes simulation results, not just logging
SIMULATED_PACKAGES: Tuple[str, ...] = (
    "repro.simulator",
    "repro.schedulers",
    "repro.eviction",
    "repro.core",
    "repro.dag",
    "repro.workloads",
    "repro.platform",
    "repro.partitioning",
)

#: modules allowed to read ``time.perf_counter`` — the scheduling-cost
#: wall-clock measurement sites (a diagnostic, never fed back into the
#: simulation; see ``RunResult.decision_wall_time``).  These are the
#: runtime-kernel layers that time scheduler calls.
PERF_COUNTER_WHITELIST: Tuple[str, ...] = (
    "repro.simulator.kernel",
    "repro.simulator.prefetch",
    "repro.simulator.worker",
)


def _in_simulated_path(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in SIMULATED_PACKAGES
    )


def _import_aliases(tree: ast.Module, target: str) -> Set[str]:
    """Local names bound to module ``target`` by ``import`` statements."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == target:
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def _from_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    out: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                out[alias.asname or alias.name] = alias.name
    return out


@register
class UnseededRandomRule(Rule):
    """DET001: module-level randomness is forbidden; seed an instance.

    ``random.random()``, ``random.choice()``, ... draw from the shared
    module-level generator whose state depends on everything else that
    ran in the process — two runs with the same simulation seed diverge.
    Use ``random.Random(seed)`` (or pass ``rng``) instead.  The same goes
    for ``numpy.random.*`` legacy functions; use ``default_rng(seed)``.
    """

    code = "DET001"
    name = "unseeded-random"
    description = (
        "no module-level random/numpy.random calls; use random.Random(seed)"
    )

    _NUMPY_OK = {"default_rng", "Generator", "RandomState", "SeedSequence"}

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        random_aliases = _import_aliases(ctx.tree, "random")
        from_random = _from_imports(ctx.tree, "random")
        numpy_aliases = _import_aliases(ctx.tree, "numpy") | _import_aliases(
            ctx.tree, "numpy.random"
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            # random.<fn>(...) via the module object
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in random_aliases
            ):
                if fn.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            ctx, node, "random.Random() without a seed"
                        )
                else:
                    yield self.violation(
                        ctx,
                        node,
                        f"call to module-level random.{fn.attr}(); "
                        "use a seeded random.Random instance",
                    )
            # from random import shuffle; shuffle(...)
            elif isinstance(fn, ast.Name) and fn.id in from_random:
                original = from_random[fn.id]
                if original != "Random":
                    yield self.violation(
                        ctx,
                        node,
                        f"call to module-level random.{original}(); "
                        "use a seeded random.Random instance",
                    )
            # numpy.random.<fn>(...) / np.random.<fn>(...)
            elif (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and fn.value.attr == "random"
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in numpy_aliases
                and fn.attr not in self._NUMPY_OK
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"call to numpy.random.{fn.attr}(); "
                    "use numpy.random.default_rng(seed)",
                )


@register
class WallClockRule(Rule):
    """DET002: wall-clock reads make simulated results time-dependent.

    ``time.time()`` / ``datetime.now()`` are forbidden everywhere in the
    package (measure elapsed wall time with ``time.perf_counter()``);
    ``perf_counter`` itself is additionally forbidden inside simulated
    code paths, except the whitelisted scheduling-cost measurement sites
    in the runtime-kernel layers (:data:`PERF_COUNTER_WHITELIST`).
    """

    code = "DET002"
    name = "wall-clock"
    description = (
        "no time.time()/datetime.now(); perf_counter only outside "
        "simulated paths (runtime-kernel layers whitelisted)"
    )

    _BANNED_TIME = {"time", "time_ns", "clock"}
    _PERF = {"perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
    _BANNED_DATETIME = {"now", "utcnow", "today"}

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        time_aliases = _import_aliases(ctx.tree, "time")
        from_time = _from_imports(ctx.tree, "time")
        datetime_aliases = _import_aliases(ctx.tree, "datetime")
        from_datetime = _from_imports(ctx.tree, "datetime")
        simulated = _in_simulated_path(ctx.module)
        perf_ok = not simulated or ctx.module in PERF_COUNTER_WHITELIST

        def classify(fn: ast.expr) -> Optional[str]:
            """Return the offending function name, or None."""
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                base, attr = fn.value.id, fn.attr
                if base in time_aliases:
                    if attr in self._BANNED_TIME:
                        return f"time.{attr}"
                    if attr in self._PERF and not perf_ok:
                        return f"time.{attr}"
                # datetime.datetime.now() has an Attribute base; handle
                # the common `from datetime import datetime` form here.
                if (
                    base in from_datetime
                    and from_datetime[base] in {"datetime", "date"}
                    and attr in self._BANNED_DATETIME
                ):
                    return f"datetime.{attr}"
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in datetime_aliases
                and fn.value.attr in {"datetime", "date"}
                and fn.attr in self._BANNED_DATETIME
            ):
                return f"datetime.{fn.value.attr}.{fn.attr}"
            if isinstance(fn, ast.Name) and fn.id in from_time:
                original = from_time[fn.id]
                if original in self._BANNED_TIME:
                    return f"time.{original}"
                if original in self._PERF and not perf_ok:
                    return f"time.{original}"
            return None

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            offender = classify(node.func)
            if offender is None:
                continue
            if offender.startswith("time.") and offender.split(".")[1] in self._PERF:
                yield self.violation(
                    ctx,
                    node,
                    f"{offender}() inside a simulated code path; wall time "
                    "must not leak into simulation state (whitelist: "
                    + ", ".join(PERF_COUNTER_WHITELIST)
                    + ")",
                )
            else:
                yield self.violation(
                    ctx,
                    node,
                    f"{offender}() reads the wall clock; use "
                    "time.perf_counter() for elapsed-time measurement "
                    "outside simulated paths",
                )


#: DeviceMemory / RuntimeView methods documented to return sets
_SET_RETURNING_METHODS = {
    "present",
    "held",
    "evictable",
    "present_set",
    "held_set",
    "fetching_set",
}

#: builtins whose result does not depend on argument iteration order
_ORDER_INSENSITIVE = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
    if isinstance(node, ast.Name):
        return node.id in {
            "Set",
            "FrozenSet",
            "AbstractSet",
            "MutableSet",
            "set",
            "frozenset",
        }
    return False


@register
class UnorderedIterationRule(Rule):
    """DET003: iteration order over a ``set`` must not reach decisions.

    CPython set iteration order depends on insertion history and hash
    randomization of the running build; a scheduling decision derived
    from it (first element, ``rng.choice`` over an unsorted listing, ...)
    is not reproducible across platforms.  Wrap the iterable in
    ``sorted(...)`` or reduce it with an order-insensitive builtin.
    Only order-*sensitive* positions are flagged: ``for`` statements,
    ``list`` comprehensions, and ``list()``/``tuple()`` conversions.
    Set/dict comprehensions and ``sorted``/``min``/``max``/``sum``/
    ``any``/``all`` reductions are fine.
    """

    code = "DET003"
    name = "unordered-iteration"
    description = (
        "no order-sensitive iteration over sets in scheduling decisions"
    )

    def _set_params(self, tree: ast.Module) -> Dict[ast.AST, Set[str]]:
        """Per-function names of parameters annotated as sets."""
        out: Dict[ast.AST, Set[str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs)
                names = {
                    a.arg for a in args if _is_set_annotation(a.annotation)
                }
                if names:
                    out[node] = names
        return out

    def _is_set_like(
        self, expr: ast.expr, enclosing_set_params: Set[str]
    ) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            fn = expr.func
            if isinstance(fn, ast.Name) and fn.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in _SET_RETURNING_METHODS
            ):
                return True
        if isinstance(expr, ast.Name) and expr.id in enclosing_set_params:
            return True
        return False

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        set_params = self._set_params(ctx.tree)
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent

        def enclosing_params(node: ast.AST) -> Set[str]:
            cur: Optional[ast.AST] = node
            while cur is not None:
                if cur in set_params:
                    return set_params[cur]
                cur = parents.get(cur)
            return set()

        def flag(node: ast.AST, expr: ast.expr, what: str) -> LintViolation:
            return self.violation(
                ctx,
                node,
                f"{what} iterates a set in an order-sensitive position; "
                "wrap it in sorted(...) for deterministic order",
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and self._is_set_like(
                node.iter, enclosing_params(node)
            ):
                yield flag(node, node.iter, "for statement")
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if self._is_set_like(gen.iter, enclosing_params(node)):
                        yield flag(node, gen.iter, "list comprehension")
            elif isinstance(node, ast.GeneratorExp):
                parent = parents.get(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_INSENSITIVE
                ):
                    continue
                for gen in node.generators:
                    if self._is_set_like(gen.iter, enclosing_params(node)):
                        yield flag(node, gen.iter, "generator expression")
            elif isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Name)
                    and fn.id in {"list", "tuple"}
                    and node.args
                    and self._is_set_like(
                        node.args[0], enclosing_params(node)
                    )
                ):
                    yield flag(node, node.args[0], f"{fn.id}() conversion")


@register
class FloatTimeEqualityRule(Rule):
    """DET004: simulated times are floats; ``==`` on them is fragile.

    Virtual timestamps accumulate floating-point error (bus fair-sharing
    divides bandwidth, durations add); exact equality silently flips with
    any model change.  Compare with a tolerance, or order events with
    ``<=`` / heap sequence numbers.
    """

    code = "DET004"
    name = "float-time-equality"
    description = "no ==/!= comparisons of simulated float times"

    _TIME_NAMES = {"now", "makespan", "time"}

    def _is_time_operand(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr in self._TIME_NAMES or node.attr.endswith("_time")
        if isinstance(node, ast.Name):
            return node.id in self._TIME_NAMES or node.id.endswith("_time")
        return False

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        if not _in_simulated_path(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._is_time_operand(left) or self._is_time_operand(right):
                    yield self.violation(
                        ctx,
                        node,
                        "==/!= on a simulated float time; compare with a "
                        "tolerance or order via the event heap",
                    )


#: packages whose per-event code runs once per simulated event — the
#: simulator hot paths the core optimization keeps rescan-free
HOT_PACKAGES: Tuple[str, ...] = (
    "repro.simulator",
    "repro.schedulers",
    "repro.eviction",
)

#: functions where a full rescan is the *point* (one-time setup and
#: verification code), exempt from PERF001
_COLD_NAMES = frozenset({"__init__", "prepare"})
_COLD_PREFIXES = ("check_", "_build", "enable_", "_sanitize")


def _in_hot_path(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in HOT_PACKAGES
    )


@register
class FullRescanRule(Rule):
    """PERF001: no filtered full-dict rescans in simulator hot paths.

    A comprehension that filters ``self.X.items()`` (or ``.keys()`` /
    ``.values()``) derives a subset of a per-datum/per-task store by
    scanning all of it — O(store) work on a path that runs once per
    simulated event.  The repo's hot-path contract (DESIGN.md, "Modeled
    cost vs implementation speed") is to maintain such derived sets
    incrementally on state transitions and reserve full rescans for
    setup (``__init__``/``prepare``/``_build*``/``enable_*``) and
    verification (``check_*``/``_sanitize*``) code, where this rule
    stays silent.
    """

    code = "PERF001"
    name = "full-rescan"
    description = (
        "no filtered self.X.items() rescans in simulator hot paths; "
        "maintain derived sets incrementally"
    )

    _COMPS = (ast.SetComp, ast.ListComp, ast.DictComp, ast.GeneratorExp)
    _SCANS = {"items", "keys", "values"}

    def _is_full_scan(self, it: ast.expr) -> bool:
        """``self.<attr>.items()``-style calls (and keys/values)."""
        return (
            isinstance(it, ast.Call)
            and not it.args
            and not it.keywords
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in self._SCANS
            and isinstance(it.func.value, ast.Attribute)
            and isinstance(it.func.value.value, ast.Name)
            and it.func.value.value.id == "self"
        )

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        if not _in_hot_path(ctx.module):
            return
        yield from self._visit(ctx, ctx.tree, in_cold=False)

    def _visit(
        self, ctx: ModuleContext, node: ast.AST, in_cold: bool
    ) -> Iterator[LintViolation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cold = in_cold or child.name in _COLD_NAMES or any(
                    child.name.startswith(p) for p in _COLD_PREFIXES
                )
                yield from self._visit(ctx, child, cold)
                continue
            if not in_cold and isinstance(child, self._COMPS):
                for gen in child.generators:
                    if gen.ifs and self._is_full_scan(gen.iter):
                        store = gen.iter.func.value.attr  # type: ignore[union-attr]
                        yield self.violation(
                            ctx,
                            child,
                            f"filtered rescan of self.{store}."
                            f"{gen.iter.func.attr}() in a hot path; "  # type: ignore[union-attr]
                            "maintain the derived set incrementally "
                            "on state transitions",
                        )
            yield from self._visit(ctx, child, in_cold)


def _find_source(root: Path, rel: str) -> str:
    cand = root / rel
    if cand.exists():
        return str(cand)
    return rel


@register
class SchedulerRegistryRule(ProjectRule):
    """API001: every registry name must build a conforming Scheduler."""

    code = "API001"
    name = "scheduler-registry"
    description = (
        "registry names must resolve to Scheduler subclasses "
        "implementing next_task"
    )

    def check_project(self, root: Path) -> Iterator[LintViolation]:
        from repro.schedulers import registry

        path = _find_source(root, "repro/schedulers/registry.py")
        for problem in registry.validate_registry():
            yield LintViolation(
                code=self.code, path=path, line=1, col=1, message=problem
            )


#: packages whose code consumes the runtime through RuntimeView and is
#: policed by API003 (strategy code must never mutate runtime internals)
VIEW_CONSUMER_PACKAGES: Tuple[str, ...] = (
    "repro.schedulers",
    "repro.eviction",
)

#: names under which strategy code conventionally holds a RuntimeView
_VIEW_NAMES = {"view", "_view"}


def _chain_reaches_view(expr: ast.expr) -> bool:
    """True when an attribute chain bottoms out in a RuntimeView handle
    (``view.x``, ``self.view.x.y``, ``self._view.x``)."""
    node = expr
    while isinstance(node, ast.Attribute):
        if node.attr in _VIEW_NAMES:
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id in _VIEW_NAMES


@register
class RuntimeViewMutationRule(Rule):
    """API003: strategy code must not mutate runtime internals.

    Schedulers and eviction policies are handed a read-only
    :class:`repro.simulator.view.RuntimeView`; the simulation's
    correctness (admission control, pinning, memory accounting) depends
    on the kernel being the only writer of its own state.  Two reaches
    are flagged inside :data:`VIEW_CONSUMER_PACKAGES`:

    * any access to the view's private ``_rt`` kernel handle — even a
      read couples the strategy to kernel internals the view does not
      promise;
    * any assignment / augmented assignment / deletion targeting an
      attribute reached *through* a view (``view.graph.tasks = ...``),
      i.e. mutating shared runtime state behind the read-only surface.
    """

    code = "API003"
    name = "runtime-view-mutation"
    description = (
        "scheduler/eviction code must not mutate runtime internals; "
        "everything goes through the read-only RuntimeView"
    )

    def _applies(self, module: str) -> bool:
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in VIEW_CONSUMER_PACKAGES
        )

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        if not self._applies(ctx.module):
            return
        mutated: List[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                mutated.extend(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                mutated.append(node.target)
            elif isinstance(node, ast.Delete):
                mutated.extend(node.targets)
            if isinstance(node, ast.Attribute) and node.attr == "_rt":
                yield self.violation(
                    ctx,
                    node,
                    "access to RuntimeView._rt reaches into the runtime "
                    "kernel; use the view's query API (or extend it)",
                )
        for target in mutated:
            if isinstance(target, ast.Subscript):
                target = target.value
            if isinstance(target, ast.Attribute) and _chain_reaches_view(
                target.value
            ):
                yield self.violation(
                    ctx,
                    target,
                    "assignment through a RuntimeView mutates runtime "
                    "state; the view is read-only by contract",
                )


@register
class DeviceListCacheRule(Rule):
    """API004: cached device lists must survive an injected GPU failure.

    A scheduler that sizes internal state from ``n_gpus`` (per-device
    ready lists, plans, load tables) has cached the device list.  After
    the fault-injection layer kills a GPU, that state silently keeps
    routing work to the dead device unless the class participates in
    the recovery protocol.  Any class in ``repro.schedulers`` with a
    method that both reads ``n_gpus`` and stores state on ``self`` must
    therefore define ``on_device_lost`` in its own body (or
    ``drop_gpu``, the equivalent contract for shared ready-list
    containers).  Inheriting the base class's raising default does not
    count — that is precisely the unhandled case.
    """

    code = "API004"
    name = "device-list-cache"
    description = (
        "scheduler classes deriving per-device state from n_gpus must "
        "define on_device_lost (or drop_gpu for list containers)"
    )

    _HOOKS = {"on_device_lost", "drop_gpu"}

    def _applies(self, module: str) -> bool:
        return module == "repro.schedulers" or module.startswith(
            "repro.schedulers."
        )

    @staticmethod
    def _reads_n_gpus(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "n_gpus":
            return True
        return isinstance(node, ast.Name) and node.id == "n_gpus"

    @staticmethod
    def _self_store(node: ast.AST) -> Optional[ast.Attribute]:
        """The ``self.<attr>`` target of an assignment node, if any."""
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            return None
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return target
        return None

    def check_module(self, ctx: ModuleContext) -> Iterator[LintViolation]:
        if not self._applies(ctx.module):
            return
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            defined = {
                stmt.name
                for stmt in cls.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if defined & self._HOOKS:
                continue
            for meth in cls.body:
                if not isinstance(
                    meth, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                reads = False
                store: Optional[ast.Attribute] = None
                for sub in ast.walk(meth):
                    if self._reads_n_gpus(sub):
                        reads = True
                    if store is None:
                        found = self._self_store(sub)
                        if found is not None:
                            store = found
                if reads and store is not None:
                    yield self.violation(
                        ctx,
                        store,
                        f"{cls.name}.{meth.name} sizes state on self from "
                        f"n_gpus, but {cls.name} defines neither "
                        "on_device_lost nor drop_gpu; the cached device "
                        "list goes stale after an injected GPU failure",
                    )


@register
class EvictionPolicyRule(ProjectRule):
    """API002: every eviction policy must implement the base API."""

    code = "API002"
    name = "eviction-policy-api"
    description = "eviction policies must implement the EvictionPolicy API"

    def check_project(self, root: Path) -> Iterator[LintViolation]:
        import repro.eviction as ev
        from repro.eviction.base import validate_policy_class

        path = _find_source(root, "repro/eviction/base.py")
        problems: List[str] = []
        for name in sorted(ev._BY_NAME):
            problems.extend(validate_policy_class(ev._BY_NAME[name], name))
        for problem in problems:
            yield LintViolation(
                code=self.code, path=path, line=1, col=1, message=problem
            )
