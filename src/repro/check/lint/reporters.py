"""Render lint violations for humans (text) or machines (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.check.lint.framework import LintViolation


def text_report(violations: Sequence[LintViolation]) -> str:
    """One line per violation plus a per-code summary."""
    if not violations:
        return "repro.check lint: no violations"
    lines: List[str] = [v.format() for v in violations]
    counts = Counter(v.code for v in violations)
    summary = ", ".join(f"{code}×{n}" for code, n in sorted(counts.items()))
    lines.append(f"repro.check lint: {len(violations)} violation(s) ({summary})")
    return "\n".join(lines)


def json_report(violations: Sequence[LintViolation]) -> str:
    """Machine-readable report (one object per violation)."""
    payload = {
        "violations": [
            {
                "code": v.code,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
        "count": len(violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
