"""repro — Memory-aware scheduling of tasks sharing data on multiple GPUs.

A from-scratch Python reproduction of Gonthier, Marchal & Thibault,
"Memory-Aware Scheduling of Tasks Sharing Data on Multiple GPUs with
Dynamic Runtime Systems" (IPDPS 2022): a StarPU-like simulated runtime,
a shared-bus multi-GPU platform model, all five scheduling strategies of
the paper (EAGER, DMDA/DMDAR, mHFP, hMETIS+R, DARTS±LUF and variants),
a from-scratch multilevel hypergraph partitioner, the four application
scenarios, and the benchmark harness regenerating every figure.

Quickstart::

    from repro import matmul2d, tesla_v100_node, make_scheduler, simulate

    graph = matmul2d(20)                       # 400 tasks, 40 data blocks
    platform = tesla_v100_node(n_gpus=2)       # 500 MB per GPU, shared PCIe
    sched, eviction = make_scheduler("darts+luf")
    result = simulate(graph, platform, sched, eviction=eviction)
    print(result.summary())
"""

from repro.core import (
    Data,
    Schedule,
    Task,
    TaskGraph,
    belady_loads,
    compulsory_loads,
    replay_schedule,
)
from repro.platform import (
    BusSpec,
    GpuSpec,
    PlatformSpec,
    data_items_per_memory,
    tesla_v100_node,
)
from repro.simulator import RunResult, simulate
from repro.schedulers import (
    Darts,
    Dmda,
    Dmdar,
    Eager,
    FixedSchedule,
    HmetisR,
    Mhfp,
    Scheduler,
    make_scheduler,
)
from repro.workloads import (
    cholesky_tasks,
    matmul2d,
    matmul3d,
    random_bipartite,
    sparse_matmul2d,
)
from repro.dag import CycleError, DependencySet, cholesky_dag

__version__ = "1.0.0"

__all__ = [
    "Data",
    "Task",
    "TaskGraph",
    "Schedule",
    "replay_schedule",
    "belady_loads",
    "compulsory_loads",
    "GpuSpec",
    "BusSpec",
    "PlatformSpec",
    "tesla_v100_node",
    "data_items_per_memory",
    "simulate",
    "RunResult",
    "Scheduler",
    "Eager",
    "Dmda",
    "Dmdar",
    "Mhfp",
    "HmetisR",
    "Darts",
    "FixedSchedule",
    "make_scheduler",
    "matmul2d",
    "matmul3d",
    "cholesky_tasks",
    "sparse_matmul2d",
    "random_bipartite",
    "DependencySet",
    "CycleError",
    "cholesky_dag",
    "__version__",
]
