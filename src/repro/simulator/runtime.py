"""StarPU-like runtime driving pluggable schedulers over the simulator.

Each GPU runs a worker with a bounded **task buffer** (the paper's
``taskBuffer_k``): tasks popped from the scheduler whose input fetches
have been issued (prefetch).  The head task starts executing as soon as
all its inputs are resident; fetches for deeper tasks overlap with
execution.  Inputs of the executing task are pinned; buffered tasks'
inputs are *not*, so an eviction policy may throw them out again — the
re-fetch then counts as an extra load (the "domino effect" of the paper).

Admission control keeps the union of input footprints of the executing
plus buffered tasks within the GPU memory, which is what guarantees the
simulation can always make progress.
"""

from __future__ import annotations

import random
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Union

from repro.core.problem import TaskGraph
from repro.platform.spec import PlatformSpec
from repro.schedulers.base import Scheduler
from repro.simulator.bus import make_bus
from repro.simulator.engine import EventHandle, SimulationEngine
from repro.simulator.memory import DeviceMemory, MemoryFullError
from repro.simulator.sanitizer import Sanitizer, is_enabled as _sanitizer_enabled
from repro.simulator.trace import GpuStats, RunResult, TraceRecorder


class SimulationDeadlock(Exception):
    """The event queue drained while tasks remained unexecuted."""


class RuntimeView:
    """Read-only window onto runtime state for schedulers and policies."""

    def __init__(self, runtime: "Runtime") -> None:
        self._rt = runtime
        self.graph: TaskGraph = runtime.graph
        self.platform: PlatformSpec = runtime.platform
        self.rng: random.Random = runtime.rng

    @property
    def now(self) -> float:
        return self._rt.engine.now

    @property
    def n_gpus(self) -> int:
        return self.platform.n_gpus

    def present(self, gpu: int) -> Set[int]:
        """Data fully resident on ``gpu``."""
        return self._rt.memories[gpu].present_set()

    def held(self, gpu: int) -> Set[int]:
        """Data resident or currently being fetched into ``gpu``."""
        return self._rt.memories[gpu].held_set()

    def holds(self, gpu: int, d: int) -> bool:
        return self._rt.memories[gpu].holds(d)

    def missing_inputs(self, gpu: int, task_id: int) -> List[int]:
        """Inputs of ``task_id`` that ``gpu`` neither has nor is fetching."""
        mem = self._rt.memories[gpu]
        return [d for d in self.graph.inputs_of(task_id) if not mem.holds(d)]

    def missing_bytes(self, gpu: int, task_id: int) -> float:
        """Bytes still to transfer before ``task_id`` could run on ``gpu``."""
        sizes = self._rt.sizes
        return sum(sizes[d] for d in self.missing_inputs(gpu, task_id))

    def task_buffer(self, gpu: int) -> List[int]:
        """Executing task (if any) followed by the buffered tasks."""
        w = self._rt.workers[gpu]
        out = [w.executing] if w.executing is not None else []
        out.extend(w.buffer)
        return out

    @property
    def has_dependencies(self) -> bool:
        return self._rt.dependencies is not None

    def is_released(self, task_id: int) -> bool:
        """Whether all predecessors of ``task_id`` have completed.

        Always True without dependencies (the paper's base model).
        """
        indeg = self._rt._indegree
        return indeg is None or indeg[task_id] == 0

    def capacity(self, gpu: int) -> float:
        return self._rt.memories[gpu].capacity

    def gpu_gflops(self, gpu: int) -> float:
        return self.platform.gpus[gpu].gflops

    def bus_bandwidth(self) -> float:
        return self.platform.bus.bandwidth


@dataclass
class _Worker:
    buffer: Deque[int]
    executing: Optional[int] = None
    staged: Optional[int] = None  # task held back by admission control
    exhausted: bool = False  # scheduler returned None on the last poll
    #: virtual time at which this GPU's scheduler thread is next free;
    #: decisions execute sequentially on it
    sched_free_at: float = 0.0
    #: pending wake-up for a decision-gated head task
    gate_event: Optional[EventHandle] = None


class Runtime:
    """One simulated execution of ``graph`` on ``platform`` by ``scheduler``."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: PlatformSpec,
        scheduler: Scheduler,
        eviction: Union[str, Callable[[int, RuntimeView], object]] = "lru",
        window: int = 2,
        seed: int = 0,
        record_trace: bool = False,
        decision_op_cost: float = 5e-8,
        dependencies: Optional[object] = None,
        sanitize: Union[None, bool, Sanitizer] = None,
    ) -> None:
        if window < 1:
            raise ValueError("task buffer window must be >= 1")
        if decision_op_cost < 0:
            raise ValueError("decision_op_cost must be >= 0")
        self.graph = graph
        self.platform = platform
        self.scheduler = scheduler
        self.window = window
        self.rng = random.Random(seed)
        # Invariant sanitizer: explicit instance > explicit bool > the
        # module-level switch (turned on for the whole test suite).
        self.sanitizer: Optional[Sanitizer]
        if isinstance(sanitize, Sanitizer):
            self.sanitizer = sanitize
        else:
            wanted = _sanitizer_enabled() if sanitize is None else sanitize
            self.sanitizer = Sanitizer() if wanted else None
        self.engine = SimulationEngine()
        self.engine.observer = self.sanitizer
        self.bus = make_bus(self.engine, platform.bus)
        self.bus.observer = self.sanitizer
        # PCIe is full duplex: device→host write-backs (the output
        # extension) ride their own channel and overlap with fetches —
        # the paper's "transferred concurrently with data input".
        self.store_bus = (
            make_bus(self.engine, platform.bus) if graph.has_outputs else None
        )
        if self.store_bus is not None:
            self.store_bus.observer = self.sanitizer
        self.fabric = None
        if platform.peer_link is not None:
            from repro.simulator.fabric import PeerFabric

            self.fabric = PeerFabric(
                self.engine, self.bus, platform.peer_link, platform.n_gpus
            )
        self.sizes = [d.size for d in graph.data]
        self.trace = TraceRecorder(enabled=record_trace)
        self.view = RuntimeView(self)

        # Output-data extension: produced data are not in host memory
        # until their eager write-back completes.
        self._host_resident: List[bool] = [
            not graph.is_produced(d) for d in range(graph.n_data)
        ]

        # Eviction policies are created per GPU via repro.eviction.
        from repro.eviction import make_policy

        self.memories: List[DeviceMemory] = []
        for k, gpu in enumerate(platform.gpus):
            policy = (
                eviction(k, self.view)
                if callable(eviction)
                else make_policy(eviction, k, self.view, scheduler)
            )
            self.memories.append(
                DeviceMemory(
                    engine=self.engine,
                    bus=self.fabric if self.fabric is not None else self.bus,
                    gpu_index=k,
                    capacity_bytes=gpu.memory_bytes,
                    data_sizes=self.sizes,
                    policy=policy,
                    on_data_ready=self._on_data_ready,
                    on_evicted=self._on_evicted,
                    on_fetch_start=lambda g, d: self.trace.record(
                        self.engine.now, "fetch_start", g, d
                    ),
                    data_available=(
                        self._is_data_available if graph.has_outputs else None
                    ),
                    sanitizer=self.sanitizer,
                )
            )

        if self.fabric is not None:
            self.fabric.attach(self.memories)

        self.workers = [
            _Worker(buffer=deque()) for _ in range(platform.n_gpus)
        ]
        self.stats = [GpuStats() for _ in range(platform.n_gpus)]
        self.executed_order: List[List[int]] = [
            [] for _ in range(platform.n_gpus)
        ]
        self.decision_op_cost = decision_op_cost
        # Optional task dependencies (the paper's §VI extension): tasks
        # are released to schedulers once all predecessors completed.
        self.dependencies = None
        self._indegree: Optional[List[int]] = None
        if dependencies is not None:
            from repro.dag.deps import DependencySet

            if not isinstance(dependencies, DependencySet):
                dependencies = DependencySet(graph.n_tasks, dependencies)
            dependencies.validate(graph)
            self.dependencies = dependencies
            self._indegree = dependencies.indegrees()
        #: virtual start gate per popped task (decision pipeline)
        self._task_gate: Dict[int, float] = {}
        self._virtual_decision_time = 0.0
        if graph.has_outputs:
            self._validate_producer_consumer()
        self._remaining = graph.n_tasks
        self._decision_time = 0.0
        self._prepare_time = 0.0
        self._finished = False
        # Workers only react to events once run() has begun; this lets
        # tests drive memories/buses directly through an idle Runtime.
        self._started = False

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        t0 = _time.perf_counter()
        self.scheduler.prepare(self.view)
        self._prepare_time = _time.perf_counter() - t0

        self._started = True
        self._poke_all()
        self.engine.run()

        if self._remaining > 0:
            self._raise_deadlock()
        for mem in self.memories:
            mem.check_invariants()
        if self.sanitizer is not None:
            self.sanitizer.after_run(self)

        result = RunResult(
            scheduler=self.scheduler.name,
            n_gpus=self.platform.n_gpus,
            makespan=self.engine.now,
            total_flops=self.graph.total_flops,
            gpus=self.stats,
            scheduling_time=self._prepare_time + self._decision_time,
            prepare_time=self._prepare_time,
            decision_wall_time=self._decision_time,
            virtual_decision_time=self._virtual_decision_time,
            trace=self.trace if self.trace.enabled else None,
            trace_digest=self.trace.digest() if self.trace.enabled else None,
            executed_order=self.executed_order,
        )
        for k, mem in enumerate(self.memories):
            self.stats[k].n_loads = mem.n_loads
            self.stats[k].bytes_loaded = mem.bytes_loaded
            self.stats[k].n_evictions = mem.n_evictions
        if self.fabric is not None:
            result.bytes_from_peer = self.fabric.bytes_from_peer
            result.bytes_from_host = self.fabric.bytes_from_host
        else:
            result.bytes_from_host = result.total_bytes
        return result

    # ------------------------------------------------------------------
    # worker state machine
    # ------------------------------------------------------------------
    def _poke_all(self) -> None:
        for k in range(self.platform.n_gpus):
            self._poke(k)

    def _poke(self, gpu: int) -> None:
        self._fill_buffer(gpu)
        self._try_start(gpu)

    def _fill_buffer(self, gpu: int) -> None:
        w = self.workers[gpu]
        while len(w.buffer) < self.window:
            if w.staged is not None:
                task = w.staged
                w.staged = None
            else:
                t0 = _time.perf_counter()
                task = self.scheduler.next_task(gpu)
                self._decision_time += _time.perf_counter() - t0
                cost = self.scheduler.consume_ops() * self.decision_op_cost
                if cost > 0:
                    # Decisions run sequentially on the GPU's scheduler
                    # thread; the decided task cannot start before the
                    # decision completes (in virtual time).
                    start = max(w.sched_free_at, self.engine.now)
                    w.sched_free_at = start + cost
                    self._virtual_decision_time += cost
                    if task is not None:
                        self._task_gate[task] = w.sched_free_at
                if task is None:
                    w.exhausted = True
                    return
                w.exhausted = False
            if not self._admit(gpu, task):
                w.staged = task
                return
            is_head = not w.buffer
            w.buffer.append(task)
            inputs = self.graph.inputs_of(task)
            # The head task's inputs protect each other from eviction
            # (the paper's V(k,i) ∩ D(T_σ(k,i)) = ∅ rule); deeper
            # prefetches get no such protection.
            protected = inputs if is_head else ()
            for d in inputs:
                self.memories[gpu].request(d, protected=protected)

    def _admit(self, gpu: int, task: int) -> bool:
        """Admission control: buffered footprints must fit in memory."""
        w = self.workers[gpu]
        active = list(w.buffer)
        if w.executing is not None:
            active.append(w.executing)
        tk = self.graph.tasks[task]
        footprint: Set[int] = set(tk.inputs) | set(tk.outputs)
        for t in active:
            other = self.graph.tasks[t]
            footprint.update(other.inputs)
            footprint.update(other.outputs)
        need = sum(self.sizes[d] for d in footprint)
        if need <= self.memories[gpu].capacity:
            return True
        if not active:
            raise MemoryFullError(
                f"task {task} alone needs {need:.0f}B on GPU {gpu} "
                f"(capacity {self.memories[gpu].capacity:.0f}B)"
            )
        return False

    def _try_start(self, gpu: int) -> None:
        w = self.workers[gpu]
        if w.executing is not None or not w.buffer:
            return
        head = w.buffer[0]
        gate = self._task_gate.get(head, 0.0)
        if self.engine.now < gate:
            # The scheduling decision for this task is still "running";
            # wake up when it completes.
            if w.gate_event is None or w.gate_event.cancelled:
                w.gate_event = self.engine.schedule_at(
                    gate, lambda: self._gate_expired(gpu)
                )
            return
        mem = self.memories[gpu]
        inputs = self.graph.inputs_of(head)
        outputs = self.graph.outputs_of(head)
        ready = True
        for d in inputs:
            if not mem.is_present(d):
                # Re-request anything evicted meanwhile, shielding the
                # head task's other inputs from being evicted for it.
                mem.request(d, protected=inputs)
                ready = False
        if not ready:
            return
        protected = tuple(inputs) + tuple(outputs)
        for o in outputs:
            if not mem.allocate_output(o, protected=protected):
                return  # no space yet; retried on the next poke
        w.buffer.popleft()
        self._task_gate.pop(head, None)
        w.executing = head
        for d in inputs:
            mem.touch(d)
            mem.pin(d)
        if self.sanitizer is not None:
            self.sanitizer.on_task_start(
                gpu, head, inputs, mem, self.engine.now
            )
        duration = self.graph.tasks[head].flops / (
            self.platform.gpus[gpu].gflops * 1e9
        )
        self.trace.record(self.engine.now, "task_start", gpu, head)
        self.engine.schedule(
            duration, lambda: self._on_task_done(gpu, head, duration)
        )
        # Execution frees a buffer slot: pull more work to prefetch.
        self._fill_buffer(gpu)

    def _gate_expired(self, gpu: int) -> None:
        self.workers[gpu].gate_event = None
        self._poke(gpu)

    # ------------------------------------------------------------------
    # output-data extension
    # ------------------------------------------------------------------
    def _validate_producer_consumer(self) -> None:
        """Consumers of produced data must depend on the producer."""
        for d in range(self.graph.n_data):
            producer = self.graph.producer_of(d)
            if producer is None:
                continue
            for user in self.graph.users_of(d):
                if self.dependencies is None or (
                    producer not in self.dependencies.preds[user]
                ):
                    raise ValueError(
                        f"task {user} reads produced datum {d} but does "
                        f"not depend on its producer {producer}; pass the "
                        "producer→consumer edges via dependencies="
                    )

    def _is_data_available(self, d: int) -> bool:
        """Can ``d`` be fetched right now (host copy or reachable peer)?"""
        if self._host_resident[d]:
            return True
        if self.fabric is not None:
            return any(mem.is_present(d) for mem in self.memories)
        return False

    def _store_done(self, gpu: int, d: int) -> None:
        self._host_resident[d] = True
        self.memories[gpu].unpin(d)
        self.trace.record(self.engine.now, "store_end", gpu, d)
        for mem in self.memories:
            mem.retry_pending()
        self._poke_all()

    def _on_task_done(self, gpu: int, task: int, duration: float) -> None:
        w = self.workers[gpu]
        assert w.executing == task
        mem = self.memories[gpu]
        for d in self.graph.inputs_of(task):
            mem.unpin(d)
        # Outputs become resident data and are eagerly written back to
        # the host over the bus; they stay pinned until the store lands.
        for o in self.graph.outputs_of(task):
            mem.mark_produced(o)
            self.stats[gpu].bytes_stored += self.sizes[o]
            self.stats[gpu].n_stores += 1
            self.trace.record(self.engine.now, "store_start", gpu, o)
            self.store_bus.submit(
                self.sizes[o],
                gpu,
                lambda oo=o, g=gpu: self._store_done(g, oo),
            )
        w.executing = None
        st = self.stats[gpu]
        st.n_tasks += 1
        st.busy_time += duration
        st.flops += self.graph.tasks[task].flops
        self.executed_order[gpu].append(task)
        self.trace.record(self.engine.now, "task_end", gpu, task)
        self._remaining -= 1

        if self.dependencies is not None:
            for succ in self.dependencies.succs[task]:
                self._indegree[succ] -= 1

        t0 = _time.perf_counter()
        self.scheduler.task_done(gpu, task)
        self._decision_time += _time.perf_counter() - t0

        # Completion may unblock anyone (stealing, DARTS refills, fetches).
        self._poke_all()

    def _on_data_ready(self, gpu: int, d: int) -> None:
        self.trace.record(self.engine.now, "fetch_end", gpu, d)
        if not self._started:
            return
        t0 = _time.perf_counter()
        self.scheduler.on_data_loaded(gpu, d)
        self._decision_time += _time.perf_counter() - t0
        self._poke(gpu)

    def _on_evicted(self, gpu: int, d: int) -> None:
        self.trace.record(self.engine.now, "evict", gpu, d)
        if self._started:
            self.scheduler.on_data_evicted(gpu, d)

    # ------------------------------------------------------------------
    def _raise_deadlock(self) -> None:
        lines = [f"{self._remaining}/{self.graph.n_tasks} tasks never ran"]
        for k, w in enumerate(self.workers):
            mem = self.memories[k]
            lines.append(
                f"  gpu{k}: executing={w.executing} buffer={list(w.buffer)} "
                f"staged={w.staged} exhausted={w.exhausted} "
                f"used={mem.used:.0f}/{mem.capacity:.0f}B "
                f"fetching={sorted(mem.fetching_set())}"
            )
        raise SimulationDeadlock("\n".join(lines))


def simulate(
    graph: TaskGraph,
    platform: PlatformSpec,
    scheduler: Scheduler,
    eviction: Union[str, Callable[[int, RuntimeView], object]] = "lru",
    window: int = 2,
    seed: int = 0,
    record_trace: bool = False,
    decision_op_cost: float = 5e-8,
    dependencies: Optional[object] = None,
    sanitize: Union[None, bool, Sanitizer] = None,
) -> RunResult:
    """Run ``graph`` on ``platform`` under ``scheduler`` and return stats.

    ``eviction`` names a policy from :mod:`repro.eviction` (``"lru"``,
    ``"fifo"``, ``"random"``, ``"luf"``) or is a factory
    ``(gpu_index, view) -> policy``.  ``window`` is the per-GPU task
    buffer depth (prefetch lookahead).  ``decision_op_cost`` converts a
    scheduler's reported inner-loop operations into virtual seconds of
    decision latency (0 disables decision-cost modelling).
    ``dependencies`` is a :class:`repro.dag.DependencySet` (or an edge
    list); tasks only become schedulable once their predecessors ran.
    ``sanitize`` turns on the model-invariant sanitizer for this run
    (``True``, or a :class:`repro.simulator.sanitizer.Sanitizer` to
    collect violations); ``None`` defers to the module-level switch.
    """
    return Runtime(
        graph,
        platform,
        scheduler,
        eviction=eviction,
        window=window,
        seed=seed,
        record_trace=record_trace,
        decision_op_cost=decision_op_cost,
        dependencies=dependencies,
        sanitize=sanitize,
    ).run()
