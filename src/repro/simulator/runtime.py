"""StarPU-like runtime driving pluggable schedulers over the simulator.

Compatibility facade.  The runtime used to be one god-class in this
module; it is now a layered kernel (see :mod:`repro.simulator.kernel`
for the module map).  :class:`Runtime` keeps the historical constructor
signature and attribute surface (``engine``, ``memories``, ``workers``,
``view``, ``trace``, ``sanitizer``…) on top of
:class:`~repro.simulator.kernel.RuntimeKernel`, so existing callers and
tests keep working unchanged; :func:`simulate` remains the one-call
entry point.

Model recap: each GPU runs a worker with a bounded **task buffer** (the
paper's ``taskBuffer_k``): tasks popped from the scheduler whose input
fetches have been issued (prefetch).  The head task starts executing as
soon as all its inputs are resident; fetches for deeper tasks overlap
with execution.  Inputs of the executing task are pinned; buffered
tasks' inputs are *not*, so an eviction policy may throw them out again
— the re-fetch then counts as an extra load (the "domino effect" of the
paper).  Admission control keeps the union of input footprints of the
executing plus buffered tasks within the GPU memory, which is what
guarantees the simulation can always make progress.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.problem import TaskGraph
from repro.platform.spec import PlatformSpec
from repro.schedulers.base import Scheduler
from repro.simulator.faults import FaultPlan
from repro.simulator.kernel import RuntimeKernel, SimulationDeadlock
from repro.simulator.sanitizer import Sanitizer
from repro.simulator.trace import RunResult
from repro.simulator.view import RuntimeView

__all__ = ["Runtime", "RuntimeView", "SimulationDeadlock", "simulate"]


class Runtime(RuntimeKernel):
    """One simulated execution of ``graph`` on ``platform`` by ``scheduler``.

    Thin alias of :class:`~repro.simulator.kernel.RuntimeKernel`; kept
    so ``repro.simulator.runtime.Runtime`` stays the stable public name.
    """


def simulate(
    graph: TaskGraph,
    platform: PlatformSpec,
    scheduler: Scheduler,
    eviction: Union[str, Callable[[int, RuntimeView], object]] = "lru",
    window: int = 2,
    seed: int = 0,
    record_trace: bool = False,
    decision_op_cost: float = 5e-8,
    dependencies: Optional[object] = None,
    sanitize: Union[None, bool, Sanitizer] = None,
    faults: Optional[FaultPlan] = None,
) -> RunResult:
    """Run ``graph`` on ``platform`` under ``scheduler`` and return stats.

    ``eviction`` names a policy from :mod:`repro.eviction` (``"lru"``,
    ``"fifo"``, ``"random"``, ``"luf"``) or is a factory
    ``(gpu_index, view) -> policy``.  ``window`` is the per-GPU task
    buffer depth (prefetch lookahead).  ``decision_op_cost`` converts a
    scheduler's reported inner-loop operations into virtual seconds of
    decision latency (0 disables decision-cost modelling).
    ``dependencies`` is a :class:`repro.dag.DependencySet` (or an edge
    list); tasks only become schedulable once their predecessors ran.
    ``sanitize`` turns on the model-invariant sanitizer for this run
    (``True``, or a :class:`repro.simulator.sanitizer.Sanitizer` to
    collect violations); ``None`` defers to the module-level switch.
    ``faults`` is a :class:`repro.simulator.faults.FaultPlan` of
    deterministic injected failures; an empty (or absent) plan leaves
    the run byte-identical to a fault-free one.
    """
    return Runtime(
        graph,
        platform,
        scheduler,
        eviction=eviction,
        window=window,
        seed=seed,
        record_trace=record_trace,
        decision_op_cost=decision_op_cost,
        dependencies=dependencies,
        sanitize=sanitize,
        faults=faults,
    ).run()
