"""Shared CPU↔GPU bus models.

All GPUs fetch input data from host memory over one bus (paper Fig. 2),
whose bounded bandwidth is the resource the schedulers compete for.  Two
contention models are provided:

* :class:`FairShareBus` — fluid processor sharing: ``t`` in-flight
  transfers each progress at ``bandwidth / t``.  This is how SimGrid
  models a shared PCIe link and is the default.
* :class:`FifoBus` — transfers fully serialised in request order at full
  bandwidth; simpler, slightly pessimistic for overlap.

Per-transfer ``latency`` is folded in as a bandwidth-equivalent byte count
(``latency × bandwidth`` extra bytes), which keeps the fluid model exact
while still penalising many small transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional
from collections import deque

from repro.platform.spec import BusSpec
from repro.simulator.engine import EventHandle, SimulationEngine
from repro.simulator.events import EventStream, TransferCompleted

#: Residual byte tolerance when deciding that a fluid transfer finished.
_COMPLETION_TOL_BYTES = 1e-3


@dataclass
class _Transfer:
    remaining: float  # bytes (latency-equivalent included)
    size: float  # payload bytes (for statistics)
    dst: int  # destination GPU index
    on_complete: Callable[[], None]


class Bus:
    """Common interface and statistics for bus models."""

    def __init__(
        self,
        engine: SimulationEngine,
        spec: BusSpec,
        events: Optional[EventStream] = None,
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.bytes_transferred: float = 0.0
        self.bytes_to: Dict[int, float] = {}
        self.n_transfers: int = 0
        #: instrumentation stream; a :class:`TransferCompleted` is
        #: published after each transfer is accounted (subscribed by the
        #: sanitizer's bus-conservation check)
        self.events: EventStream = events if events is not None else EventStream()

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        """Start moving ``size`` payload bytes to GPU ``dst``.

        ``data_id`` identifies the datum for routing layers (the NVLink
        fabric uses it to locate peer copies); plain buses ignore it.
        """
        raise NotImplementedError

    @property
    def busy(self) -> bool:
        raise NotImplementedError

    def _account(self, t: _Transfer) -> None:
        self.bytes_transferred += t.size
        self.bytes_to[t.dst] = self.bytes_to.get(t.dst, 0.0) + t.size
        self.n_transfers += 1
        if self.events.wants(TransferCompleted):
            self.events.publish(
                TransferCompleted(time=self.engine.now, bus=self)
            )


class FairShareBus(Bus):
    """Fluid fair sharing: each active transfer gets ``B / n_active``."""

    def __init__(
        self,
        engine: SimulationEngine,
        spec: BusSpec,
        events: Optional[EventStream] = None,
    ) -> None:
        super().__init__(engine, spec, events)
        self._active: List[_Transfer] = []
        self._last_update: float = 0.0
        self._completion: Optional[EventHandle] = None

    @property
    def busy(self) -> bool:
        return bool(self._active)

    def submit(self, size, dst, on_complete, data_id=None):
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        self._advance()
        self._active.append(
            _Transfer(
                remaining=size + self.spec.latency * self.spec.bandwidth,
                size=size,
                dst=dst,
                on_complete=on_complete,
            )
        )
        self._reschedule()

    def _advance(self) -> None:
        """Apply progress accrued since the last state change."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        rate = self.spec.bandwidth / len(self._active)
        for t in self._active:
            t.remaining -= dt * rate

    def _reschedule(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        if not self._active:
            return
        rate = self.spec.bandwidth / len(self._active)
        min_remaining = min(t.remaining for t in self._active)
        delay = max(min_remaining, 0.0) / rate
        self._completion = self.engine.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        done = [t for t in self._active if t.remaining <= _COMPLETION_TOL_BYTES]
        if not done:
            # Numeric drift: force-complete the most advanced transfer.
            done = [min(self._active, key=lambda t: t.remaining)]
        for t in done:
            self._active.remove(t)
        self._reschedule()
        for t in done:
            self._account(t)
            t.on_complete()


class FifoBus(Bus):
    """One transfer at a time, in request order, at full bandwidth."""

    def __init__(
        self,
        engine: SimulationEngine,
        spec: BusSpec,
        events: Optional[EventStream] = None,
    ) -> None:
        super().__init__(engine, spec, events)
        self._queue: Deque[_Transfer] = deque()
        self._current: Optional[_Transfer] = None

    @property
    def busy(self) -> bool:
        return self._current is not None or bool(self._queue)

    def submit(self, size, dst, on_complete, data_id=None):
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        self._queue.append(
            _Transfer(remaining=size, size=size, dst=dst, on_complete=on_complete)
        )
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._current is not None or not self._queue:
            return
        t = self._queue.popleft()
        self._current = t
        duration = self.spec.latency + t.size / self.spec.bandwidth
        self.engine.schedule(duration, self._finish)

    def _finish(self) -> None:
        t = self._current
        assert t is not None
        self._current = None
        self._maybe_start()
        self._account(t)
        t.on_complete()


def make_bus(
    engine: SimulationEngine,
    spec: BusSpec,
    events: Optional[EventStream] = None,
) -> Bus:
    """Instantiate the bus model selected by ``spec.model``."""
    if spec.model == "fair":
        return FairShareBus(engine, spec, events=events)
    if spec.model == "fifo":
        return FifoBus(engine, spec, events=events)
    raise ValueError(f"unknown bus model {spec.model!r}")
