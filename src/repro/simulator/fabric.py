"""Interconnect fabric: host bus plus optional NVLink-style peer links.

The paper's future-work section (§VI) proposes "tak[ing] inter-GPU
communications into account, such as the one proposed by NVidia NVLinks,
which enable fast data movement between pairs of GPUs without involving
the CPU.  Moving data from a nearby GPU is indeed usually faster than
loading it from the main memory."

:class:`PeerFabric` implements exactly that: when a requested datum is
already resident on another GPU, it is copied over a peer link (one
fair-shared egress channel per source GPU, off the host PCIe bus)
instead of re-fetched from main memory.  The source copy is pinned for
the duration so it cannot be evicted mid-transfer.  Data present nowhere
still come from the host over the shared PCIe bus.

Schedulers need no changes — the routing is at the memory-system level
behind the :class:`repro.simulator.routing.TransferRouter` interface,
just like CUDA peer-to-peer — so every strategy of the paper benefits
automatically; the ``bench_ablation_nvlink`` benchmark quantifies it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.platform.spec import BusSpec
from repro.simulator.bus import Bus, FairShareBus
from repro.simulator.engine import SimulationEngine
from repro.simulator.events import (
    EventStream,
    PeerTransferStarted,
    TransferFailed,
    TransferRetried,
)
from repro.simulator.routing import TransferRouter


class _PeerCopy:
    """One in-flight peer-link copy, poisoned if its source GPU dies."""

    __slots__ = ("src", "dst", "data_id", "size", "poisoned")

    def __init__(self, src: int, dst: int, data_id: int, size: float) -> None:
        self.src = src
        self.dst = dst
        self.data_id = data_id
        self.size = size
        self.poisoned = False


class PeerFabric(TransferRouter):
    """Routes fetches over peer links when a resident copy exists."""

    def __init__(
        self,
        engine: SimulationEngine,
        host_bus: Bus,
        peer_spec: BusSpec,
        n_gpus: int,
        events: Optional[EventStream] = None,
    ) -> None:
        self.engine = engine
        self.host_bus = host_bus
        self.events: Optional[EventStream] = events
        #: one egress channel per source GPU (fair-shared among its
        #: concurrent outgoing copies); instrumented on the same event
        #: stream as the host bus so bus-conservation checks cover them
        self.peer_channels: List[Bus] = [
            FairShareBus(engine, peer_spec, events=events)
            for _ in range(n_gpus)
        ]
        self._memories: Optional[Sequence[object]] = None
        #: in-flight peer copies, in submission order; device-failure
        #: injection poisons the entries whose source just died
        self._inflight: List[_PeerCopy] = []
        # statistics
        self.bytes_from_host: float = 0.0
        self.bytes_from_peer: float = 0.0
        self.peer_transfers: int = 0

    def attach(self, memories: Sequence[object]) -> None:
        """Wire the per-GPU memories (the kernel calls this once)."""
        self._memories = memories

    # ------------------------------------------------------------------
    def _locate(self, data_id: int, dst: int) -> Optional[int]:
        """Pick the source GPU for ``data_id``, or None for the host.

        Candidates are GPUs other than ``dst`` whose copy is fully
        PRESENT and not in the middle of being evicted — an eviction
        in progress (between victim selection and state removal, e.g.
        while :class:`~repro.simulator.events.EvictionStarted`
        subscribers run) must not be chosen as a source, since the copy
        is gone by the time the peer transfer would read it.  Ties are
        broken deterministically by taking the lowest GPU index, which
        keeps source selection a pure function of memory state.
        """
        assert self._memories is not None, "fabric not attached"
        for k, mem in enumerate(self._memories):
            if (
                k != dst
                and mem.is_present(data_id)
                and not mem.is_evicting(data_id)
            ):
                return k
        return None

    def on_device_failed(self, gpu: int) -> None:
        """GPU ``gpu`` died: poison its in-flight outgoing peer copies.

        The poisoned copies still occupy their (now dead) source channel
        until their modelled completion — the link hardware does not know
        the payload is garbage — at which point :meth:`submit`'s
        completion handler discards them and re-sources the datum from
        the host instead of delivering corrupt bytes.
        """
        for copy in self._inflight:
            if copy.src == gpu:
                copy.poisoned = True

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        src = self._locate(data_id, dst) if data_id is not None else None
        if src is None:
            self.bytes_from_host += size
            self.host_bus.submit(size, dst, on_complete, data_id=data_id)
            return
        # Pin the source copy so it survives until the copy lands.
        src_mem = self._memories[src]
        src_mem.pin(data_id)
        self.bytes_from_peer += size
        self.peer_transfers += 1
        record = _PeerCopy(src, dst, data_id, size)
        self._inflight.append(record)
        events = self.events
        if events is not None and events.wants(PeerTransferStarted):
            events.publish(
                PeerTransferStarted(
                    time=self.engine.now, src=src, dst=dst, data_id=data_id
                )
            )

        def done() -> None:
            self._inflight.remove(record)
            if record.poisoned:
                self._failover_to_host(record, on_complete)
                return
            src_mem.unpin(data_id)
            on_complete()

        self.peer_channels[src].submit(size, dst, done, data_id=data_id)

    def _failover_to_host(
        self, record: _PeerCopy, on_complete: Callable[[], None]
    ) -> None:
        """A peer copy's source died mid-transfer: refetch from host.

        The destination's fetch stays in FETCHING state throughout — its
        ``on_complete`` is simply carried over to the host resubmission —
        so the memory layer never observes the failure.  No source unpin
        happens (the source memory wiped its pin table when it failed).
        """
        dst_mem = (
            self._memories[record.dst] if self._memories is not None else None
        )
        events = self.events
        if events is not None and events.wants(TransferFailed):
            events.publish(
                TransferFailed(
                    time=self.engine.now,
                    gpu=record.dst,
                    data_id=record.data_id,
                    attempt=1,
                )
            )
        if dst_mem is not None and getattr(dst_mem, "failed", False):
            # both ends are gone; nobody is waiting for the payload
            on_complete()
            return
        if events is not None and events.wants(TransferRetried):
            events.publish(
                TransferRetried(
                    time=self.engine.now,
                    gpu=record.dst,
                    data_id=record.data_id,
                    attempt=2,
                )
            )
        self.bytes_from_host += record.size
        self.host_bus.submit(
            record.size, record.dst, on_complete, data_id=record.data_id
        )
