"""Discrete-event simulation of a multi-GPU node (SimGrid/StarPU substitute).

The simulator is layered:

* :mod:`repro.simulator.engine` — a deterministic discrete-event core;
* :mod:`repro.simulator.bus`, :mod:`repro.simulator.routing`,
  :mod:`repro.simulator.fabric` and :mod:`repro.simulator.memory` — the
  contended resources of the paper's platform (shared PCIe bus, optional
  NVLink-style peer links behind one ``TransferRouter`` interface,
  bounded per-GPU memory with pluggable eviction);
* :mod:`repro.simulator.kernel`, :mod:`repro.simulator.worker` and
  :mod:`repro.simulator.prefetch` — a StarPU-like runtime kernel that
  drives pluggable schedulers: per-GPU task buffers (prefetch windows),
  data fetches overlapping execution, task stealing, decision gating;
* :mod:`repro.simulator.events` — the typed :class:`EventStream` every
  layer publishes on; traces, the sanitizer and statistics are
  subscribers (see also :mod:`repro.simulator.view` for the read-only
  scheduler surface).

``simulate(graph, platform, scheduler, ...)`` is the main entry point;
:mod:`repro.simulator.runtime` keeps the stable public facade.
"""

from repro.simulator.engine import EventHandle, SimulationEngine
from repro.simulator.bus import Bus, FairShareBus, FifoBus, make_bus
from repro.simulator.events import EventStream, RuntimeEvent
from repro.simulator.routing import HostRouter, TransferRouter
from repro.simulator.memory import DataState, DeviceMemory, MemoryFullError
from repro.simulator.trace import RunResult, TraceEvent, TraceRecorder
from repro.simulator.kernel import RuntimeKernel
from repro.simulator.runtime import Runtime, RuntimeView, SimulationDeadlock, simulate

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "Bus",
    "FairShareBus",
    "FifoBus",
    "make_bus",
    "EventStream",
    "RuntimeEvent",
    "TransferRouter",
    "HostRouter",
    "DeviceMemory",
    "DataState",
    "MemoryFullError",
    "RuntimeKernel",
    "Runtime",
    "RuntimeView",
    "SimulationDeadlock",
    "simulate",
    "RunResult",
    "TraceEvent",
    "TraceRecorder",
]
