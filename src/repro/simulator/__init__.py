"""Discrete-event simulation of a multi-GPU node (SimGrid/StarPU substitute).

The simulator has three layers:

* :mod:`repro.simulator.engine` — a deterministic discrete-event core;
* :mod:`repro.simulator.bus` and :mod:`repro.simulator.memory` — the two
  contended resources of the paper's platform (shared PCIe bus, bounded
  per-GPU memory with pluggable eviction);
* :mod:`repro.simulator.runtime` — a StarPU-like runtime that drives
  pluggable schedulers: per-GPU task buffers (prefetch windows), data
  fetches overlapping execution, task stealing, eviction callbacks.

``simulate(graph, platform, scheduler, ...)`` is the main entry point.
"""

from repro.simulator.engine import EventHandle, SimulationEngine
from repro.simulator.bus import Bus, FairShareBus, FifoBus, make_bus
from repro.simulator.memory import DataState, DeviceMemory, MemoryFullError
from repro.simulator.trace import RunResult, TraceEvent, TraceRecorder
from repro.simulator.runtime import Runtime, RuntimeView, SimulationDeadlock, simulate

__all__ = [
    "SimulationEngine",
    "EventHandle",
    "Bus",
    "FairShareBus",
    "FifoBus",
    "make_bus",
    "DeviceMemory",
    "DataState",
    "MemoryFullError",
    "Runtime",
    "RuntimeView",
    "SimulationDeadlock",
    "simulate",
    "RunResult",
    "TraceEvent",
    "TraceRecorder",
]
