"""Per-GPU memory manager with pluggable eviction.

Tracks each datum's state on one GPU (absent / fetching / present),
reserves space when a fetch starts, evicts unpinned present data through
the configured eviction policy when space is needed, and queues fetch
requests that cannot yet be satisfied.

Pinning protocol (set by the runtime): inputs of the *currently executing*
task are pinned; data in flight cannot be evicted either.  Inputs of tasks
merely sitting in the task buffer are **not** pinned — they can be evicted
again before their task runs, which is exactly the "domino effect" the
paper describes for DARTS under LRU, and what the LUF policy is designed
to avoid.

Evictions are free in time: the paper's model has read-only inputs, so no
write-back occurs.

Instrumentation rides the :class:`repro.simulator.events.EventStream`
passed at construction: :class:`~repro.simulator.events.FetchIssued`,
:class:`~repro.simulator.events.FetchCompleted`,
:class:`~repro.simulator.events.EvictionStarted`,
:class:`~repro.simulator.events.Evicted` and
:class:`~repro.simulator.events.MemoryUsageChanged` replace the bespoke
callback/observer attributes the memory used to carry.  Every publish is
guarded by :meth:`~repro.simulator.events.EventStream.wants`, so with no
subscriber the hot fetch path costs one dict lookup — no closure is
allocated and no call is made.
"""

from __future__ import annotations

import enum
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.simulator.engine import SimulationEngine
from repro.simulator.events import (
    Evicted,
    EvictionStarted,
    EventStream,
    FetchCompleted,
    FetchIssued,
    MemoryUsageChanged,
)
from repro.simulator.routing import TransferRouter


class MemoryFullError(Exception):
    """Raised when a request can never be satisfied (inputs > capacity)."""


class DataState(enum.Enum):
    FETCHING = "fetching"
    PRESENT = "present"
    #: space reserved for an output being produced by a running task
    ALLOCATED = "allocated"


class EvictionPolicyProtocol:
    """What :class:`DeviceMemory` needs from an eviction policy.

    Concrete policies live in :mod:`repro.eviction`; this base only fixes
    the contract so the simulator has no import dependency on them.
    """

    name = "abstract"

    def on_insert(self, data_id: int) -> None:
        """``data_id`` became PRESENT."""

    def on_access(self, data_id: int) -> None:
        """``data_id`` is read by a task starting now."""

    def on_evict(self, data_id: int) -> None:
        """``data_id`` was evicted."""

    def on_device_lost(self, gpu: int) -> None:
        """GPU ``gpu`` (not necessarily this policy's) failed; drop any
        cached cross-device state.  Default: nothing to drop."""

    def choose_victim(self, candidates: Set[int]) -> int:
        raise NotImplementedError


class DeviceMemory:
    """Bounded memory of one GPU, fed through a :class:`TransferRouter`."""

    def __init__(
        self,
        engine: SimulationEngine,
        router: TransferRouter,
        gpu_index: int,
        capacity_bytes: float,
        data_sizes: Sequence[float],
        policy: EvictionPolicyProtocol,
        events: Optional[EventStream] = None,
        data_available: Optional[Callable[[int], bool]] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.router = router
        self.gpu = gpu_index
        self.capacity = float(capacity_bytes)
        self.sizes = data_sizes
        self.policy = policy
        #: instrumentation stream shared with the rest of the runtime
        self.events: EventStream = events if events is not None else EventStream()
        #: whether a datum can currently be fetched at all (produced
        #: data are unavailable until written back or peer-resident)
        self._data_available = data_available
        self._state: Dict[int, DataState] = {}
        self._pins: Dict[int, int] = {}
        # Derived sets, maintained incrementally on every state
        # transition so the hot queries (``present_set``/``held_set``/
        # ``evictable``/``fetching_set``) never rescan ``_state``.
        # ``check_invariants`` asserts they match a from-scratch
        # recomputation.
        self._present: Set[int] = set()
        self._fetching: Set[int] = set()
        self._evictable: Set[int] = set()
        self.used: float = 0.0
        # pending fetches: (datum, data protected from eviction for it)
        self._pending: List[Tuple[int, FrozenSet[int]]] = []
        self._pending_set: Set[int] = set()
        #: data whose eviction has begun but not yet finished — peer
        #: routing must not pick these as transfer sources
        self._evicting: Set[int] = set()
        #: set by :meth:`fail` on device loss; all operations become
        #: no-ops so late transfer completions land harmlessly
        self.failed: bool = False
        # statistics
        self.n_loads: int = 0
        self.bytes_loaded: float = 0.0
        self.n_evictions: int = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state(self, d: int) -> Optional[DataState]:
        return self._state.get(d)

    def is_present(self, d: int) -> bool:
        return self._state.get(d) is DataState.PRESENT

    def is_fetching(self, d: int) -> bool:
        return self._state.get(d) is DataState.FETCHING

    def is_evicting(self, d: int) -> bool:
        """Whether ``d`` is mid-eviction (unsafe as a peer-copy source)."""
        return d in self._evicting

    def holds(self, d: int) -> bool:
        """Present or on its way (space already reserved)."""
        return d in self._state

    def present_set(self) -> Set[int]:
        return set(self._present)

    def fetching_set(self) -> Set[int]:
        return set(self._fetching)

    def held_set(self) -> Set[int]:
        return set(self._state)

    def is_pinned(self, d: int) -> bool:
        return self._pins.get(d, 0) > 0

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def evictable(self) -> Set[int]:
        """Present, unpinned data — the candidate set for eviction."""
        return set(self._evictable)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def pin(self, d: int) -> None:
        if self.failed:
            return
        c = self._pins.get(d, 0)
        self._pins[d] = c + 1
        if c == 0:
            self._evictable.discard(d)

    def unpin(self, d: int) -> None:
        if self.failed:
            return
        c = self._pins.get(d, 0)
        if c <= 0:
            raise ValueError(f"unpin of unpinned data {d} on GPU {self.gpu}")
        if c == 1:
            del self._pins[d]
            if d in self._present:
                self._evictable.add(d)
        else:
            self._pins[d] = c - 1
        self._drain_pending()

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def request(self, d: int, protected: Iterable[int] = ()) -> None:
        """Ask for ``d`` to become present; idempotent while in flight.

        ``protected`` data are exempt from eviction when making room for
        *this* fetch — the runtime passes the input set of the task about
        to run, enforcing the paper's ``V(k,i) ∩ D(T_σ(k,i)) = ∅`` rule
        for the head task (deeper prefetches stay unprotected, which is
        what allows the LRU "domino effect" the paper describes).
        """
        if self.failed:
            return
        if d in self._state or d in self._pending_set:
            return
        if self.sizes[d] > self.capacity:
            raise MemoryFullError(
                f"datum {d} ({self.sizes[d]:.0f}B) exceeds GPU {self.gpu} "
                f"capacity {self.capacity:.0f}B"
            )
        self._pending.append((d, frozenset(protected)))
        self._pending_set.add(d)
        self._drain_pending()

    def touch(self, d: int) -> None:
        """Record a use of present datum ``d`` (task start)."""
        self.policy.on_access(d)

    def retry_pending(self) -> None:
        """Re-attempt queued fetches (data availability changed)."""
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Launch queued fetches in request order.

        Entries whose datum is not yet *available* (an output that has
        not been written back anywhere reachable) are skipped without
        blocking later entries; running out of space stops the drain
        (space is the ordered resource).
        """
        if self.failed:
            return
        i = 0
        while i < len(self._pending):
            d, protected = self._pending[i]
            if d in self._state:  # raced: someone else satisfied it
                del self._pending[i]
                self._pending_set.discard(d)
                continue
            if self._data_available is not None and not self._data_available(d):
                i += 1
                continue
            if not self._make_room(self.sizes[d], protected):
                return
            del self._pending[i]
            self._pending_set.discard(d)
            self._state[d] = DataState.FETCHING
            self._fetching.add(d)
            self.used += self.sizes[d]
            self._sanitize_usage()
            if self.events.wants(FetchIssued):
                self.events.publish(
                    FetchIssued(time=self.engine.now, gpu=self.gpu, data_id=d)
                )
            self.router.submit(
                self.sizes[d],
                self.gpu,
                lambda dd=d: self._fetch_done(dd),
                data_id=d,
            )

    # ------------------------------------------------------------------
    # output data (the paper's output extension)
    # ------------------------------------------------------------------
    def allocate_output(self, d: int, protected: Iterable[int] = ()) -> bool:
        """Reserve space for output ``d`` (no transfer); pin it.

        Returns False when no space can be made right now (caller
        retries on the next poke).  Idempotent for already-allocated
        outputs.
        """
        if self.failed:
            return False
        if d in self._state:
            if self._state[d] is DataState.ALLOCATED:
                return True
            raise ValueError(f"output {d} already has state {self._state[d]}")
        if not self._make_room(self.sizes[d], frozenset(protected)):
            return False
        self._state[d] = DataState.ALLOCATED
        self.used += self.sizes[d]
        self._sanitize_usage()
        self.pin(d)
        return True

    def mark_produced(self, d: int) -> None:
        """Output ``d`` finished computing: it is now resident data."""
        if self._state.get(d) is not DataState.ALLOCATED:
            raise ValueError(f"datum {d} was not allocated as an output")
        self._state[d] = DataState.PRESENT
        self._present.add(d)
        if self._pins.get(d, 0) == 0:
            self._evictable.add(d)
        self.policy.on_insert(d)

    def _make_room(self, size: float, protected: FrozenSet[int] = frozenset()) -> bool:
        """Evict until ``size`` bytes are free; False if impossible now."""
        while self.capacity - self.used < size:
            # goes through the public ``evictable()`` seam (tests inject
            # faults there); it is a cheap set copy now, not a rescan
            candidates = self.evictable() - protected
            if not candidates:
                return False
            victim = self.policy.choose_victim(candidates)
            if victim not in candidates:
                raise RuntimeError(
                    f"policy {self.policy.name} chose non-candidate {victim}"
                )
            self.evict(victim)
        return True

    def evict(self, d: int) -> None:
        """Drop present, unpinned datum ``d`` (no write-back)."""
        self._evicting.add(d)
        try:
            if self.events.wants(EvictionStarted):
                self.events.publish(
                    EvictionStarted(
                        time=self.engine.now,
                        gpu=self.gpu,
                        data_id=d,
                        pinned=self.is_pinned(d),
                    )
                )
            if self._state.get(d) is not DataState.PRESENT:
                raise ValueError(f"cannot evict non-present datum {d}")
            if self.is_pinned(d):
                raise ValueError(f"cannot evict pinned datum {d}")
            del self._state[d]
            self._present.discard(d)
            self._evictable.discard(d)
            self.used -= self.sizes[d]
            self._sanitize_usage()
            self.n_evictions += 1
            self.policy.on_evict(d)
            if self.events.wants(Evicted):
                self.events.publish(
                    Evicted(time=self.engine.now, gpu=self.gpu, data_id=d)
                )
        finally:
            self._evicting.discard(d)

    def _fetch_done(self, d: int) -> None:
        if self.failed:
            return  # late completion of a transfer into a dead device
        assert self._state.get(d) is DataState.FETCHING
        self._state[d] = DataState.PRESENT
        self._fetching.discard(d)
        self._present.add(d)
        if self._pins.get(d, 0) == 0:
            self._evictable.add(d)
        self.n_loads += 1
        self.bytes_loaded += self.sizes[d]
        self.policy.on_insert(d)
        self._drain_pending()
        if self.events.wants(FetchCompleted):
            self.events.publish(
                FetchCompleted(
                    time=self.engine.now,
                    gpu=self.gpu,
                    data_id=d,
                    size=self.sizes[d],
                )
            )

    def _sanitize_usage(self) -> None:
        if self.events.wants(MemoryUsageChanged):
            self.events.publish(
                MemoryUsageChanged(
                    time=self.engine.now,
                    gpu=self.gpu,
                    used=self.used,
                    capacity=self.capacity,
                )
            )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail(self) -> Set[int]:
        """Device loss: wipe every replica and freeze this memory.

        Returns the set of data the device held or was fetching (the
        kernel publishes a
        :class:`~repro.simulator.events.DataReplicaLost` per datum).
        All subsequent operations — including completions of transfers
        that were already in flight toward this GPU — become no-ops, so
        nothing is re-materialised on a dead device.
        """
        lost = set(self._state)
        self.failed = True
        self._state.clear()
        self._pins.clear()
        self._present.clear()
        self._fetching.clear()
        self._evictable.clear()
        self._pending.clear()
        self._pending_set.clear()
        self._evicting.clear()
        self.used = 0.0
        return lost

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Accounting invariants; used by tests after every run."""
        acc = sum(self.sizes[d] for d in self._state)
        assert abs(acc - self.used) < 1e-6, (
            f"GPU {self.gpu}: used={self.used} but states sum to {acc}"
        )
        assert self.used <= self.capacity + 1e-6
        for d in self._pins:
            assert d in self._state, f"pinned datum {d} not held"
        # the incrementally-maintained sets must equal a fresh rescan
        present = {d for d, s in self._state.items() if s is DataState.PRESENT}
        fetching = {d for d, s in self._state.items() if s is DataState.FETCHING}
        evictable = {d for d in present if self._pins.get(d, 0) == 0}
        assert self._present == present, (
            f"GPU {self.gpu}: incremental present {self._present} != {present}"
        )
        assert self._fetching == fetching, (
            f"GPU {self.gpu}: incremental fetching {self._fetching} != {fetching}"
        )
        assert self._evictable == evictable, (
            f"GPU {self.gpu}: incremental evictable {self._evictable} != {evictable}"
        )
