"""Deterministic discrete-event core.

A binary heap of ``(time, sequence, callback)`` entries.  The sequence
number makes simultaneous events fire in scheduling order, so a run is a
pure function of its inputs — the property every test and every
"same seed ⇒ same trace" guarantee in this package rests on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.simulator.events import EngineStep, EventStream


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class SimulationEngine:
    """Event loop with virtual time."""

    def __init__(self, events: Optional[EventStream] = None) -> None:
        self.now: float = 0.0
        self._heap: List[_Entry] = []
        self._seq = 0
        self._events_fired = 0
        #: instrumentation stream; an :class:`EngineStep` is published
        #: before each event fires (subscribed by the sanitizer's
        #: monotonicity check).  Costs one dict lookup when nobody
        #: subscribed.
        self.events: EventStream = events if events is not None else EventStream()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at ``now + delay``.  ``delay`` must be ≥ 0."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute virtual ``time`` ≥ ``now``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        entry = _Entry(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if self.events.wants(EngineStep):
                self.events.publish(EngineStep(time=entry.time, now=self.now))
            self.now = entry.time
            self._events_fired += 1
            entry.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue (optionally stopping at time ``until``).

        ``max_events`` is a runaway guard; hitting it raises RuntimeError
        instead of spinning forever on a buggy model.
        """
        fired = 0
        while self._heap:
            if until is not None and self._peek_time() > until:
                self.now = until
                return
            if not self.step():
                return
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a livelock in the model"
                )

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else float("inf")

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired
