"""Deterministic discrete-event core.

A binary heap of ``(time, sequence, entry)`` tuples.  The sequence
number makes simultaneous events fire in scheduling order, so a run is a
pure function of its inputs — the property every test and every
"same seed ⇒ same trace" guarantee in this package rests on.

Performance notes (profile-guided; see ``benchmarks/bench_core.py``):

* Heap items are plain tuples keyed on ``(time, seq)``; because every
  ``seq`` is unique the comparison never falls through to the payload,
  and tuple comparison is an order of magnitude cheaper than the
  ``@dataclass(order=True)`` wrapper it replaces.
* The entry payload itself is a ``__slots__`` object so cancellation
  flags stay shared between the heap and its :class:`EventHandle`.
* ``pending`` is an O(1) counter maintained on schedule/fire/cancel
  instead of an O(n) scan.
* Cancelled entries are removed lazily; when they outnumber the live
  ones (more than half the heap) the heap is compacted in one pass.
  Compaction is invisible to the event order: heap keys are unique, so
  pops always return entries in exact ``(time, seq)`` order regardless
  of the heap's internal layout.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.simulator.events import EngineStep, EventStream

#: Below this heap size compaction is pointless — the lazy drain in
#: ``step``/``_peek_time`` collects garbage fast enough.
_COMPACT_MIN = 64


class _Entry:
    """Heap payload.  Identity is carried by the ``(time, seq)`` key of
    the enclosing tuple; the payload only holds the callback and the
    cancellation flag shared with :class:`EventHandle`."""

    __slots__ = ("callback", "cancelled")

    def __init__(self, callback: Optional[Callable[[], None]]) -> None:
        self.callback = callback
        self.cancelled = False


class EventHandle:
    """Returned by :meth:`SimulationEngine.schedule`; allows cancellation."""

    __slots__ = ("_engine", "_entry", "_time")

    def __init__(self, engine: "SimulationEngine", entry: _Entry, time: float) -> None:
        self._engine = engine
        self._entry = entry
        self._time = time

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        entry = self._entry
        if not entry.cancelled:
            entry.cancelled = True
            self._engine._note_cancel(entry)

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._time


class SimulationEngine:
    """Event loop with virtual time."""

    def __init__(self, events: Optional[EventStream] = None) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, _Entry]] = []
        self._seq = 0
        self._events_fired = 0
        #: live (scheduled, not yet fired, not cancelled) entries.
        self._live = 0
        #: cancelled entries still sitting in the heap.
        self._dead = 0
        #: instrumentation stream; an :class:`EngineStep` is published
        #: before each event fires (subscribed by the sanitizer's
        #: monotonicity check).  Costs one dict lookup when nobody
        #: subscribed.
        self.events: EventStream = events if events is not None else EventStream()

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at ``now + delay``.  ``delay`` must be ≥ 0."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute virtual ``time`` ≥ ``now``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        entry = _Entry(callback)
        heapq.heappush(self._heap, (time, self._seq, entry))
        self._seq += 1
        self._live += 1
        return EventHandle(self, entry, time)

    def _note_cancel(self, entry: _Entry) -> None:
        """Move one entry from the live to the dead count (cancel path)."""
        if entry.callback is None:
            return  # already fired or already drained from the heap
        self._live -= 1
        self._dead += 1
        if self._dead * 2 > len(self._heap) and len(self._heap) >= _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any moment: heap keys ``(time, seq)`` are unique, so the
        pop order after a heapify is identical to the pop order of the
        incrementally-built heap.
        """
        live_items = []
        for item in self._heap:
            entry = item[2]
            if entry.cancelled:
                entry.callback = None
            else:
                live_items.append(item)
        self._heap = live_items
        heapq.heapify(self._heap)
        self._dead = 0

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            time, _seq, entry = heapq.heappop(self._heap)
            if entry.cancelled:
                entry.callback = None
                self._dead -= 1
                continue
            if self.events.wants(EngineStep):
                self.events.publish(EngineStep(time=time, now=self.now))
            self.now = time
            self._events_fired += 1
            self._live -= 1
            callback = entry.callback
            entry.callback = None
            assert callback is not None
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain the event queue (optionally stopping at time ``until``).

        With ``until`` set, every live event scheduled at or before
        ``until`` fires, then ``now`` advances to ``until`` (never
        backward: ``until < now`` leaves the clock alone).  Cancelled
        entries are drained without ever touching the clock, so a
        cancel-then-reschedule pattern cannot push ``now`` past a live
        event (see ``test_engine.py::test_cancel_then_reschedule``).

        ``max_events`` is a runaway guard; hitting it raises RuntimeError
        instead of spinning forever on a buggy model.
        """
        fired = 0
        while self._heap:
            if until is not None and self._peek_time() > until:
                break
            if not self.step():
                break
            fired += 1
            if fired > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a livelock in the model"
                )
        if until is not None and until > self.now:
            self.now = until

    def _peek_time(self) -> float:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heap[0][2].callback = None
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0][0] if heap else float("inf")

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events (O(1))."""
        return self._live

    @property
    def events_fired(self) -> int:
        return self._events_fired
