"""Deterministic fault injection: the plan the runtime executes against.

Production multi-GPU nodes lose devices, corrupt transfers, and grow
stragglers; a runtime that only ever sees a healthy platform produces a
wrong or hung schedule the first time one of those happens.  This module
defines the **fault plan** — a frozen, serializable description of what
goes wrong and when — that :class:`repro.simulator.kernel.RuntimeKernel`
executes against:

* :class:`DeviceFailure` — GPU ``gpu`` dies at virtual time ``time``:
  its in-flight task is cancelled, its memory replicas are lost, and its
  running + buffered tasks are requeued through the scheduler's
  ``on_device_lost`` hook;
* :class:`TransferCorruption` — every identified fetch completion is
  corrupted with probability ``probability`` and retried with bounded
  exponential backoff (see
  :class:`repro.simulator.routing.RetryingRouter`);
* :class:`StragglerSlowdown` — GPU ``gpu`` computes ``factor``× slower
  than its spec (transfers are unaffected).

Determinism contract: all randomness is drawn from one
``random.Random(plan.seed)`` owned by the injection layer — the
scheduler rng is untouched — so a fixed plan yields a byte-identical
trace digest, and an **empty** plan leaves every digest byte-identical
to an un-faulted run (no wrapper is installed, no draw is made, no
event is published).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple


@dataclass(frozen=True)
class DeviceFailure:
    """GPU ``gpu`` fails permanently at virtual time ``time``."""

    gpu: int
    time: float


@dataclass(frozen=True)
class TransferCorruption:
    """Transient transfer corruption applied to every identified fetch.

    Each completed fetch is corrupted with ``probability``; a corrupted
    transfer is retried after ``backoff_base * backoff_factor**(attempt-1)``
    virtual seconds.  After ``max_retries`` failed attempts the next
    attempt is forced to succeed — the model degrades gracefully instead
    of livelocking the simulation on an unlucky seed.
    """

    probability: float
    max_retries: int = 5
    backoff_base: float = 1e-4
    backoff_factor: float = 2.0


@dataclass(frozen=True)
class StragglerSlowdown:
    """GPU ``gpu`` computes ``factor``× slower than its spec."""

    gpu: int
    factor: float


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one simulated run, and when."""

    seed: int = 0
    device_failures: Tuple[DeviceFailure, ...] = ()
    transfer_faults: Optional[TransferCorruption] = None
    stragglers: Tuple[StragglerSlowdown, ...] = field(default_factory=tuple)

    def is_empty(self) -> bool:
        """True when the plan injects nothing (runs must be byte-identical
        to a fault-free run)."""
        return (
            not self.device_failures
            and self.transfer_faults is None
            and not self.stragglers
        )

    def validate(self, n_gpus: int) -> None:
        """Reject plans the recovery machinery cannot honor."""
        seen = set()
        for f in self.device_failures:
            if not 0 <= f.gpu < n_gpus:
                raise ValueError(
                    f"device failure targets GPU {f.gpu} but the platform "
                    f"has {n_gpus}"
                )
            if f.time < 0:
                raise ValueError(f"device failure time {f.time!r} < 0")
            if f.gpu in seen:
                raise ValueError(f"GPU {f.gpu} fails twice in the plan")
            seen.add(f.gpu)
        if len(seen) >= n_gpus and n_gpus > 0:
            raise ValueError(
                "the plan kills every GPU; at least one must survive"
            )
        tf = self.transfer_faults
        if tf is not None:
            if not 0.0 <= tf.probability < 1.0:
                raise ValueError(
                    f"corruption probability {tf.probability!r} not in [0, 1)"
                )
            if tf.max_retries < 0:
                raise ValueError("max_retries must be >= 0")
            if tf.backoff_base < 0 or tf.backoff_factor <= 0:
                raise ValueError("backoff parameters must be positive")
        for s in self.stragglers:
            if not 0 <= s.gpu < n_gpus:
                raise ValueError(
                    f"straggler targets GPU {s.gpu} but the platform "
                    f"has {n_gpus}"
                )
            if s.factor <= 0:
                raise ValueError(f"straggler factor {s.factor!r} must be > 0")

    # ------------------------------------------------------------------
    # serialization (CLI --fault-plan, experiment cache keys)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict; stable keys for cache fingerprinting."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        failures = tuple(
            DeviceFailure(**f) for f in payload.get("device_failures", ())
        )
        tf = payload.get("transfer_faults")
        stragglers = tuple(
            StragglerSlowdown(**s) for s in payload.get("stragglers", ())
        )
        return cls(
            seed=int(payload.get("seed", 0)),
            device_failures=failures,
            transfer_faults=(
                TransferCorruption(**tf) if tf is not None else None
            ),
            stragglers=stragglers,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def load_fault_plan(source: str) -> FaultPlan:
    """Parse a fault plan from inline JSON or a JSON file path."""
    text = source.strip()
    if not text.startswith("{"):
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    return FaultPlan.from_json(text)


__all__ = [
    "DeviceFailure",
    "FaultPlan",
    "StragglerSlowdown",
    "TransferCorruption",
    "load_fault_plan",
]
