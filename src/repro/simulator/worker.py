"""Per-GPU worker: task-buffer state and the execution state machine.

Each GPU runs one :class:`Worker` holding a :class:`WorkerState` — the
bounded task buffer (the paper's ``taskBuffer_k``), the currently
executing task, a task staged by admission control, and the decision
gate bookkeeping.  The worker starts the head task once all its inputs
are resident (pinning them for the duration), completes it, hands
outputs to the write-back channel, and notifies the scheduler.

Workers publish :class:`~repro.simulator.events.TaskStarted`,
:class:`~repro.simulator.events.TaskCompleted` and
:class:`~repro.simulator.events.WriteBackStarted` on the kernel's event
stream; trace recording, invariant checking and statistics are
subscribers, not inlined concerns.
"""

from __future__ import annotations

import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Optional

from repro.simulator.engine import EventHandle
from repro.simulator.events import TaskCompleted, TaskStarted, WriteBackStarted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.kernel import RuntimeKernel


@dataclass
class WorkerState:
    """Mutable per-GPU scheduling state (exposed via ``kernel.workers``)."""

    buffer: Deque[int] = field(default_factory=deque)
    executing: Optional[int] = None
    staged: Optional[int] = None  # task held back by admission control
    exhausted: bool = False  # scheduler returned None on the last poll
    #: virtual time at which this GPU's scheduler thread is next free;
    #: decisions execute sequentially on it
    sched_free_at: float = 0.0
    #: pending wake-up for a decision-gated head task
    gate_event: Optional[EventHandle] = None
    #: completion event of the executing task — cancelled when the
    #: device fails so a dead GPU never reports a task done
    exec_event: Optional[EventHandle] = None


class Worker:
    """Execution loop of one GPU: start the head task, complete it."""

    __slots__ = ("kernel", "gpu", "state")

    def __init__(
        self, kernel: "RuntimeKernel", gpu: int, state: WorkerState
    ) -> None:
        self.kernel = kernel
        self.gpu = gpu
        self.state = state

    def try_start(self) -> None:
        """Start the buffered head task if its inputs are all resident."""
        k = self.kernel
        w = self.state
        gpu = self.gpu
        if w.executing is not None or not w.buffer:
            return
        head = w.buffer[0]
        gate = k._task_gate.get(head, 0.0)
        if k.engine.now < gate:
            # The scheduling decision for this task is still "running";
            # wake up when it completes.
            if w.gate_event is None or w.gate_event.cancelled:
                w.gate_event = k.engine.schedule_at(gate, self._gate_expired)
            return
        mem = k.memories[gpu]
        inputs = k.graph.inputs_of(head)
        outputs = k.graph.outputs_of(head)
        ready = True
        for d in inputs:
            if not mem.is_present(d):
                # Re-request anything evicted meanwhile, shielding the
                # head task's other inputs from being evicted for it.
                mem.request(d, protected=inputs)
                ready = False
        if not ready:
            return
        protected = tuple(inputs) + tuple(outputs)
        for o in outputs:
            if not mem.allocate_output(o, protected=protected):
                return  # no space yet; retried on the next poke
        w.buffer.popleft()
        k._task_gate.pop(head, None)
        w.executing = head
        for d in inputs:
            mem.touch(d)
            mem.pin(d)
        if k.events.wants(TaskStarted):
            k.events.publish(
                TaskStarted(
                    time=k.engine.now,
                    gpu=gpu,
                    task=head,
                    inputs=tuple(inputs),
                )
            )
        duration = k.graph.tasks[head].flops / (
            k.platform.gpus[gpu].gflops * 1e9
        )
        slowdown = k._slowdown[gpu]
        if slowdown != 1.0:
            duration *= slowdown
        w.exec_event = k.engine.schedule(
            duration, lambda: self._on_task_done(head, duration)
        )
        # Execution frees a buffer slot: pull more work to prefetch.
        k.prefetcher.fill_buffer(gpu)

    def _gate_expired(self) -> None:
        self.state.gate_event = None
        self.kernel._poke(self.gpu)

    def _on_task_done(self, task: int, duration: float) -> None:
        k = self.kernel
        w = self.state
        gpu = self.gpu
        assert w.executing == task
        w.exec_event = None
        mem = k.memories[gpu]
        for d in k.graph.inputs_of(task):
            mem.unpin(d)
        # Outputs become resident data and are eagerly written back to
        # the host over the bus; they stay pinned until the store lands.
        for o in k.graph.outputs_of(task):
            mem.mark_produced(o)
            if k.events.wants(WriteBackStarted):
                k.events.publish(
                    WriteBackStarted(
                        time=k.engine.now,
                        gpu=gpu,
                        data_id=o,
                        size=k.sizes[o],
                    )
                )
            k.store_router.submit(
                k.sizes[o],
                gpu,
                lambda oo=o: k._store_done(gpu, oo),
            )
        w.executing = None
        k.executed_order[gpu].append(task)
        if k.events.wants(TaskCompleted):
            k.events.publish(
                TaskCompleted(
                    time=k.engine.now,
                    gpu=gpu,
                    task=task,
                    duration=duration,
                    flops=k.graph.tasks[task].flops,
                )
            )
        k._remaining -= 1
        if k._remaining == 0 and k._fault_handles:
            # Nothing left to fail: cancel pending injected failures so
            # they cannot drain the heap past the true makespan.
            k._cancel_pending_faults()

        if k.dependencies is not None:
            for succ in k.dependencies.succs[task]:
                k._indegree[succ] -= 1

        t0 = _time.perf_counter()
        k.scheduler.task_done(gpu, task)
        k._decision_time += _time.perf_counter() - t0

        # Completion may unblock anyone (stealing, DARTS refills, fetches).
        k._poke_all()


__all__ = ["Worker", "WorkerState"]
