"""Transfer routing: which transport serves a data movement.

:class:`repro.simulator.memory.DeviceMemory` asks for bytes; it does not
care whether they arrive over the shared host PCIe bus, a dedicated
store (write-back) channel, or an NVLink-style peer link.  All of those
sit behind the one :class:`TransferRouter` interface:

* :class:`HostRouter` — every transfer rides the one bus it wraps (the
  paper's base platform: all fetches come from host memory);
* :class:`repro.simulator.fabric.PeerFabric` — routes a fetch over a
  peer link when another GPU already holds the datum, falling back to
  the host bus (the paper's §VI NVLink extension).

Routers also own the host/peer traffic split statistics that
:class:`repro.simulator.trace.RunResult` reports, so the kernel reads
them uniformly regardless of the configured transport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.simulator.bus import Bus
from repro.simulator.events import TransferFailed, TransferRetried

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.simulator.engine import SimulationEngine
    from repro.simulator.events import EventStream
    from repro.simulator.faults import TransferCorruption


class TransferRouter:
    """Source selection + submission interface for data movements.

    Implementations must be deterministic: the same request sequence
    must pick the same sources and produce the same completion times
    (the repo's same-seed ⇒ same-trace contract).
    """

    #: cumulative payload bytes served from host memory
    bytes_from_host: float = 0.0
    #: cumulative payload bytes served GPU-to-GPU
    bytes_from_peer: float = 0.0

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        """Start moving ``size`` payload bytes to GPU ``dst``.

        ``data_id`` identifies the datum so routing layers can locate
        alternative sources; transport-agnostic callers always pass it.
        """
        raise NotImplementedError

    @property
    def bytes_transferred(self) -> float:
        return self.bytes_from_host + self.bytes_from_peer

    def peer_fraction(self) -> float:
        """Share of traffic served by peer links instead of the host."""
        total = self.bytes_transferred
        return self.bytes_from_peer / total if total > 0 else 0.0


class HostRouter(TransferRouter):
    """Trivial router: every transfer goes over the one wrapped bus.

    Used for the paper's base platform (fetches from host memory over
    the shared PCIe bus) and for the dedicated full-duplex write-back
    channel of the output-data extension.
    """

    def __init__(self, bus: Bus) -> None:
        self.bus = bus
        self.bytes_from_host = 0.0
        self.bytes_from_peer = 0.0

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        self.bytes_from_host += size
        self.bus.submit(size, dst, on_complete, data_id=data_id)


class RetryingRouter(TransferRouter):
    """Bounded exponential-backoff retry around another router.

    Installed by the kernel when the fault plan carries a
    :class:`repro.simulator.faults.TransferCorruption` spec.  Every
    identified fetch completion draws once from the injector's seeded
    rng; a corrupted completion is reported as
    :class:`~repro.simulator.events.TransferFailed` and resubmitted to
    the inner router after ``backoff_base * backoff_factor**(attempt-1)``
    virtual seconds (:class:`~repro.simulator.events.TransferRetried`).
    After ``max_retries`` corrupted attempts the next attempt succeeds
    unconditionally — bounded retry, graceful degradation.

    Completions into a dead destination are passed straight through
    (the failed memory ignores them) without drawing or retrying, so no
    backoff event can outlive the work that needed the data.  Byte
    accounting lives in the inner router; retries re-account each
    attempt, which is the physical behaviour (the bytes really moved
    again).
    """

    def __init__(
        self,
        inner: TransferRouter,
        engine: "SimulationEngine",
        rng: "random.Random",
        corruption: "TransferCorruption",
        events: "EventStream",
        alive: Callable[[int], bool],
    ) -> None:
        self.inner = inner
        self.engine = engine
        self.rng = rng
        self.corruption = corruption
        self.events = events
        self.alive = alive

    @property
    def bytes_from_host(self) -> float:  # type: ignore[override]
        return self.inner.bytes_from_host

    @property
    def bytes_from_peer(self) -> float:  # type: ignore[override]
        return self.inner.bytes_from_peer

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        if data_id is None:
            # Unidentified traffic (write-back channel) is never wrapped
            # by the kernel; keep the passthrough for direct users.
            self.inner.submit(size, dst, on_complete, data_id=data_id)
            return
        self._attempt(size, dst, on_complete, data_id, attempt=1)

    def _attempt(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: int,
        attempt: int,
    ) -> None:
        spec = self.corruption

        def done() -> None:
            if not self.alive(dst):
                on_complete()  # dead destination ignores the payload
                return
            if (
                attempt <= spec.max_retries
                and self.rng.random() < spec.probability
            ):
                events = self.events
                if events.wants(TransferFailed):
                    events.publish(
                        TransferFailed(
                            time=self.engine.now,
                            gpu=dst,
                            data_id=data_id,
                            attempt=attempt,
                        )
                    )
                delay = spec.backoff_base * (
                    spec.backoff_factor ** (attempt - 1)
                )
                self.engine.schedule(
                    delay,
                    lambda: self._retry(size, dst, on_complete, data_id, attempt),
                )
                return
            on_complete()

        self.inner.submit(size, dst, done, data_id=data_id)

    def _retry(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: int,
        failed_attempt: int,
    ) -> None:
        if not self.alive(dst):
            return  # destination died during the backoff; nobody waits
        events = self.events
        if events.wants(TransferRetried):
            events.publish(
                TransferRetried(
                    time=self.engine.now,
                    gpu=dst,
                    data_id=data_id,
                    attempt=failed_attempt + 1,
                )
            )
        self._attempt(size, dst, on_complete, data_id, failed_attempt + 1)
