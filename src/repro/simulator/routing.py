"""Transfer routing: which transport serves a data movement.

:class:`repro.simulator.memory.DeviceMemory` asks for bytes; it does not
care whether they arrive over the shared host PCIe bus, a dedicated
store (write-back) channel, or an NVLink-style peer link.  All of those
sit behind the one :class:`TransferRouter` interface:

* :class:`HostRouter` — every transfer rides the one bus it wraps (the
  paper's base platform: all fetches come from host memory);
* :class:`repro.simulator.fabric.PeerFabric` — routes a fetch over a
  peer link when another GPU already holds the datum, falling back to
  the host bus (the paper's §VI NVLink extension).

Routers also own the host/peer traffic split statistics that
:class:`repro.simulator.trace.RunResult` reports, so the kernel reads
them uniformly regardless of the configured transport.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulator.bus import Bus


class TransferRouter:
    """Source selection + submission interface for data movements.

    Implementations must be deterministic: the same request sequence
    must pick the same sources and produce the same completion times
    (the repo's same-seed ⇒ same-trace contract).
    """

    #: cumulative payload bytes served from host memory
    bytes_from_host: float = 0.0
    #: cumulative payload bytes served GPU-to-GPU
    bytes_from_peer: float = 0.0

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        """Start moving ``size`` payload bytes to GPU ``dst``.

        ``data_id`` identifies the datum so routing layers can locate
        alternative sources; transport-agnostic callers always pass it.
        """
        raise NotImplementedError

    @property
    def bytes_transferred(self) -> float:
        return self.bytes_from_host + self.bytes_from_peer

    def peer_fraction(self) -> float:
        """Share of traffic served by peer links instead of the host."""
        total = self.bytes_transferred
        return self.bytes_from_peer / total if total > 0 else 0.0


class HostRouter(TransferRouter):
    """Trivial router: every transfer goes over the one wrapped bus.

    Used for the paper's base platform (fetches from host memory over
    the shared PCIe bus) and for the dedicated full-duplex write-back
    channel of the output-data extension.
    """

    def __init__(self, bus: Bus) -> None:
        self.bus = bus
        self.bytes_from_host = 0.0
        self.bytes_from_peer = 0.0

    def submit(
        self,
        size: float,
        dst: int,
        on_complete: Callable[[], None],
        data_id: Optional[int] = None,
    ) -> None:
        self.bytes_from_host += size
        self.bus.submit(size, dst, on_complete, data_id=data_id)
