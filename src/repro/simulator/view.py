"""Read-only window onto runtime state for schedulers and policies.

:class:`RuntimeView` is the **single** surface schedulers and eviction
policies are given.  It exposes queries (residency, missing bytes, task
buffers, capacities) but no mutators; the API003 lint rule enforces
that scheduler/eviction code never reaches through it into the kernel's
internals.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Set

from repro.core.problem import TaskGraph
from repro.platform.spec import PlatformSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.kernel import RuntimeKernel


class RuntimeView:
    """Read-only window onto runtime state for schedulers and policies."""

    def __init__(self, runtime: "RuntimeKernel") -> None:
        self._rt = runtime
        self.graph: TaskGraph = runtime.graph
        self.platform: PlatformSpec = runtime.platform
        self.rng: random.Random = runtime.rng

    @property
    def now(self) -> float:
        return self._rt.engine.now

    @property
    def n_gpus(self) -> int:
        return self.platform.n_gpus

    def is_alive(self, gpu: int) -> bool:
        """Whether ``gpu`` is still part of the device set (fault
        injection can remove devices mid-run)."""
        return not self._rt.dead[gpu]

    def alive_gpus(self) -> List[int]:
        """Indices of the GPUs still alive, ascending."""
        dead = self._rt.dead
        return [k for k in range(self.platform.n_gpus) if not dead[k]]

    def present(self, gpu: int) -> Set[int]:
        """Data fully resident on ``gpu``."""
        return self._rt.memories[gpu].present_set()

    def held(self, gpu: int) -> Set[int]:
        """Data resident or currently being fetched into ``gpu``."""
        return self._rt.memories[gpu].held_set()

    def holds(self, gpu: int, d: int) -> bool:
        return self._rt.memories[gpu].holds(d)

    def missing_inputs(self, gpu: int, task_id: int) -> List[int]:
        """Inputs of ``task_id`` that ``gpu`` neither has nor is fetching."""
        mem = self._rt.memories[gpu]
        return [d for d in self.graph.inputs_of(task_id) if not mem.holds(d)]

    def missing_bytes(self, gpu: int, task_id: int) -> float:
        """Bytes still to transfer before ``task_id`` could run on ``gpu``."""
        sizes = self._rt.sizes
        return sum(sizes[d] for d in self.missing_inputs(gpu, task_id))

    def task_buffer(self, gpu: int) -> List[int]:
        """Executing task (if any) followed by the buffered tasks."""
        w = self._rt.workers[gpu]
        out = [w.executing] if w.executing is not None else []
        out.extend(w.buffer)
        return out

    @property
    def has_dependencies(self) -> bool:
        return self._rt.dependencies is not None

    def is_released(self, task_id: int) -> bool:
        """Whether all predecessors of ``task_id`` have completed.

        Always True without dependencies (the paper's base model).
        """
        indeg = self._rt._indegree
        return indeg is None or indeg[task_id] == 0

    def capacity(self, gpu: int) -> float:
        return self._rt.memories[gpu].capacity

    def gpu_gflops(self, gpu: int) -> float:
        return self.platform.gpus[gpu].gflops

    def bus_bandwidth(self) -> float:
        return self.platform.bus.bandwidth
