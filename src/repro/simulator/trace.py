"""Execution traces and aggregated run results."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.events import EventStream, RuntimeEvent


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped runtime event.

    ``kind`` is one of ``fetch_start``, ``fetch_end``, ``task_start``,
    ``task_end``, ``evict``, ``steal``, or — under fault injection —
    ``device_failed``, ``task_requeued``, ``replica_lost``,
    ``xfer_fail``, ``xfer_retry``; ``ref`` is the data id, task id, or
    (for ``steal``) the victim GPU index.
    """

    time: float
    kind: str
    gpu: int
    ref: int


class TraceRecorder:
    """Collects :class:`TraceEvent` records when tracing is enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, time: float, kind: str, gpu: int, ref: int) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, gpu, ref))

    def digest(self) -> str:
        """SHA-256 over the exact event stream.

        Timestamps are hashed via ``repr`` (full float precision), so two
        digests are equal iff the traces are bit-identical — the
        determinism contract checked by the sanitizer's SAN007 and the
        ``python -m repro.check`` smoke runs.
        """
        h = hashlib.sha256()
        for e in self.events:
            h.update(f"{e.time!r}|{e.kind}|{e.gpu}|{e.ref}\n".encode())
        return h.hexdigest()

    def subscribe_to(self, stream: "EventStream") -> None:
        """Record runtime events published on ``stream``.

        Subscribes one handler per event type so the kind mapping is a
        plain attribute read, not an isinstance chain.  When recording is
        disabled nothing is subscribed at all: the publishers' ``wants``
        guards then skip event construction entirely, keeping the fetch
        hot path free of tracing overhead.
        """
        if not self.enabled:
            return
        from repro.simulator import events as ev

        def data_kind(kind: str):
            def handler(e: "RuntimeEvent") -> None:
                self.record(e.time, kind, e.gpu, e.data_id)  # type: ignore[attr-defined]

            return handler

        def task_kind(kind: str):
            def handler(e: "RuntimeEvent") -> None:
                self.record(e.time, kind, e.gpu, e.task)  # type: ignore[attr-defined]

            return handler

        stream.subscribe(task_kind("task_start"), ev.TaskStarted)
        stream.subscribe(task_kind("task_end"), ev.TaskCompleted)
        stream.subscribe(data_kind("fetch_start"), ev.FetchIssued)
        stream.subscribe(data_kind("fetch_end"), ev.FetchCompleted)
        stream.subscribe(data_kind("evict"), ev.Evicted)
        stream.subscribe(data_kind("store_start"), ev.WriteBackStarted)
        stream.subscribe(data_kind("store_end"), ev.WriteBackCompleted)
        # Fault-injection kinds.  These events only occur under a fault
        # plan, so subscribing them never perturbs fault-free digests;
        # under a plan they make recovery part of the SAN007 contract.

        def device_failed(e: "RuntimeEvent") -> None:
            self.record(e.time, "device_failed", e.gpu, e.gpu)  # type: ignore[attr-defined]

        stream.subscribe(device_failed, ev.DeviceFailed)
        stream.subscribe(task_kind("task_requeued"), ev.TaskRequeued)
        stream.subscribe(data_kind("replica_lost"), ev.DataReplicaLost)
        stream.subscribe(data_kind("xfer_fail"), ev.TransferFailed)
        stream.subscribe(data_kind("xfer_retry"), ev.TransferRetried)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def on_gpu(self, gpu: int) -> List[TraceEvent]:
        return [e for e in self.events if e.gpu == gpu]


@dataclass
class GpuStats:
    """Per-GPU outcome of a simulated run."""

    n_tasks: int = 0
    n_loads: int = 0
    bytes_loaded: float = 0.0
    n_evictions: int = 0
    busy_time: float = 0.0
    flops: float = 0.0
    #: output write-backs (the output-data extension)
    n_stores: int = 0
    bytes_stored: float = 0.0


@dataclass
class RunResult:
    """Aggregated outcome of one simulated execution."""

    scheduler: str
    n_gpus: int
    makespan: float
    total_flops: float
    gpus: List[GpuStats] = field(default_factory=list)
    #: wall-clock seconds spent inside the scheduler (prepare + decisions)
    scheduling_time: float = 0.0
    #: wall-clock seconds of the static preparation phase only
    prepare_time: float = 0.0
    #: wall-clock seconds of per-decision scheduler calls (diagnostic:
    #: host-Python speed, NOT charged to throughput)
    decision_wall_time: float = 0.0
    #: virtual seconds of modelled decision latency (op-count based);
    #: already part of the makespan via task start gating
    virtual_decision_time: float = 0.0
    trace: Optional[TraceRecorder] = None
    #: SHA-256 of the trace event stream (None when tracing is off);
    #: same seed ⇒ same digest is the repo's determinism contract
    trace_digest: Optional[str] = None
    #: order in which each GPU executed its tasks (task ids)
    executed_order: List[List[int]] = field(default_factory=list)
    #: traffic split when NVLink peer links are enabled (bytes)
    bytes_from_host: float = 0.0
    bytes_from_peer: float = 0.0

    @property
    def peer_fraction(self) -> float:
        """Share of traffic served GPU-to-GPU instead of from the host."""
        total = self.bytes_from_host + self.bytes_from_peer
        return self.bytes_from_peer / total if total > 0 else 0.0

    @property
    def total_loads(self) -> int:
        return sum(g.n_loads for g in self.gpus)

    @property
    def total_bytes(self) -> float:
        """Objective 2 in bytes: total CPU→GPU traffic."""
        return sum(g.bytes_loaded for g in self.gpus)

    @property
    def total_mb(self) -> float:
        return self.total_bytes / 1e6

    @property
    def total_evictions(self) -> int:
        return sum(g.n_evictions for g in self.gpus)

    @property
    def total_stored_bytes(self) -> float:
        """GPU→host write-back traffic (output-data extension)."""
        return sum(g.bytes_stored for g in self.gpus)

    @property
    def total_stores(self) -> int:
        return sum(g.n_stores for g in self.gpus)

    @property
    def gflops(self) -> float:
        """Achieved throughput (the paper's y-axis), excluding sched time."""
        if self.makespan <= 0:
            return 0.0
        return self.total_flops / self.makespan / 1e9

    @property
    def gflops_with_scheduling(self) -> float:
        """Throughput with the *static* scheduling phase charged.

        Mirrors the paper's "with scheduling/partitioning time" curves
        (Figs 3, 6, 8): mHFP's packing and hMETIS's partitioning happen
        before any task runs and delay the whole execution.  Per-decision
        costs of the dynamic schedulers are NOT added here — they are
        modelled *inside* the simulation (operation counts gate task
        starts; see ``virtual_decision_time``), so ``makespan`` already
        contains them.
        """
        total = self.makespan + self.prepare_time
        if total <= 0:
            return 0.0
        return self.total_flops / total / 1e9

    @property
    def max_tasks_per_gpu(self) -> int:
        """Objective 1 achieved by the run."""
        return max((g.n_tasks for g in self.gpus), default=0)

    def balance_ratio(self) -> float:
        """``max_k nb_k / mean nb_k`` — 1.0 is perfect balance."""
        counts = [g.n_tasks for g in self.gpus]
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 0.0

    def utilization(self, k: int) -> float:
        """Fraction of the makespan GPU ``k`` spent computing."""
        return self.gpus[k].busy_time / self.makespan if self.makespan else 0.0

    def summary(self) -> str:
        lines = [
            f"scheduler={self.scheduler} gpus={self.n_gpus}",
            f"  makespan      {self.makespan * 1e3:10.3f} ms",
            f"  throughput    {self.gflops:10.1f} GFlop/s"
            f" ({self.gflops_with_scheduling:.1f} with sched time)",
            f"  transfers     {self.total_mb:10.1f} MB"
            f" in {self.total_loads} loads, {self.total_evictions} evictions",
        ]
        for k, g in enumerate(self.gpus):
            lines.append(
                f"  gpu{k}: {g.n_tasks} tasks, {g.n_loads} loads, "
                f"util {self.utilization(k) * 100:.0f}%"
            )
        return "\n".join(lines)
