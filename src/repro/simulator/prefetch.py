"""Prefetch admission control and fetch issue for the task buffer.

:class:`Prefetcher` pulls tasks from the scheduler into each GPU's
bounded task buffer (the paper's ``taskBuffer_k``) and issues the input
fetches that overlap with execution.  It owns two policies:

* **admission control** — the union of input/output footprints of the
  executing plus buffered tasks must fit in GPU memory, which is what
  guarantees the simulation can always make progress; a task that does
  not fit is *staged* and retried on the next poke;
* **decision-cost gating** — scheduler decisions run sequentially on a
  per-GPU virtual scheduler thread; the decided task cannot start
  before its decision completes (op-count × ``decision_op_cost``).

Each accepted decision is published as a
:class:`~repro.simulator.events.DecisionMade` event (guarded, so runs
without subscribers pay nothing).
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Set

from repro.simulator.events import DecisionMade
from repro.simulator.memory import MemoryFullError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.kernel import RuntimeKernel


class Prefetcher:
    """Fills task buffers and issues the corresponding input fetches."""

    __slots__ = ("kernel",)

    def __init__(self, kernel: "RuntimeKernel") -> None:
        self.kernel = kernel

    def fill_buffer(self, gpu: int) -> None:
        """Top up ``gpu``'s buffer to the window, issuing prefetches."""
        k = self.kernel
        w = k.workers[gpu]
        while len(w.buffer) < k.window:
            if w.staged is not None:
                task = w.staged
                w.staged = None
            else:
                t0 = _time.perf_counter()
                task = k.scheduler.next_task(gpu)
                k._decision_time += _time.perf_counter() - t0
                cost = k.scheduler.consume_ops() * k.decision_op_cost
                if cost > 0:
                    # Decisions run sequentially on the GPU's scheduler
                    # thread; the decided task cannot start before the
                    # decision completes (in virtual time).
                    start = max(w.sched_free_at, k.engine.now)
                    w.sched_free_at = start + cost
                    k._virtual_decision_time += cost
                    if task is not None:
                        k._task_gate[task] = w.sched_free_at
                if task is None:
                    w.exhausted = True
                    return
                w.exhausted = False
                if k.events.wants(DecisionMade):
                    k.events.publish(
                        DecisionMade(
                            time=k.engine.now, gpu=gpu, task=task, cost=cost
                        )
                    )
            if not self.admit(gpu, task):
                w.staged = task
                return
            is_head = not w.buffer
            w.buffer.append(task)
            inputs = k.graph.inputs_of(task)
            # The head task's inputs protect each other from eviction
            # (the paper's V(k,i) ∩ D(T_σ(k,i)) = ∅ rule); deeper
            # prefetches get no such protection.
            protected = inputs if is_head else ()
            for d in inputs:
                k.memories[gpu].request(d, protected=protected)

    def admit(self, gpu: int, task: int) -> bool:
        """Admission control: buffered footprints must fit in memory."""
        k = self.kernel
        w = k.workers[gpu]
        active = list(w.buffer)
        if w.executing is not None:
            active.append(w.executing)
        tk = k.graph.tasks[task]
        footprint: Set[int] = set(tk.inputs) | set(tk.outputs)
        for t in active:
            other = k.graph.tasks[t]
            footprint.update(other.inputs)
            footprint.update(other.outputs)
        need = sum(k.sizes[d] for d in footprint)
        if need <= k.memories[gpu].capacity:
            return True
        if not active:
            raise MemoryFullError(
                f"task {task} alone needs {need:.0f}B on GPU {gpu} "
                f"(capacity {k.memories[gpu].capacity:.0f}B)"
            )
        return False


__all__ = ["Prefetcher"]
