"""Runtime kernel: lifecycle and wiring of the layered simulator.

:class:`RuntimeKernel` is the orchestrator of one simulated execution.
It owns *construction and lifecycle only* — the actual mechanics live in
the layers it wires together:

========================================  ============================
:mod:`repro.simulator.engine`             discrete-event core
:mod:`repro.simulator.bus`                shared-link contention models
:mod:`repro.simulator.routing`            transfer transport selection
:mod:`repro.simulator.memory`             per-GPU memory + eviction
:mod:`repro.simulator.prefetch`           admission + prefetch issue
:mod:`repro.simulator.worker`             per-GPU execution loop
:mod:`repro.simulator.events`             typed runtime event stream
:mod:`repro.simulator.view`               read-only scheduler surface
========================================  ============================

Every observable occurrence is published once on a single
:class:`~repro.simulator.events.EventStream`; trace recording
(:class:`~repro.simulator.trace.TraceRecorder`), invariant checking
(:class:`~repro.simulator.sanitizer.Sanitizer`), statistics
(:class:`StatsCollector`) and the kernel's own control reactions are
all subscribers.  Registration order is part of the determinism
contract: sanitizer first (violations fire before anything else
processes the event), then trace, then stats, then control — this
reproduces the exact interleaving the pre-refactor runtime hard-coded,
so same-seed trace digests are byte-identical across the split.
"""

from __future__ import annotations

import random
import time as _time
from typing import Callable, Dict, List, Optional, Union

from repro.core.problem import TaskGraph
from repro.platform.spec import PlatformSpec
from repro.schedulers.base import Scheduler
from repro.simulator.bus import make_bus
from repro.simulator.engine import EventHandle, SimulationEngine
from repro.simulator.events import (
    DataReplicaLost,
    DegradedMode,
    DeviceFailed,
    Evicted,
    EventStream,
    FetchCompleted,
    FetchIssued,
    TaskCompleted,
    TaskRequeued,
    WriteBackCompleted,
    WriteBackStarted,
)
from repro.simulator.faults import FaultPlan
from repro.simulator.memory import DeviceMemory
from repro.simulator.prefetch import Prefetcher
from repro.simulator.routing import HostRouter, RetryingRouter, TransferRouter
from repro.simulator.sanitizer import Sanitizer, is_enabled as _sanitizer_enabled
from repro.simulator.trace import GpuStats, RunResult, TraceRecorder
from repro.simulator.view import RuntimeView
from repro.simulator.worker import Worker, WorkerState


class SimulationDeadlock(Exception):
    """The event queue drained while tasks remained unexecuted."""


class StatsCollector:
    """Accumulates per-GPU execution statistics from the event stream."""

    __slots__ = ("stats",)

    def __init__(self, stats: List[GpuStats]) -> None:
        self.stats = stats

    def subscribe_to(self, stream: EventStream) -> None:
        stream.subscribe(self._on_task_completed, TaskCompleted)
        stream.subscribe(self._on_write_back_started, WriteBackStarted)

    def _on_task_completed(self, e: TaskCompleted) -> None:
        st = self.stats[e.gpu]
        st.n_tasks += 1
        st.busy_time += e.duration
        st.flops += e.flops

    def _on_write_back_started(self, e: WriteBackStarted) -> None:
        st = self.stats[e.gpu]
        st.bytes_stored += e.size
        st.n_stores += 1


class RuntimeKernel:
    """One simulated execution of ``graph`` on ``platform`` by ``scheduler``."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: PlatformSpec,
        scheduler: Scheduler,
        eviction: Union[str, Callable[[int, RuntimeView], object]] = "lru",
        window: int = 2,
        seed: int = 0,
        record_trace: bool = False,
        decision_op_cost: float = 5e-8,
        dependencies: Optional[object] = None,
        sanitize: Union[None, bool, Sanitizer] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if window < 1:
            raise ValueError("task buffer window must be >= 1")
        if decision_op_cost < 0:
            raise ValueError("decision_op_cost must be >= 0")
        self.graph = graph
        self.platform = platform
        self.scheduler = scheduler
        self.window = window
        self.rng = random.Random(seed)
        # Fault plan normalisation: an empty plan is *identical* to no
        # plan — no wrapper installed, no rng built, no event scheduled —
        # which is what keeps fault-free golden digests byte-identical.
        self.faults: Optional[FaultPlan] = (
            faults if faults is not None and not faults.is_empty() else None
        )
        if self.faults is not None:
            self.faults.validate(platform.n_gpus)
            if self.faults.device_failures and graph.has_outputs:
                raise ValueError(
                    "device failures are not supported with produced "
                    "(output) data: a failure could destroy the only copy "
                    "of an output, breaking exactly-once completion"
                )
        #: per-GPU liveness; flipped by _fail_device, read by every poke
        self.dead: List[bool] = [False] * platform.n_gpus
        #: per-GPU compute slowdown factor (straggler injection)
        self._slowdown: List[float] = [1.0] * platform.n_gpus
        if self.faults is not None:
            for s in self.faults.stragglers:
                self._slowdown[s.gpu] *= s.factor
        #: engine handles of scheduled device failures (cancelled when
        #: the last task completes so they cannot extend the makespan)
        self._fault_handles: List[EventHandle] = []
        #: the one instrumentation stream every layer publishes on
        self.events = EventStream()
        # Invariant sanitizer: explicit instance > explicit bool > the
        # module-level switch (turned on for the whole test suite).
        self.sanitizer: Optional[Sanitizer]
        if isinstance(sanitize, Sanitizer):
            self.sanitizer = sanitize
        else:
            wanted = _sanitizer_enabled() if sanitize is None else sanitize
            self.sanitizer = Sanitizer() if wanted else None
        self.engine = SimulationEngine(events=self.events)
        self.bus = make_bus(self.engine, platform.bus, events=self.events)
        # PCIe is full duplex: device→host write-backs (the output
        # extension) ride their own channel and overlap with fetches —
        # the paper's "transferred concurrently with data input".
        self.store_bus = (
            make_bus(self.engine, platform.bus, events=self.events)
            if graph.has_outputs
            else None
        )
        self.fabric = None
        if platform.peer_link is not None:
            from repro.simulator.fabric import PeerFabric

            self.fabric = PeerFabric(
                self.engine,
                self.bus,
                platform.peer_link,
                platform.n_gpus,
                events=self.events,
            )
        #: transport serving input fetches (peer fabric when configured)
        self.fetch_router: TransferRouter = (
            self.fabric if self.fabric is not None else HostRouter(self.bus)
        )
        #: injection rng — separate from the scheduler rng so installing
        #: a plan never perturbs scheduling decisions
        self._fault_rng: Optional[random.Random] = None
        if self.faults is not None:
            self._fault_rng = random.Random(self.faults.seed)
            if self.faults.transfer_faults is not None:
                self.fetch_router = RetryingRouter(
                    inner=self.fetch_router,
                    engine=self.engine,
                    rng=self._fault_rng,
                    corruption=self.faults.transfer_faults,
                    events=self.events,
                    alive=self._is_alive,
                )
        #: transport serving output write-backs
        self.store_router: Optional[TransferRouter] = (
            HostRouter(self.store_bus) if self.store_bus is not None else None
        )
        self.sizes = [d.size for d in graph.data]
        self.trace = TraceRecorder(enabled=record_trace)
        self.view = RuntimeView(self)

        # Output-data extension: produced data are not in host memory
        # until their eager write-back completes.
        self._host_resident: List[bool] = [
            not graph.is_produced(d) for d in range(graph.n_data)
        ]

        # Eviction policies are created per GPU via repro.eviction.
        from repro.eviction import make_policy

        self.memories: List[DeviceMemory] = []
        for k, gpu in enumerate(platform.gpus):
            policy = (
                eviction(k, self.view)
                if callable(eviction)
                else make_policy(eviction, k, self.view, scheduler)
            )
            self.memories.append(
                DeviceMemory(
                    engine=self.engine,
                    router=self.fetch_router,
                    gpu_index=k,
                    capacity_bytes=gpu.memory_bytes,
                    data_sizes=self.sizes,
                    policy=policy,
                    events=self.events,
                    data_available=(
                        self._is_data_available if graph.has_outputs else None
                    ),
                )
            )

        if self.fabric is not None:
            self.fabric.attach(self.memories)

        self.workers: List[WorkerState] = [
            WorkerState() for _ in range(platform.n_gpus)
        ]
        self._worker_loops: List[Worker] = [
            Worker(self, k, self.workers[k]) for k in range(platform.n_gpus)
        ]
        self.prefetcher = Prefetcher(self)
        self.stats = [GpuStats() for _ in range(platform.n_gpus)]
        self.executed_order: List[List[int]] = [
            [] for _ in range(platform.n_gpus)
        ]
        self.decision_op_cost = decision_op_cost
        # Optional task dependencies (the paper's §VI extension): tasks
        # are released to schedulers once all predecessors completed.
        self.dependencies = None
        self._indegree: Optional[List[int]] = None
        if dependencies is not None:
            from repro.dag.deps import DependencySet

            if not isinstance(dependencies, DependencySet):
                dependencies = DependencySet(graph.n_tasks, dependencies)
            dependencies.validate(graph)
            self.dependencies = dependencies
            self._indegree = dependencies.indegrees()
        #: virtual start gate per popped task (decision pipeline)
        self._task_gate: Dict[int, float] = {}
        self._virtual_decision_time = 0.0
        if graph.has_outputs:
            self._validate_producer_consumer()
        self._remaining = graph.n_tasks
        self._decision_time = 0.0
        self._prepare_time = 0.0
        self._finished = False
        # Workers only react to events once run() has begun; this lets
        # tests drive memories/buses directly through an idle kernel.
        self._started = False

        if self.faults is not None:
            for f in self.faults.device_failures:
                self._fault_handles.append(
                    self.engine.schedule_at(
                        f.time, lambda g=f.gpu: self._fail_device(g)
                    )
                )

        # Subscriber wiring.  Order matters and mirrors the inline call
        # order of the pre-split runtime: sanitizer checks fire before
        # the trace records an event, and the trace records before the
        # kernel's control reactions (scheduler callbacks + pokes) run.
        if self.sanitizer is not None:
            self.sanitizer.subscribe_to(self.events, self.memories)
        self.trace.subscribe_to(self.events)
        self._stats_collector = StatsCollector(self.stats)
        self._stats_collector.subscribe_to(self.events)
        self.events.subscribe(self._on_fetch_completed, FetchCompleted)
        self.events.subscribe(self._on_fetch_issued, FetchIssued)
        self.events.subscribe(self._on_evicted, Evicted)

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        t0 = _time.perf_counter()
        self.scheduler.prepare(self.view)
        self._prepare_time = _time.perf_counter() - t0

        self._started = True
        self._poke_all()
        self.engine.run()

        if self._remaining > 0:
            self._raise_deadlock()
        for mem in self.memories:
            mem.check_invariants()
        if self.sanitizer is not None:
            self.sanitizer.after_run(self)

        result = RunResult(
            scheduler=self.scheduler.name,
            n_gpus=self.platform.n_gpus,
            makespan=self.engine.now,
            total_flops=self.graph.total_flops,
            gpus=self.stats,
            scheduling_time=self._prepare_time + self._decision_time,
            prepare_time=self._prepare_time,
            decision_wall_time=self._decision_time,
            virtual_decision_time=self._virtual_decision_time,
            trace=self.trace if self.trace.enabled else None,
            trace_digest=self.trace.digest() if self.trace.enabled else None,
            executed_order=self.executed_order,
        )
        for k, mem in enumerate(self.memories):
            self.stats[k].n_loads = mem.n_loads
            self.stats[k].bytes_loaded = mem.bytes_loaded
            self.stats[k].n_evictions = mem.n_evictions
        # The fetch router owns the host/peer traffic split regardless
        # of which transport it is.
        result.bytes_from_host = self.fetch_router.bytes_from_host
        result.bytes_from_peer = self.fetch_router.bytes_from_peer
        return result

    # ------------------------------------------------------------------
    # worker state machine
    # ------------------------------------------------------------------
    def _poke_all(self) -> None:
        for k in range(self.platform.n_gpus):
            self._poke(k)

    def _poke(self, gpu: int) -> None:
        if self.dead[gpu]:
            return
        self.prefetcher.fill_buffer(gpu)
        self._worker_loops[gpu].try_start()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _is_alive(self, gpu: int) -> bool:
        return not self.dead[gpu]

    def _cancel_pending_faults(self) -> None:
        """Cancel injected failures that have not fired yet.

        Called when the last task completes: an injected failure past
        the natural makespan must not keep the event heap alive and
        stretch ``engine.now`` beyond the real finish time.
        """
        for h in self._fault_handles:
            if not h.cancelled:
                h.cancel()
        self._fault_handles.clear()

    def _fail_device(self, gpu: int) -> None:
        """Execute a planned device failure: GPU ``gpu`` is gone.

        Recovery sequence (order is part of the determinism contract):
        cancel the in-flight execution, wipe the memory (publishing one
        :class:`~repro.simulator.events.DataReplicaLost` per replica in
        datum order), requeue the running + buffered tasks through the
        scheduler's ``on_device_lost`` hook, notify surviving eviction
        policies, announce :class:`~repro.simulator.events.DegradedMode`,
        and re-poke the survivors so they pick up the requeued work.
        """
        if self.dead[gpu] or self._remaining == 0:
            return
        self.dead[gpu] = True
        w = self.workers[gpu]
        if w.exec_event is not None and not w.exec_event.cancelled:
            w.exec_event.cancel()
        w.exec_event = None
        if w.gate_event is not None and not w.gate_event.cancelled:
            w.gate_event.cancel()
        w.gate_event = None
        requeued: List[int] = []
        if w.executing is not None:
            requeued.append(w.executing)
            w.executing = None
        requeued.extend(w.buffer)
        w.buffer.clear()
        if w.staged is not None:
            requeued.append(w.staged)
            w.staged = None
        w.exhausted = True
        for t in requeued:
            self._task_gate.pop(t, None)
        now = self.engine.now
        events = self.events
        if events.wants(DeviceFailed):
            events.publish(DeviceFailed(time=now, gpu=gpu))
        lost = sorted(self.memories[gpu].fail())
        if events.wants(DataReplicaLost):
            for d in lost:
                events.publish(DataReplicaLost(time=now, gpu=gpu, data_id=d))
        if self.fabric is not None:
            self.fabric.on_device_failed(gpu)
        if events.wants(TaskRequeued):
            for t in requeued:
                events.publish(TaskRequeued(time=now, gpu=gpu, task=t))
        t0 = _time.perf_counter()
        self.scheduler.on_device_lost(gpu, tuple(requeued))
        self._decision_time += _time.perf_counter() - t0
        for k, mem in enumerate(self.memories):
            if not self.dead[k]:
                mem.policy.on_device_lost(gpu)
        if events.wants(DegradedMode):
            alive = tuple(
                k for k in range(self.platform.n_gpus) if not self.dead[k]
            )
            events.publish(DegradedMode(time=now, alive=alive))
        self._poke_all()

    # ------------------------------------------------------------------
    # control-plane event subscribers
    # ------------------------------------------------------------------
    def _on_fetch_completed(self, e: FetchCompleted) -> None:
        if not self._started:
            return
        t0 = _time.perf_counter()
        self.scheduler.on_data_loaded(e.gpu, e.data_id)
        self._decision_time += _time.perf_counter() - t0
        self._poke(e.gpu)

    def _on_fetch_issued(self, e: FetchIssued) -> None:
        if self._started:
            self.scheduler.on_fetch_issued(e.gpu, e.data_id)

    def _on_evicted(self, e: Evicted) -> None:
        if self._started:
            self.scheduler.on_data_evicted(e.gpu, e.data_id)

    # ------------------------------------------------------------------
    # output-data extension
    # ------------------------------------------------------------------
    def _validate_producer_consumer(self) -> None:
        """Consumers of produced data must depend on the producer."""
        for d in range(self.graph.n_data):
            producer = self.graph.producer_of(d)
            if producer is None:
                continue
            for user in self.graph.users_of(d):
                if self.dependencies is None or (
                    producer not in self.dependencies.preds[user]
                ):
                    raise ValueError(
                        f"task {user} reads produced datum {d} but does "
                        f"not depend on its producer {producer}; pass the "
                        "producer→consumer edges via dependencies="
                    )

    def _is_data_available(self, d: int) -> bool:
        """Can ``d`` be fetched right now (host copy or reachable peer)?"""
        if self._host_resident[d]:
            return True
        if self.fabric is not None:
            return any(mem.is_present(d) for mem in self.memories)
        return False

    def _store_done(self, gpu: int, d: int) -> None:
        self._host_resident[d] = True
        self.memories[gpu].unpin(d)
        if self.events.wants(WriteBackCompleted):
            self.events.publish(
                WriteBackCompleted(time=self.engine.now, gpu=gpu, data_id=d)
            )
        for mem in self.memories:
            mem.retry_pending()
        self._poke_all()

    # ------------------------------------------------------------------
    def _raise_deadlock(self) -> None:
        lines = [f"{self._remaining}/{self.graph.n_tasks} tasks never ran"]
        for k, w in enumerate(self.workers):
            mem = self.memories[k]
            lines.append(
                f"  gpu{k}: executing={w.executing} buffer={list(w.buffer)} "
                f"staged={w.staged} exhausted={w.exhausted} "
                f"used={mem.used:.0f}/{mem.capacity:.0f}B "
                f"fetching={sorted(mem.fetching_set())}"
            )
        raise SimulationDeadlock("\n".join(lines))


__all__ = ["RuntimeKernel", "SimulationDeadlock", "StatsCollector"]
