"""Runtime trace sanitizer: §III model invariants checked on every run.

Opt-in layer that watches a :class:`repro.simulator.runtime.Runtime`
execute and verifies the invariants the paper's evaluation rests on:

========  ==========================================================
SAN001    per-GPU memory usage never exceeds capacity (``|L| ≤ M``)
SAN002    a task only starts with all inputs resident *and pinned*
SAN003    pinned data are never evicted
SAN004    bus-bandwidth conservation: cumulative bytes moved over a
          link never exceed ``bandwidth × elapsed`` (fluid model)
SAN005    event-time monotonicity in the discrete-event core
SAN006    load counts at least the analytic ``core.schedule`` Belady
          replay of the executed order (the offline lower bound), and
          static fixed schedules executed in their given order
SAN007    same-seed double runs produce identical trace digests
SAN008    every task completes exactly once, despite fault-injection
          requeues (no loss, no duplicate execution)
SAN009    no fetch is ever sourced from a failed device or a lost
          replica (peer transfers only read surviving copies)
SAN010    after a device failure nothing starts, fetches, or evicts on
          the dead GPU, and the degraded-mode makespan is achievable
          with surviving-GPU capacity only
========  ==========================================================

Enable it three ways:

* globally — :func:`enable` / :func:`disable` (the test suite turns it
  on for every test via an autouse fixture, making each integration
  test an invariant test);
* per run — ``simulate(..., sanitize=True)`` or pass a
  :class:`Sanitizer` instance to collect violations without raising;
* scoped — ``with sanitized(): ...``.

In ``strict`` mode (the default) the first violation raises
:class:`SanitizerError`; with ``strict=False`` violations accumulate in
:attr:`Sanitizer.violations` for inspection.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.bus import Bus
    from repro.simulator.events import EventStream
    from repro.simulator.faults import FaultPlan
    from repro.simulator.memory import DeviceMemory
    from repro.simulator.runtime import Runtime

#: absolute slack for float accounting comparisons (bytes / seconds)
_TOL = 1e-6
#: relative slack for bus conservation (fluid-model rounding)
_REL_TOL = 1e-9

_enabled_depth = 0


def enable() -> None:
    """Turn the sanitizer on for every subsequently created Runtime."""
    global _enabled_depth
    _enabled_depth += 1


def disable() -> None:
    """Undo one :func:`enable` call."""
    global _enabled_depth
    _enabled_depth = max(0, _enabled_depth - 1)


def is_enabled() -> bool:
    return _enabled_depth > 0


@contextlib.contextmanager
def sanitized() -> Iterator[None]:
    """Enable the sanitizer for the duration of the ``with`` block."""
    enable()
    try:
        yield
    finally:
        disable()


class SanitizerError(AssertionError):
    """A model invariant was violated during a sanitized run."""


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected invariant violation."""

    code: str
    message: str
    time: float
    gpu: Optional[int] = None

    def format(self) -> str:
        where = f" gpu={self.gpu}" if self.gpu is not None else ""
        return f"[{self.code}] t={self.time:.9g}{where}: {self.message}"


@dataclass
class Sanitizer:
    """Collects (or raises on) invariant violations of one or more runs."""

    strict: bool = True
    violations: List[SanitizerViolation] = field(default_factory=list)
    _last_event_time: float = field(default=float("-inf"), repr=False)
    # Fault-recovery accounting (SAN008–SAN010); reset by subscribe_to
    # so one Sanitizer instance can watch several runs.
    _tracking: bool = field(default=False, repr=False)
    _task_completions: Dict[int, int] = field(default_factory=dict, repr=False)
    _failed_gpus: Set[int] = field(default_factory=set, repr=False)
    _last_failure_time: float = field(default=float("-inf"), repr=False)
    _post_failure_flops: float = field(default=0.0, repr=False)

    def report(
        self,
        code: str,
        message: str,
        *,
        time: float = 0.0,
        gpu: Optional[int] = None,
    ) -> None:
        v = SanitizerViolation(code=code, message=message, time=time, gpu=gpu)
        self.violations.append(v)
        if self.strict:
            raise SanitizerError(v.format())

    # ------------------------------------------------------------------
    # event-stream wiring
    # ------------------------------------------------------------------
    def subscribe_to(
        self, stream: "EventStream", memories: Sequence["DeviceMemory"]
    ) -> None:
        """Attach every online check to ``stream``.

        ``memories`` lets the SAN002 task-start check inspect residency
        and pinning on the GPU the task starts on.  The kernel registers
        the sanitizer *first*, so violations are raised before trace
        recording or control reactions run for the same event.
        """
        from repro.simulator import events as ev

        stream.subscribe(
            lambda e: self.on_event(e.time, e.now), ev.EngineStep
        )
        stream.subscribe(
            lambda e: self.on_memory_update(e.gpu, e.used, e.capacity, e.time),
            ev.MemoryUsageChanged,
        )
        stream.subscribe(
            lambda e: self.on_evict(e.gpu, e.data_id, e.pinned, e.time),
            ev.EvictionStarted,
        )
        stream.subscribe(
            lambda e: self.on_transfer(e.bus, e.time), ev.TransferCompleted
        )
        stream.subscribe(
            lambda e: self.on_task_start(
                e.gpu, e.task, e.inputs, memories[e.gpu], e.time
            ),
            ev.TaskStarted,
        )
        # Fault-recovery checks (SAN008–SAN010).  State is reset here so
        # one instance can watch several runs in sequence.
        self._tracking = True
        self._task_completions = {}
        self._failed_gpus = set()
        self._last_failure_time = float("-inf")
        self._post_failure_flops = 0.0
        stream.subscribe(
            lambda e: self.on_task_complete(e.gpu, e.task, e.duration, e.flops, e.time),
            ev.TaskCompleted,
        )
        stream.subscribe(
            lambda e: self.on_device_failed(e.gpu, e.time), ev.DeviceFailed
        )
        stream.subscribe(
            lambda e: self.on_task_requeued(e.gpu, e.task, e.time),
            ev.TaskRequeued,
        )
        stream.subscribe(
            lambda e: self.on_peer_transfer(e.src, e.dst, e.data_id, e.time),
            ev.PeerTransferStarted,
        )
        stream.subscribe(
            lambda e: self.on_dead_gpu_activity(e.gpu, "fetch issued", e.time),
            ev.FetchIssued,
        )
        stream.subscribe(
            lambda e: self.on_dead_gpu_activity(
                e.gpu, "fetch completed", e.time
            ),
            ev.FetchCompleted,
        )

    # ------------------------------------------------------------------
    # engine events (SAN005)
    # ------------------------------------------------------------------
    def on_event(self, time: float, now: float) -> None:
        """Called by the engine before firing the event at ``time``."""
        if time < now - _TOL or time < self._last_event_time - _TOL:
            self.report(
                "SAN005",
                f"event time {time!r} fires before current time "
                f"{max(now, self._last_event_time)!r}",
                time=time,
            )
        self._last_event_time = max(self._last_event_time, time)

    # ------------------------------------------------------------------
    # memory hooks (SAN001 / SAN003)
    # ------------------------------------------------------------------
    def on_memory_update(
        self, gpu: int, used: float, capacity: float, now: float
    ) -> None:
        if used > capacity + _TOL:
            self.report(
                "SAN001",
                f"memory overrun: used {used:.0f}B > capacity "
                f"{capacity:.0f}B",
                time=now,
                gpu=gpu,
            )
        if used < -_TOL:
            self.report(
                "SAN001",
                f"negative memory accounting: used {used:.0f}B",
                time=now,
                gpu=gpu,
            )

    def on_evict(self, gpu: int, data_id: int, pinned: bool, now: float) -> None:
        if pinned:
            self.report(
                "SAN003",
                f"pinned datum {data_id} chosen for eviction",
                time=now,
                gpu=gpu,
            )
        self.on_dead_gpu_activity(gpu, f"eviction of datum {data_id}", now)

    # ------------------------------------------------------------------
    # bus observer (SAN004)
    # ------------------------------------------------------------------
    def on_transfer(self, bus: "Bus", now: float) -> None:
        """Called after a transfer completes and is accounted."""
        from repro.simulator.bus import _COMPLETION_TOL_BYTES

        spec = bus.spec
        consumed = (
            bus.bytes_transferred + bus.n_transfers * spec.latency * spec.bandwidth
        )
        budget = spec.bandwidth * now
        # The fluid bus force-completes transfers within its residual
        # tolerance, so each completion may overcount by that much.
        slack = bus.n_transfers * _COMPLETION_TOL_BYTES + _TOL
        if consumed > budget * (1 + _REL_TOL) + slack:
            self.report(
                "SAN004",
                f"bus conservation violated: {consumed:.3f} "
                f"bandwidth-equivalent bytes moved by t={now!r} but the "
                f"link budget is {budget:.3f}",
                time=now,
            )

    # ------------------------------------------------------------------
    # runtime hooks (SAN002 / SAN006)
    # ------------------------------------------------------------------
    def on_task_start(
        self,
        gpu: int,
        task_id: int,
        inputs: Sequence[int],
        memory: "DeviceMemory",
        now: float,
    ) -> None:
        for d in inputs:
            if not memory.is_present(d):
                self.report(
                    "SAN002",
                    f"task {task_id} started without resident input {d}",
                    time=now,
                    gpu=gpu,
                )
            elif not memory.is_pinned(d):
                self.report(
                    "SAN002",
                    f"task {task_id} started with unpinned input {d}",
                    time=now,
                    gpu=gpu,
                )
        self.on_dead_gpu_activity(gpu, f"start of task {task_id}", now)

    # ------------------------------------------------------------------
    # fault-recovery hooks (SAN008 / SAN009 / SAN010)
    # ------------------------------------------------------------------
    def on_task_complete(
        self, gpu: int, task_id: int, duration: float, flops: float, now: float
    ) -> None:
        count = self._task_completions.get(task_id, 0) + 1
        self._task_completions[task_id] = count
        if count > 1:
            self.report(
                "SAN008",
                f"task {task_id} completed {count} times (duplicate "
                "execution after a requeue)",
                time=now,
                gpu=gpu,
            )
        if self._failed_gpus:
            if gpu in self._failed_gpus:
                self.report(
                    "SAN010",
                    f"task {task_id} completed on failed GPU {gpu}",
                    time=now,
                    gpu=gpu,
                )
            elif now - duration >= self._last_failure_time - _TOL:
                # work entirely inside the degraded window counts toward
                # the surviving-capacity bound checked in after_run
                self._post_failure_flops += flops

    def on_device_failed(self, gpu: int, now: float) -> None:
        self._failed_gpus.add(gpu)
        self._last_failure_time = max(self._last_failure_time, now)

    def on_task_requeued(self, gpu: int, task_id: int, now: float) -> None:
        if self._task_completions.get(task_id, 0) > 0:
            self.report(
                "SAN008",
                f"already-completed task {task_id} was requeued from "
                f"failed GPU {gpu}",
                time=now,
                gpu=gpu,
            )

    def on_peer_transfer(
        self, src: int, dst: int, data_id: int, now: float
    ) -> None:
        if src in self._failed_gpus:
            self.report(
                "SAN009",
                f"fetch of datum {data_id} sourced from failed GPU {src} "
                "(lost replica)",
                time=now,
                gpu=dst,
            )
        self.on_dead_gpu_activity(dst, f"peer fetch of datum {data_id}", now)

    def on_dead_gpu_activity(self, gpu: int, what: str, now: float) -> None:
        """Any runtime activity on a failed GPU is a SAN010 violation."""
        if gpu in self._failed_gpus:
            self.report(
                "SAN010",
                f"{what} on failed GPU {gpu}",
                time=now,
                gpu=gpu,
            )

    def after_run(self, runtime: "Runtime") -> None:
        """Post-run checks: replay cross-check (SAN006), exactly-once
        completion (SAN008), degraded-capacity bound (SAN010)."""
        self._check_fixed_order(runtime)
        self._check_load_lower_bound(runtime)
        self._check_exactly_once(runtime)
        self._check_degraded_capacity(runtime)

    def _check_exactly_once(self, runtime: "Runtime") -> None:
        """SAN008: every task completed exactly once despite requeues."""
        if not self._tracking:
            return  # this instance never watched the event stream
        for t in range(runtime.graph.n_tasks):
            count = self._task_completions.get(t, 0)
            if count != 1:
                self.report(
                    "SAN008",
                    f"task {t} completed {count} times (expected exactly "
                    "once)",
                    time=runtime.engine.now,
                )

    def _check_degraded_capacity(self, runtime: "Runtime") -> None:
        """SAN010: post-failure work fits the surviving-GPU capacity.

        Every task that both started and finished after the (last)
        failure must have run on a surviving GPU, so the flops executed
        in the degraded window cannot exceed what the surviving devices
        (at their straggler-adjusted rates) can deliver in that window.
        """
        if not self._failed_gpus:
            return
        elapsed = runtime.engine.now - self._last_failure_time
        if elapsed <= 0:
            return
        rate = sum(
            runtime.platform.gpus[k].gflops * 1e9 / runtime._slowdown[k]
            for k in range(runtime.platform.n_gpus)
            if not runtime.dead[k]
        )
        budget = rate * elapsed
        if self._post_failure_flops > budget * (1 + _REL_TOL) + _TOL:
            self.report(
                "SAN010",
                f"degraded-mode window executed "
                f"{self._post_failure_flops:.3e} flops but surviving "
                f"capacity only delivers {budget:.3e} in "
                f"{elapsed!r} seconds",
                time=runtime.engine.now,
            )

    def _check_fixed_order(self, runtime: "Runtime") -> None:
        from repro.schedulers.fixed import FixedSchedule

        sched = runtime.scheduler
        if not isinstance(sched, FixedSchedule):
            return
        if sched.use_ready or sched.use_stealing:
            return  # reordering/stealing legitimately permute the order
        if any(runtime.dead):
            return  # device loss legitimately reassigns the fixed order
        for k, order in enumerate(sched.schedule.order):
            executed = runtime.executed_order[k]
            if list(order) != list(executed):
                self.report(
                    "SAN006",
                    f"fixed schedule order not respected: expected "
                    f"{list(order)}, executed {executed}",
                    time=runtime.engine.now,
                    gpu=k,
                )

    def _check_load_lower_bound(self, runtime: "Runtime") -> None:
        """Simulated loads can never beat the offline Belady replay.

        For the executed per-GPU order, the analytic replay of
        :mod:`repro.core.schedule` under Belady eviction is the minimum
        number of loads any execution of that order can incur within the
        same capacity.  Fewer simulated loads would mean the simulator
        lost a fetch.  Skipped for output-producing graphs (produced
        data are computed in place, not loaded) and for heterogeneous
        data sizes: Belady's farthest-next-use rule is only optimal —
        and therefore only a lower bound — when all data are equal-sized
        (with variable sizes, evicting one large far-use datum can cost
        fewer reloads than the small near-use data Belady keeps).
        """
        if runtime.graph.has_outputs:
            return
        if runtime.graph.uniform_data_size() is None:
            return
        from repro.core.schedule import (
            InfeasibleScheduleError,
            Schedule,
            replay_schedule,
        )

        for k, order in enumerate(runtime.executed_order):
            if not order:
                continue
            mem = runtime.memories[k]
            try:
                replay = replay_schedule(
                    runtime.graph,
                    Schedule.single_gpu(order),
                    policy="belady",
                    capacity_bytes=mem.capacity,
                )
            except InfeasibleScheduleError:
                continue  # heterogeneous corner the replay cannot model
            lower = replay.gpus[0].n_loads
            if mem.n_loads < lower:
                self.report(
                    "SAN006",
                    f"simulated {mem.n_loads} loads but the analytic "
                    f"Belady replay of the executed order needs at least "
                    f"{lower}",
                    time=runtime.engine.now,
                    gpu=k,
                )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self.violations:
            return "sanitizer: no violations"
        lines = [v.format() for v in self.violations]
        lines.append(f"sanitizer: {len(self.violations)} violation(s)")
        return "\n".join(lines)


def check_determinism(
    graph,
    platform,
    scheduler_name: str,
    *,
    eviction: Optional[str] = None,
    window: int = 2,
    seed: int = 0,
    sanitizer: Optional[Sanitizer] = None,
    faults: Optional["FaultPlan"] = None,
) -> str:
    """Run the same simulation twice and compare trace digests (SAN007).

    Returns the digest.  A mismatch is reported through ``sanitizer``
    (a fresh strict one by default, i.e. it raises).  ``faults`` is an
    optional :class:`repro.simulator.faults.FaultPlan` applied to both
    runs — a pinned plan must reproduce its full recovery trace.
    """
    from repro.schedulers.registry import make_scheduler
    from repro.simulator.runtime import simulate

    san = sanitizer if sanitizer is not None else Sanitizer(strict=True)
    results = []
    for _ in range(2):
        sched, default_eviction = make_scheduler(scheduler_name)
        results.append(
            simulate(
                graph,
                platform,
                sched,
                eviction=eviction or default_eviction,
                window=window,
                seed=seed,
                record_trace=True,
                sanitize=Sanitizer(strict=san.strict),
                faults=faults,
            )
        )
    a, b = results
    if a.trace_digest != b.trace_digest:
        san.report(
            "SAN007",
            f"same-seed runs of {scheduler_name!r} diverged: "
            f"digest {a.trace_digest} != {b.trace_digest} "
            f"(makespans {a.makespan!r} vs {b.makespan!r})",
            time=max(a.makespan, b.makespan),
        )
    if a.total_loads != b.total_loads:
        san.report(
            "SAN007",
            f"same-seed runs of {scheduler_name!r} diverged: "
            f"{a.total_loads} vs {b.total_loads} loads",
            time=max(a.makespan, b.makespan),
        )
    assert a.trace_digest is not None
    return a.trace_digest
