"""Typed runtime events and the unified instrumentation stream.

Every observable thing the runtime kernel does — a task starting, a
fetch being issued, a datum evicted, a scheduling decision charged —
is published as one immutable :class:`RuntimeEvent` on a single
:class:`EventStream`.  Trace recording, the invariant sanitizer,
per-GPU statistics, and any future profiler are plain subscribers; the
kernel itself subscribes for the few events that drive control flow
(fetch completion, eviction notification).  This replaces the previous
design of three duck-typed ``observer`` slots (engine / bus / memory)
plus ad-hoc ``on_*`` lambdas threaded through five modules.

Dispatch rules (the contract tests in ``tests/simulator/test_events.py``
pin these down):

* dispatch is by **exact** event type — no subclass fan-out — so a
  ``publish`` is one dict lookup plus a list walk;
* subscribers for a type run in **registration order**, which is fixed
  by the kernel's wiring sequence and therefore deterministic;
* a subscriber raising **propagates** to the publisher — instrumentation
  errors (e.g. a strict sanitizer) must abort the simulation at the
  offending event, never be swallowed;
* publishers guard hot paths with :meth:`EventStream.wants` so that an
  event nobody subscribed to costs one dict lookup — no event object is
  allocated, no handler is called.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type


class RuntimeEvent:
    """Base class of all runtime events (never published itself)."""

    __slots__ = ()


@dataclass(frozen=True)
class TaskStarted(RuntimeEvent):
    """A task began executing; its inputs are resident and pinned."""

    time: float
    gpu: int
    task: int
    inputs: Tuple[int, ...]


@dataclass(frozen=True)
class TaskCompleted(RuntimeEvent):
    """A task finished executing after ``duration`` virtual seconds."""

    time: float
    gpu: int
    task: int
    duration: float
    flops: float


@dataclass(frozen=True)
class FetchIssued(RuntimeEvent):
    """A fetch of ``data_id`` into ``gpu`` was submitted to a transport."""

    time: float
    gpu: int
    data_id: int


@dataclass(frozen=True)
class FetchCompleted(RuntimeEvent):
    """``data_id`` became resident on ``gpu`` (``size`` payload bytes)."""

    time: float
    gpu: int
    data_id: int
    size: float


@dataclass(frozen=True)
class EvictionStarted(RuntimeEvent):
    """``data_id`` was chosen for eviction; published *before* the state
    change so invariant checkers can veto (``pinned`` is the pin state at
    selection time)."""

    time: float
    gpu: int
    data_id: int
    pinned: bool


@dataclass(frozen=True)
class Evicted(RuntimeEvent):
    """``data_id`` was dropped from ``gpu``'s memory."""

    time: float
    gpu: int
    data_id: int


@dataclass(frozen=True)
class WriteBackStarted(RuntimeEvent):
    """An output's eager write-back to the host was submitted."""

    time: float
    gpu: int
    data_id: int
    size: float


@dataclass(frozen=True)
class WriteBackCompleted(RuntimeEvent):
    """An output's write-back landed; the host copy now exists."""

    time: float
    gpu: int
    data_id: int


@dataclass(frozen=True)
class DecisionMade(RuntimeEvent):
    """The scheduler answered a ``next_task`` poll for ``gpu``.

    ``task`` is ``None`` when the scheduler had nothing to give;
    ``cost`` is the modelled virtual latency charged for the decision
    (``ops × decision_op_cost`` seconds, 0 when uncharged).
    """

    time: float
    gpu: int
    task: object  # Optional[int]; kept loose for cheap construction
    cost: float


@dataclass(frozen=True)
class MemoryUsageChanged(RuntimeEvent):
    """A device memory's ``used`` accounting changed."""

    time: float
    gpu: int
    used: float
    capacity: float


@dataclass(frozen=True)
class TransferCompleted(RuntimeEvent):
    """A bus finished and accounted one transfer (``bus`` is the model)."""

    time: float
    bus: object


@dataclass(frozen=True)
class EngineStep(RuntimeEvent):
    """The discrete-event core is about to fire the event at ``time``;
    ``now`` is the clock *before* it advances."""

    time: float
    now: float


@dataclass(frozen=True)
class PeerTransferStarted(RuntimeEvent):
    """A peer-link copy of ``data_id`` from ``src`` to ``dst`` began."""

    time: float
    src: int
    dst: int
    data_id: int


@dataclass(frozen=True)
class DeviceFailed(RuntimeEvent):
    """GPU ``gpu`` dropped off the node permanently (fault injection)."""

    time: float
    gpu: int


@dataclass(frozen=True)
class DataReplicaLost(RuntimeEvent):
    """``gpu`` held (or was fetching) ``data_id`` when it failed; the
    replica is gone and must be re-fetched elsewhere from the host or a
    surviving peer."""

    time: float
    gpu: int
    data_id: int


@dataclass(frozen=True)
class TaskRequeued(RuntimeEvent):
    """``task`` was running or buffered on failed GPU ``gpu`` and was
    returned to the scheduler via ``on_device_lost``."""

    time: float
    gpu: int
    task: int


@dataclass(frozen=True)
class TransferFailed(RuntimeEvent):
    """Attempt ``attempt`` of a transfer of ``data_id`` into ``gpu``
    was corrupted (or its peer source died mid-copy)."""

    time: float
    gpu: int
    data_id: int
    attempt: int


@dataclass(frozen=True)
class TransferRetried(RuntimeEvent):
    """A failed transfer of ``data_id`` into ``gpu`` was resubmitted
    (``attempt`` is the new attempt number)."""

    time: float
    gpu: int
    data_id: int
    attempt: int


@dataclass(frozen=True)
class DegradedMode(RuntimeEvent):
    """A device failure left only ``alive`` GPUs; the run continues on
    the surviving capacity."""

    time: float
    alive: Tuple[int, ...]


#: the full taxonomy, in lifecycle order (used by subscribe-all helpers
#: and the DESIGN.md event table)
RUNTIME_EVENT_TYPES: Tuple[Type[RuntimeEvent], ...] = (
    DecisionMade,
    FetchIssued,
    FetchCompleted,
    TaskStarted,
    TaskCompleted,
    WriteBackStarted,
    WriteBackCompleted,
    EvictionStarted,
    Evicted,
    MemoryUsageChanged,
    TransferCompleted,
    EngineStep,
    PeerTransferStarted,
    DeviceFailed,
    DataReplicaLost,
    TaskRequeued,
    TransferFailed,
    TransferRetried,
    DegradedMode,
)

_NO_SUBSCRIBERS: Tuple[Callable[[RuntimeEvent], None], ...] = ()


class EventStream:
    """Publish/subscribe hub for :class:`RuntimeEvent` instances."""

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: Dict[
            Type[RuntimeEvent], List[Callable[[RuntimeEvent], None]]
        ] = {}

    def subscribe(
        self,
        handler: Callable[[RuntimeEvent], None],
        *event_types: Type[RuntimeEvent],
    ) -> None:
        """Register ``handler`` for each given event type.

        With no types given, the handler receives *every* event in
        :data:`RUNTIME_EVENT_TYPES`.  Handlers for one type run in
        registration order; the same handler may be registered for many
        types.
        """
        for et in event_types or RUNTIME_EVENT_TYPES:
            self._subscribers.setdefault(et, []).append(handler)

    def unsubscribe(
        self,
        handler: Callable[[RuntimeEvent], None],
        *event_types: Type[RuntimeEvent],
    ) -> None:
        """Remove every registration of ``handler`` for the given types
        (all types when none given).  Unknown registrations are ignored."""
        for et in event_types or RUNTIME_EVENT_TYPES:
            subs = self._subscribers.get(et)
            if not subs:
                continue
            self._subscribers[et] = [h for h in subs if h is not handler]
            if not self._subscribers[et]:
                del self._subscribers[et]

    def wants(self, event_type: Type[RuntimeEvent]) -> bool:
        """True when at least one subscriber registered for the type.

        Publishers on hot paths guard with this so a disabled consumer
        (tracing off, sanitizer off) costs one dict lookup: no event
        allocation, no call.
        """
        return event_type in self._subscribers

    def publish(self, event: RuntimeEvent) -> None:
        """Deliver ``event`` to its type's subscribers, in order.

        Subscriber exceptions propagate to the caller deliberately: a
        strict sanitizer must be able to abort the simulation at the
        offending event.  The offending event's repr and the subscriber's
        name are attached to the exception so the failure is attributable
        without re-running under a debugger.
        """
        for handler in self._subscribers.get(type(event), _NO_SUBSCRIBERS):
            try:
                handler(event)
            except Exception as exc:
                _annotate_dispatch_error(exc, handler, event)
                raise

    def subscriber_count(self, event_type: Type[RuntimeEvent]) -> int:
        return len(self._subscribers.get(event_type, ()))


def _annotate_dispatch_error(
    exc: BaseException,
    handler: Callable[[RuntimeEvent], None],
    event: RuntimeEvent,
) -> None:
    """Attach the event repr + subscriber name to a propagating error.

    Uses ``add_note`` (3.11+) when available, otherwise appends to the
    exception's message args — either way the original exception object,
    type, and traceback are preserved for the re-raise.
    """
    name = getattr(handler, "__qualname__", None) or repr(handler)
    note = f"while dispatching {event!r} to subscriber {name}"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        try:
            add_note(note)
            return
        except Exception:  # pragma: no cover - exotic exception classes
            pass
    if exc.args and isinstance(exc.args[0], str):
        exc.args = (f"{exc.args[0]}\n  {note}",) + exc.args[1:]
    else:
        exc.args = exc.args + (note,)
