"""Fiduccia–Mattheyses bisection refinement.

Classic single-vertex-move refinement with per-pass rollback: vertices
move one at a time (each at most once per pass) in best-gain-first order
subject to a balance constraint; at the end of the pass the prefix with
the best cumulative gain is kept.  Gains are maintained incrementally
from per-net side counts.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.partitioning.hypergraph import Hypergraph


def bisection_cut(h: Hypergraph, side: Sequence[int]) -> float:
    """Total weight of nets spanning both sides."""
    cut = 0.0
    for e, pins in enumerate(h.nets):
        s0 = side[pins[0]]
        if any(side[v] != s0 for v in pins[1:]):
            cut += h.nwgt[e]
    return cut


def _net_counts(h: Hypergraph, side: Sequence[int]) -> Tuple[List[int], List[int]]:
    c0 = [0] * h.n_nets
    c1 = [0] * h.n_nets
    for e, pins in enumerate(h.nets):
        for v in pins:
            if side[v] == 0:
                c0[e] += 1
            else:
                c1[e] += 1
    return c0, c1


def _gain(h: Hypergraph, side: Sequence[int], c0, c1, v: int) -> float:
    """Cut reduction if ``v`` moves to the other side."""
    g = 0.0
    s = side[v]
    for e in h.pins_of[v]:
        here = c0[e] if s == 0 else c1[e]
        there = c1[e] if s == 0 else c0[e]
        if here == 1:
            g += h.nwgt[e]  # net becomes uncut
        if there == 0:
            g -= h.nwgt[e]  # net becomes cut
    return g


def fm_refine(
    h: Hypergraph,
    side: List[int],
    target0: float,
    tolerance: float,
    max_passes: int = 8,
) -> List[int]:
    """Refine ``side`` in place-ish; returns the refined assignment.

    ``target0`` is the desired total vertex weight of side 0 and
    ``tolerance`` the allowed absolute deviation (hMETIS's UBfactor
    translated to weight units).  A move is admissible if it keeps side 0
    within ``target0 ± tolerance`` **or** strictly reduces the imbalance —
    so an infeasible initial assignment is repaired rather than frozen.
    """
    side = list(side)
    for _ in range(max_passes):
        improved, side = _fm_pass(h, side, target0, tolerance)
        if not improved:
            break
    return side


def _fm_pass(
    h: Hypergraph, side: List[int], target0: float, tolerance: float
) -> Tuple[bool, List[int]]:
    c0, c1 = _net_counts(h, side)
    w0 = sum(h.vwgt[v] for v in range(h.n) if side[v] == 0)
    locked = [False] * h.n
    version = [0] * h.n

    # (-gain, v, version); build + heapify pops in the same order as
    # sequential pushes (keys are distinct per vertex)
    heap: List[Tuple[float, int, int]] = [
        (-_gain(h, side, c0, c1, v), v, 0) for v in range(h.n)
    ]
    heapq.heapify(heap)

    moves: List[int] = []
    cum = 0.0

    def feasible(weight0: float) -> bool:
        return abs(weight0 - target0) <= tolerance

    # Best prefix is chosen by (feasibility, cumulative gain): a pass
    # starting from an unbalanced assignment must keep the moves that
    # restore balance even when their cut gain is negative.
    start_key = (feasible(w0), 0.0)
    best_key = start_key
    best_len = 0

    def admissible(v: int) -> bool:
        delta = -h.vwgt[v] if side[v] == 0 else h.vwgt[v]
        new_w0 = w0 + delta
        if abs(new_w0 - target0) <= tolerance:
            return True
        return abs(new_w0 - target0) < abs(w0 - target0)

    deferred: List[Tuple[float, int, int]] = []
    while heap or deferred:
        if not heap:
            # Everything left was inadmissible; no further moves possible.
            break
        neg_g, v, ver = heapq.heappop(heap)
        if locked[v] or version[v] != ver:
            continue
        if not admissible(v):
            deferred.append((neg_g, v, ver))
            # If nothing admissible remains on the heap we will exit via
            # the empty-heap check; otherwise keep popping.
            continue
        # apply the move
        g = -neg_g
        s = side[v]
        side[v] = 1 - s
        w0 += -h.vwgt[v] if s == 0 else h.vwgt[v]
        locked[v] = True
        # Update per-net side counts and collect the vertices whose gain
        # can actually have changed (classic FM threshold rules: a net's
        # contribution to a pin's gain only flips when its side counts
        # cross the 0/1/2 boundaries).  Gains are recomputed *fresh* for
        # those vertices, so the pushed values are bit-identical to a
        # recompute-everything pass; vertices outside the set keep their
        # live heap entry, whose key equals what a fresh push would
        # carry, preserving the pop order exactly.
        affected = set()
        for e in h.pins_of[v]:
            if s == 0:
                F, T = c0[e], c1[e]  # counts before the move
                c0[e] -= 1
                c1[e] += 1
            else:
                F, T = c1[e], c0[e]
                c1[e] -= 1
                c0[e] += 1
            pins = h.nets[e]
            if T == 0 or F == 1:
                # net enters/leaves the cut: every free pin is affected
                for u in pins:
                    if not locked[u]:
                        affected.add(u)
            else:
                if F == 2:
                    # the one remaining pin on v's old side could now
                    # uncut the net by following
                    for u in pins:
                        if side[u] == s and not locked[u]:
                            affected.add(u)
                if T == 1:
                    # the previously lone pin on the other side no
                    # longer uncuts the net by moving
                    for u in pins:
                        if side[u] != s and not locked[u]:
                            affected.add(u)
        cum += g
        moves.append(v)
        key = (feasible(w0), cum)
        if key > (best_key[0], best_key[1] + 1e-12):
            best_key = key
            best_len = len(moves)
        for u in affected:
            version[u] += 1
            heapq.heappush(
                heap, (-_gain(h, side, c0, c1, u), u, version[u])
            )
        # previously deferred vertices may have become admissible
        if deferred:
            for item in deferred:
                heapq.heappush(heap, item)
            deferred.clear()

    # roll back to the best prefix
    for v in moves[best_len:]:
        side[v] = 1 - side[v]
    improved = best_key[0] > start_key[0] or best_key[1] > 1e-12
    return improved, side
