"""Multilevel bisection and the recursive K-way driver.

Follows the hMETIS recipe: coarsen by heavy-edge matching, partition the
coarsest hypergraph greedily from a random seed, then uncoarsen while
FM-refining at every level.  Each bisection is restarted ``nruns`` times
(the paper sets hMETIS's Nruns to 20) keeping the best cut.  K-way
partitions are produced by recursive bisection with proportional targets,
so K need not be a power of two.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.partitioning.coarsen import coarsen_to
from repro.partitioning.fm import bisection_cut, fm_refine
from repro.partitioning.hypergraph import Hypergraph


def _greedy_initial(
    h: Hypergraph, target0: float, rng: random.Random
) -> List[int]:
    """Grow side 0 from a random seed by strongest attachment."""
    side = [1] * h.n
    if h.n == 0:
        return side
    seed = rng.randrange(h.n)
    side[seed] = 0
    w0 = h.vwgt[seed]
    attach = {u: s for u, s in h.neighbor_weights(seed).items()}
    in0 = {seed}
    while w0 < target0 and len(in0) < h.n:
        if attach:
            v = max(attach, key=lambda u: (attach[u], -u))
            del attach[v]
        else:  # disconnected: pick any remaining vertex
            v = next(u for u in range(h.n) if u not in in0)
        if v in in0:
            continue
        side[v] = 0
        in0.add(v)
        w0 += h.vwgt[v]
        for u, s in h.neighbor_weights(v).items():
            if u not in in0:
                attach[u] = attach.get(u, 0.0) + s
    return side


def multilevel_bisect(
    h: Hypergraph,
    target0_frac: float = 0.5,
    ubfactor: float = 1.0,
    nruns: int = 10,
    rng: Optional[random.Random] = None,
    coarse_size: int = 60,
) -> Tuple[List[int], float]:
    """Bisect ``h``; returns (side assignment, cut weight).

    ``target0_frac`` is side 0's share of the total vertex weight;
    ``ubfactor`` is the hMETIS-style imbalance percentage (side 0 may
    deviate by ``ubfactor%`` of the total weight from its target).
    """
    if rng is None:
        rng = random.Random(0)
    total = h.total_vertex_weight
    target0 = target0_frac * total
    # Tolerance: UBfactor percent of total, but never tighter than the
    # heaviest vertex (otherwise no balanced assignment may exist).
    tolerance = max(
        ubfactor / 100.0 * total,
        max(h.vwgt, default=0.0) * 0.5 + 1e-12,
    )

    levels, maps = coarsen_to(h, coarse_size, rng)
    best_side: Optional[List[int]] = None
    best_cut = float("inf")
    coarsest = levels[-1]
    for _ in range(max(1, nruns)):
        side = _greedy_initial(coarsest, target0, rng)
        side = fm_refine(coarsest, side, target0, tolerance)
        # project back up, refining at each level
        for lvl in range(len(levels) - 2, -1, -1):
            cmap = maps[lvl]
            fine = [side[cmap[v]] for v in range(levels[lvl].n)]
            side = fm_refine(levels[lvl], fine, target0, tolerance)
        cut = bisection_cut(h, side)
        if cut < best_cut:
            best_cut, best_side = cut, side
    assert best_side is not None
    return best_side, best_cut


def _subhypergraph(
    h: Hypergraph, vertices: List[int]
) -> Tuple[Hypergraph, List[int]]:
    """Restriction of ``h`` to ``vertices``; returns (sub, local→global)."""
    index = {v: i for i, v in enumerate(vertices)}
    nets: List[Tuple[int, ...]] = []
    weights: List[float] = []
    for e, pins in enumerate(h.nets):
        local = tuple(index[v] for v in pins if v in index)
        if len(local) >= 2:
            nets.append(local)
            weights.append(h.nwgt[e])
    sub = Hypergraph(
        len(vertices), [h.vwgt[v] for v in vertices], nets, weights
    )
    return sub, vertices


def partition_kway(
    h: Hypergraph,
    k: int,
    ubfactor: float = 1.0,
    nruns: int = 10,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Recursive-bisection K-way partition; returns part id per vertex."""
    if k < 1:
        raise ValueError("k must be >= 1")
    if rng is None:
        rng = random.Random(0)
    parts = [0] * h.n
    _recurse(h, list(range(h.n)), k, 0, parts, ubfactor, nruns, rng)
    return parts


def _recurse(
    h: Hypergraph,
    vertices: List[int],
    k: int,
    first_part: int,
    parts: List[int],
    ubfactor: float,
    nruns: int,
    rng: random.Random,
) -> None:
    if k == 1 or not vertices:
        for v in vertices:
            parts[v] = first_part
        return
    k0 = (k + 1) // 2
    sub, back = _subhypergraph(h, vertices)
    side, _ = multilevel_bisect(
        sub,
        target0_frac=k0 / k,
        ubfactor=ubfactor,
        nruns=nruns,
        rng=rng,
    )
    left = [back[i] for i in range(sub.n) if side[i] == 0]
    right = [back[i] for i in range(sub.n) if side[i] == 1]
    _recurse(h, left, k0, first_part, parts, ubfactor, nruns, rng)
    _recurse(h, right, k - k0, first_part + k0, parts, ubfactor, nruns, rng)
