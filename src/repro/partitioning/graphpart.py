"""METIS-style clique-expansion graph partitioner (baseline).

The paper (§IV-B) explains why modelling data sharing as a plain graph is
inferior: a datum shared by tasks ``Ta, Tb, Tc`` becomes three weighted
edges, so its weight is counted three times by the partitioner.  This
module reproduces that baseline — the clique expansion is partitioned by
the very same multilevel machinery (every edge is a 2-pin net) — so the
hypergraph-vs-graph ablation isolates the *model*, not the optimizer.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.problem import TaskGraph
from repro.partitioning.bisection import partition_kway
from repro.partitioning.hypergraph import Hypergraph
from repro.partitioning.interface import PartitionResult, cut_weight


def clique_graph_partition(
    graph: TaskGraph,
    k: int,
    ubfactor: float = 1.0,
    nruns: int = 10,
    rng: Optional[random.Random] = None,
    use_flops_weights: bool = True,
) -> PartitionResult:
    """Partition via the pairwise-shared-weight graph of §IV-B."""
    if k < 1:
        raise ValueError("k must be >= 1")
    edges = graph.clique_expansion()
    nets = [pair for pair in edges]
    weights = [edges[pair] for pair in nets]
    vwgt = (
        [t.flops for t in graph.tasks]
        if use_flops_weights
        else [1.0] * graph.n_tasks
    )
    h = Hypergraph(graph.n_tasks, vwgt, nets, weights)
    labels = partition_kway(h, k, ubfactor=ubfactor, nruns=nruns, rng=rng)
    parts: List[List[int]] = [[] for _ in range(k)]
    for t in range(graph.n_tasks):
        parts[labels[t]].append(t)
    flops = [
        sum(graph.tasks[t].flops for t in p) if p else 0.0 for p in parts
    ]
    avg = sum(flops) / k
    imbalance = (max(flops) / avg) if avg > 0 else 1.0
    return PartitionResult(
        parts=parts, cut_bytes=cut_weight(graph, parts), imbalance=imbalance
    )
