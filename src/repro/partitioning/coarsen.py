"""Heavy-edge matching coarsening for the multilevel partitioner.

Each coarsening level pairs vertices connected by the heaviest shared
nets and contracts the pairs, roughly halving the vertex count while
preserving the cut structure.  Nets are projected onto the coarse
vertices; nets collapsing to a single coarse vertex disappear, and
identical coarse nets are merged with summed weights.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.partitioning.hypergraph import Hypergraph


def match_heavy_edge(h: Hypergraph, rng: random.Random) -> List[int]:
    """Greedy matching: ``match[v]`` is v's partner (or v if unmatched)."""
    order = list(range(h.n))
    rng.shuffle(order)
    match = [-1] * h.n
    for v in order:
        if match[v] != -1:
            continue
        scores = h.neighbor_weights(v)
        best_u, best_s = -1, -1.0
        for u, s in scores.items():
            if match[u] == -1 and (
                s > best_s or (s == best_s and u < best_u)
            ):
                best_u, best_s = u, s
        if best_u != -1:
            match[v] = best_u
            match[best_u] = v
        else:
            match[v] = v
    return match


def contract(
    h: Hypergraph, match: List[int]
) -> Tuple[Hypergraph, List[int]]:
    """Contract matched pairs; returns (coarse hypergraph, fine→coarse map)."""
    cmap = [-1] * h.n
    nc = 0
    for v in range(h.n):
        if cmap[v] != -1:
            continue
        u = match[v]
        cmap[v] = nc
        if u != v and cmap[u] == -1:
            cmap[u] = nc
        nc += 1
    cwgt = [0.0] * nc
    for v in range(h.n):
        cwgt[cmap[v]] += h.vwgt[v]

    merged: Dict[Tuple[int, ...], float] = {}
    for e, pins in enumerate(h.nets):
        cpins = tuple(sorted({cmap[v] for v in pins}))
        if len(cpins) < 2:
            continue
        merged[cpins] = merged.get(cpins, 0.0) + h.nwgt[e]
    nets = list(merged.keys())
    weights = [merged[p] for p in nets]
    return Hypergraph(nc, cwgt, nets, weights), cmap


def coarsen_to(
    h: Hypergraph,
    target_vertices: int,
    rng: random.Random,
    max_levels: int = 30,
) -> Tuple[List[Hypergraph], List[List[int]]]:
    """Build the coarsening chain down to ``target_vertices``.

    Returns ``(levels, maps)`` where ``levels[0]`` is the input hypergraph
    and ``maps[i]`` maps level-``i`` vertices to level-``i+1`` vertices.
    Stops early when a level shrinks by less than 10 % (structure
    exhausted — e.g. no data sharing left to contract).
    """
    levels = [h]
    maps: List[List[int]] = []
    for _ in range(max_levels):
        cur = levels[-1]
        if cur.n <= target_vertices:
            break
        coarse, cmap = contract(cur, match_heavy_edge(cur, rng))
        if coarse.n >= cur.n * 0.9:
            break
        levels.append(coarse)
        maps.append(cmap)
    return levels, maps
