"""Hypergraph structure for task partitioning.

Vertices are tasks (weighted by flops, so balance means compute balance);
nets (hyperedges) are data, each spanning the tasks that read it and
weighted by the datum's size — cutting a net means replicating that datum
on every part it spans.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.problem import TaskGraph


class Hypergraph:
    """Immutable pin-list hypergraph."""

    def __init__(
        self,
        n_vertices: int,
        vertex_weights: Sequence[float],
        nets: Sequence[Tuple[int, ...]],
        net_weights: Sequence[float],
    ) -> None:
        if len(vertex_weights) != n_vertices:
            raise ValueError("vertex_weights length mismatch")
        if len(nets) != len(net_weights):
            raise ValueError("net_weights length mismatch")
        self.n = n_vertices
        self.vwgt = list(vertex_weights)
        self.nets: List[Tuple[int, ...]] = [tuple(p) for p in nets]
        self.nwgt = list(net_weights)
        # vertex -> incident net ids
        self.pins_of: List[List[int]] = [[] for _ in range(n_vertices)]
        for e, pins in enumerate(self.nets):
            seen = set()
            for v in pins:
                if v < 0 or v >= n_vertices:
                    raise ValueError(f"net {e} pins unknown vertex {v}")
                if v in seen:
                    raise ValueError(f"net {e} repeats vertex {v}")
                seen.add(v)
                self.pins_of[v].append(e)

    @property
    def n_nets(self) -> int:
        return len(self.nets)

    @property
    def total_vertex_weight(self) -> float:
        return sum(self.vwgt)

    @classmethod
    def from_taskgraph(
        cls, graph: TaskGraph, use_flops_weights: bool = True
    ) -> "Hypergraph":
        """One net per datum over its reader tasks (paper Algorithm 3, l.1-2).

        Data with a single reader can never be cut and are dropped; the
        partitioner is faster and the cut metric unchanged.
        """
        nets: List[Tuple[int, ...]] = []
        weights: List[float] = []
        for d in range(graph.n_data):
            users = graph.users_of(d)
            if len(users) >= 2:
                nets.append(tuple(users))
                weights.append(graph.data[d].size)
        vwgt = (
            [t.flops for t in graph.tasks]
            if use_flops_weights
            else [1.0] * graph.n_tasks
        )
        return cls(graph.n_tasks, vwgt, nets, weights)

    def neighbor_weights(self, v: int, exclude: int = -1) -> Dict[int, float]:
        """Heavy-edge scores: for each neighbour ``u`` of ``v``, the summed
        ``w(net)/(|net|-1)`` over shared nets (standard hMETIS scaling so
        huge nets do not dominate matching)."""
        scores: Dict[int, float] = {}
        for e in self.pins_of[v]:
            pins = self.nets[e]
            share = self.nwgt[e] / (len(pins) - 1)
            for u in pins:
                if u != v and u != exclude:
                    scores[u] = scores.get(u, 0.0) + share
        return scores
