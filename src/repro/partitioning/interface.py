"""Task-level partitioning interface used by the hMETIS+R scheduler."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.problem import TaskGraph
from repro.partitioning.bisection import partition_kway
from repro.partitioning.hypergraph import Hypergraph


@dataclass
class PartitionResult:
    """K task lists plus quality metrics.

    ``parts[k]`` keeps the submission order of the tasks assigned to GPU
    ``k`` (the paper's hMETIS+R has no intra-part ordering phase — Ready
    does the ordering at runtime, a weakness the evaluation discusses).
    """

    parts: List[List[int]]
    #: Σ over data of (parts spanned − 1) × size: the replication bytes
    #: the partition forces (connectivity-1 metric).
    cut_bytes: float
    #: max part weight / average part weight (1.0 = perfect).
    imbalance: float

    @property
    def k(self) -> int:
        return len(self.parts)


def cut_weight(graph: TaskGraph, parts: List[List[int]]) -> float:
    """Connectivity-1 cut in bytes for a task partition."""
    part_of = {}
    for k, p in enumerate(parts):
        for t in p:
            part_of[t] = k
    cut = 0.0
    for d in range(graph.n_data):
        spanned = {part_of[t] for t in graph.users_of(d) if t in part_of}
        if len(spanned) > 1:
            cut += (len(spanned) - 1) * graph.data[d].size
    return cut


def partition_tasks(
    graph: TaskGraph,
    k: int,
    ubfactor: float = 1.0,
    nruns: int = 10,
    rng: Optional[random.Random] = None,
    use_flops_weights: bool = True,
) -> PartitionResult:
    """Split the task set into ``k`` balanced, low-cut parts.

    This is the hMETIS call of the paper's Algorithm 3 (UBfactor = 1,
    Nruns = 20 there; ``nruns`` trades quality for partitioning time,
    which the paper shows is itself a significant cost).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    h = Hypergraph.from_taskgraph(graph, use_flops_weights=use_flops_weights)
    labels = partition_kway(h, k, ubfactor=ubfactor, nruns=nruns, rng=rng)
    parts: List[List[int]] = [[] for _ in range(k)]
    for t in range(graph.n_tasks):  # submission order within parts
        parts[labels[t]].append(t)

    weights = [
        sum(graph.tasks[t].flops for t in p) if p else 0.0 for p in parts
    ]
    avg = sum(weights) / k
    imbalance = (max(weights) / avg) if avg > 0 else 1.0
    return PartitionResult(
        parts=parts, cut_bytes=cut_weight(graph, parts), imbalance=imbalance
    )
