"""From-scratch multilevel hypergraph partitioner (hMETIS substitute).

The paper calls hMETIS to split the task set into K balanced parts while
minimising the data shared *across* parts (each datum is a hyperedge over
the tasks reading it — §IV-B).  hMETIS is closed-source and unavailable
here, so this package implements the same algorithmic family:

* :mod:`repro.partitioning.hypergraph` — pin-list hypergraph structure;
* :mod:`repro.partitioning.coarsen` — heavy-edge matching coarsening;
* :mod:`repro.partitioning.fm` — Fiduccia–Mattheyses bisection refinement
  under a balance constraint (the UBfactor of hMETIS);
* :mod:`repro.partitioning.bisection` — multilevel V-cycle bisection with
  random restarts (hMETIS's Nruns) and recursive K-way driver;
* :mod:`repro.partitioning.graphpart` — the METIS-style clique-expansion
  baseline whose triple-counting weakness the paper describes.
"""

from repro.partitioning.hypergraph import Hypergraph
from repro.partitioning.bisection import multilevel_bisect, partition_kway
from repro.partitioning.fm import bisection_cut, fm_refine
from repro.partitioning.graphpart import clique_graph_partition
from repro.partitioning.interface import (
    PartitionResult,
    cut_weight,
    partition_tasks,
)

__all__ = [
    "Hypergraph",
    "multilevel_bisect",
    "partition_kway",
    "fm_refine",
    "bisection_cut",
    "clique_graph_partition",
    "partition_tasks",
    "PartitionResult",
    "cut_weight",
]
