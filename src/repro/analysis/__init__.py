"""Post-mortem analysis of simulated runs.

Turns a :class:`repro.simulator.trace.TraceRecorder` into the views one
uses to *explain* a schedule's performance:

* :func:`gantt` — per-GPU text timeline of task execution;
* :func:`bus_utilization` / :func:`gpu_busy_intervals` — how loaded the
  contended resources were over time;
* :func:`overlap_fraction` — how much transfer time was hidden behind
  compute (the paper's explanation for DARTS+LUF beating DMDAR at equal
  or higher transfer volume, Fig. 7);
* :func:`memory_timeline` — resident-data occupancy per GPU over time;
* :func:`reuse_distances` — temporal-locality statistics of an executed
  order.
"""

from repro.analysis.timeline import (
    Interval,
    bus_busy_intervals,
    bus_utilization,
    gpu_busy_intervals,
    idle_time,
    memory_timeline,
    overlap_fraction,
    transfer_intervals,
)
from repro.analysis.gantt import gantt
from repro.analysis.locality import (
    ReuseSummary,
    predicted_loads,
    reuse_distances,
    reuse_summary,
)

__all__ = [
    "Interval",
    "gpu_busy_intervals",
    "bus_busy_intervals",
    "transfer_intervals",
    "bus_utilization",
    "overlap_fraction",
    "memory_timeline",
    "idle_time",
    "gantt",
    "reuse_distances",
    "reuse_summary",
    "ReuseSummary",
    "predicted_loads",
]
