"""Text Gantt charts of simulated runs."""

from __future__ import annotations

from typing import List

from repro.analysis.timeline import gpu_busy_intervals, transfer_intervals
from repro.simulator.trace import RunResult


def gantt(
    result: RunResult,
    width: int = 100,
    show_transfers: bool = True,
) -> str:
    """Render per-GPU execution (and transfer) lanes as text.

    ``#`` marks executing, ``-`` marks incoming transfers, `` `` idle.
    One compute lane (and optionally one transfer lane) per GPU.  Needs a
    run with ``record_trace=True``.
    """
    if result.trace is None:
        raise ValueError("gantt needs a run simulated with record_trace=True")
    makespan = result.makespan
    if makespan <= 0:
        return "(empty run)"

    def lane(intervals, ch: str) -> str:
        cells = [" "] * width
        for iv in intervals:
            lo = int(iv.start / makespan * (width - 1))
            hi = max(lo, int(iv.end / makespan * (width - 1)))
            for c in range(lo, hi + 1):
                cells[c] = ch
        return "".join(cells)

    lines: List[str] = [
        f"gantt: {result.scheduler}, makespan {makespan * 1e3:.2f} ms "
        f"('#'=compute, '-'=transfer)"
    ]
    for k in range(result.n_gpus):
        busy = gpu_busy_intervals(result.trace, k)
        lines.append(f"gpu{k} |{lane(busy, '#')}|")
        if show_transfers:
            xfer = transfer_intervals(result.trace, k)
            lines.append(f"     |{lane(xfer, '-')}|")
    lines.append(f"      0{'':{width - 10}}{makespan * 1e3:.2f} ms")
    return "\n".join(lines)
