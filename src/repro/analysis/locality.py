"""Temporal-locality statistics of executed task orders.

The reuse distance of a data access is the number of *distinct* other
data touched since its previous access on the same GPU — the classic
stack-distance measure: an access hits in an (LRU-style) memory of
capacity M iff its reuse distance is < M.  The histogram of an order's
reuse distances therefore predicts its load count under any memory
bound, which connects the schedulers' observed transfer volumes to the
orders they produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.problem import TaskGraph


def reuse_distances(
    graph: TaskGraph, order: Sequence[int]
) -> List[Optional[int]]:
    """Stack distance per data access in the given task order.

    Accesses are the flattened input lists of the tasks in ``order``;
    a first-ever access yields ``None`` (compulsory miss).
    """
    stack: List[int] = []  # most recent at the end
    out: List[Optional[int]] = []
    for t in order:
        for d in graph.inputs_of(t):
            if d in stack:
                pos = stack.index(d)
                out.append(len(stack) - 1 - pos)
                stack.pop(pos)
            else:
                out.append(None)
            stack.append(d)
    return out


@dataclass(frozen=True)
class ReuseSummary:
    accesses: int
    compulsory: int
    mean_distance: float
    max_distance: int

    def hits_with_capacity(self, distances: List[Optional[int]], m: int) -> int:
        return sum(1 for d in distances if d is not None and d < m)


def reuse_summary(graph: TaskGraph, order: Sequence[int]) -> ReuseSummary:
    """Aggregate reuse statistics for one GPU's executed order."""
    distances = reuse_distances(graph, order)
    finite = [d for d in distances if d is not None]
    return ReuseSummary(
        accesses=len(distances),
        compulsory=len(distances) - len(finite),
        mean_distance=sum(finite) / len(finite) if finite else 0.0,
        max_distance=max(finite) if finite else 0,
    )


def predicted_loads(
    graph: TaskGraph, order: Sequence[int], capacity_items: int
) -> int:
    """Loads an LRU memory of ``capacity_items`` would do on this order.

    Computed via stack distances over the per-access stream.  Exactly
    equals ``replay_schedule(..., policy="lru")`` for single-input
    tasks; for multi-input tasks the replay additionally protects the
    current task's inputs from evicting each other, so the replay count
    can be slightly lower (cross-checked in tests).
    """
    distances = reuse_distances(graph, order)
    return sum(
        1 for d in distances if d is None or d >= capacity_items
    )
