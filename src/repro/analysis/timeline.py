"""Interval extraction and resource-utilization analysis of a trace."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulator.trace import TraceRecorder


@dataclass(frozen=True)
class Interval:
    """A half-open time interval ``[start, end)`` tagged with a ref id."""

    start: float
    end: float
    ref: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def _pair_events(
    trace: TraceRecorder, start_kind: str, end_kind: str, gpu: int
) -> List[Interval]:
    """Pair per-ref start/end events on one GPU, in FIFO order per ref."""
    open_starts: Dict[int, List[float]] = {}
    intervals: List[Interval] = []
    for e in trace.events:
        if e.gpu != gpu:
            continue
        if e.kind == start_kind:
            open_starts.setdefault(e.ref, []).append(e.time)
        elif e.kind == end_kind:
            starts = open_starts.get(e.ref)
            if starts:
                intervals.append(Interval(starts.pop(0), e.time, e.ref))
    intervals.sort(key=lambda iv: (iv.start, iv.end, iv.ref))
    return intervals


def gpu_busy_intervals(trace: TraceRecorder, gpu: int) -> List[Interval]:
    """Task execution intervals on ``gpu`` (ref = task id)."""
    return _pair_events(trace, "task_start", "task_end", gpu)


def transfer_intervals(trace: TraceRecorder, gpu: int) -> List[Interval]:
    """CPU→GPU transfer intervals into ``gpu`` (ref = data id).

    Under fair sharing a transfer's span includes time spent at reduced
    bandwidth; the interval is still when the datum occupied the bus.
    """
    return _pair_events(trace, "fetch_start", "fetch_end", gpu)


def _union_length(intervals: List[Interval]) -> float:
    """Total measure of the union of intervals."""
    total = 0.0
    cur_start: Optional[float] = None
    cur_end = 0.0
    for iv in sorted(intervals, key=lambda iv: iv.start):
        if cur_start is None or iv.start > cur_end:
            if cur_start is not None:
                total += cur_end - cur_start
            cur_start, cur_end = iv.start, iv.end
        else:
            cur_end = max(cur_end, iv.end)
    if cur_start is not None:
        total += cur_end - cur_start
    return total


def bus_busy_intervals(trace: TraceRecorder, n_gpus: int) -> List[Interval]:
    """All transfer intervals, any destination."""
    out: List[Interval] = []
    for k in range(n_gpus):
        out.extend(transfer_intervals(trace, k))
    out.sort(key=lambda iv: (iv.start, iv.end, iv.ref))
    return out


def bus_utilization(
    trace: TraceRecorder, n_gpus: int, makespan: float
) -> float:
    """Fraction of the makespan during which the bus carried ≥1 transfer."""
    if makespan <= 0:
        return 0.0
    return _union_length(bus_busy_intervals(trace, n_gpus)) / makespan


def overlap_fraction(trace: TraceRecorder, gpu: int) -> float:
    """Share of ``gpu``'s incoming-transfer time hidden behind its compute.

    1.0 means every byte arrived while the GPU was executing something
    (perfect overlap); 0.0 means all transfers happened while the GPU sat
    idle.  This is the quantity behind the paper's Fig. 7 discussion:
    DARTS+LUF can move *more* data than DMDAR yet be faster because its
    transfers overlap better.
    """
    transfers = transfer_intervals(trace, gpu)
    if not transfers:
        return 1.0
    busy = gpu_busy_intervals(trace, gpu)
    total = sum(iv.duration for iv in transfers)
    if total <= 0:
        return 1.0
    hidden = 0.0
    for t in transfers:
        for b in busy:
            lo = max(t.start, b.start)
            hi = min(t.end, b.end)
            if hi > lo:
                hidden += hi - lo
    return min(hidden / total, 1.0)


def memory_timeline(
    trace: TraceRecorder, gpu: int, data_sizes: Optional[List[float]] = None
) -> List[Tuple[float, float]]:
    """(time, resident bytes-or-count) steps for ``gpu``.

    Counts data from ``fetch_end`` (space is *reserved* earlier, but the
    paper's live-set L(k,i) is about resident data).  With ``data_sizes``
    the second component is bytes; otherwise a datum count.
    """
    level = 0.0
    out: List[Tuple[float, float]] = [(0.0, 0.0)]
    for e in trace.events:
        if e.gpu != gpu:
            continue
        if e.kind == "fetch_end":
            level += data_sizes[e.ref] if data_sizes else 1.0
        elif e.kind == "evict":
            level -= data_sizes[e.ref] if data_sizes else 1.0
        else:
            continue
        out.append((e.time, level))
    return out


def idle_time(trace: TraceRecorder, gpu: int, makespan: float) -> float:
    """Seconds ``gpu`` spent not executing any task."""
    return makespan - _union_length(gpu_busy_intervals(trace, gpu))
