#!/usr/bin/env python
"""Tasks with dependencies — the paper's future-work extension (§VI).

The paper evaluates the *independent-task* Cholesky set (dependencies
stripped).  This example runs the same task set both ways on 4 GPUs:

* ``independent`` — the paper's setting: every task available upfront;
* ``with DAG``    — the real Cholesky precedence constraints, using the
  ``dependencies=`` extension of the runtime: tasks are released as
  their predecessors finish, and every scheduler transparently operates
  on the released subset.

With dependencies the available-task window shrinks (especially at the
start/end of the factorisation), which squeezes the locality-aware
strategies — quantifying how much of their advantage survives is exactly
why the paper lists this as the next step.

Run:  python examples/dependent_tasks.py [n_tiles]
"""

import sys

from repro import make_scheduler, simulate, tesla_v100_node
from repro.dag import cholesky_dag


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    graph, deps = cholesky_dag(n)
    platform = tesla_v100_node(n_gpus=4)
    cp_s = deps.critical_path_flops(graph) / (13_253.0 * 1e9)

    print(f"Cholesky {n}x{n} tiles: {graph.n_tasks} tasks, "
          f"{deps.n_edges} dependency edges")
    print(f"critical path: {cp_s * 1e3:.2f} ms of compute "
          f"(lower-bounds the DAG makespan on any GPU count)\n")

    header = (f"{'scheduler':>18} {'independent':>12} {'with DAG':>12} "
              f"{'DAG penalty':>12}")
    print(header + "   (GFlop/s)")
    print("-" * (len(header) + 12))
    for name in ["eager", "dmdar", "darts+luf-3inputs"]:
        sched_free, ev = make_scheduler(name)
        free = simulate(graph, platform, sched_free, eviction=ev, seed=4)
        sched_dag, ev = make_scheduler(name)
        dag = simulate(graph, platform, sched_dag, eviction=ev, seed=4,
                       dependencies=deps)
        penalty = 100 * (1 - dag.gflops / free.gflops)
        print(f"{free.scheduler:>18} {free.gflops:12.0f} {dag.gflops:12.0f} "
              f"{penalty:11.1f}%")

    print("\nDependencies shrink the set of schedulable tasks, so locality"
          "-aware strategies\nlose part of their edge — the trade-off the "
          "paper's future work targets.")


if __name__ == "__main__":
    main()
