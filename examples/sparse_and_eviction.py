#!/usr/bin/env python
"""Sparse workloads and the eviction-policy ablation.

Part 1 — sparse 2D matmul (paper §V-G): with 98 % of tasks removed the
communication-to-computation ratio soars and data reuse is scarce; DARTS
still finds what little reuse exists while queue-order schedulers drown
in transfers.

Part 2 — eviction ablation on a *fixed* schedule: the same task order
replayed analytically under FIFO, LRU and Belady's offline-optimal rule
(paper Section III: once σ is fixed, Belady minimises loads), showing how
much of the paper's gains come from ordering vs eviction.

Run:  python examples/sparse_and_eviction.py
"""

from repro import (
    Schedule,
    make_scheduler,
    matmul2d,
    simulate,
    sparse_matmul2d,
    tesla_v100_node,
)
from repro.core import belady_loads, compulsory_loads, replay_schedule


def sparse_comparison() -> None:
    graph = sparse_matmul2d(120, density=0.02, seed=3)
    platform = tesla_v100_node(n_gpus=4)
    print(f"sparse workload: {graph.n_tasks} tasks over {graph.n_data} "
          f"data blocks ({graph.working_set_bytes / 1e6:.0f} MB)\n")
    header = f"{'scheduler':>14} {'GFlop/s':>9} {'MB moved':>9} {'loads':>6}"
    print(header)
    print("-" * len(header))
    for name in ["eager", "dmdar", "hmetis+r", "darts+luf"]:
        scheduler, eviction = make_scheduler(name)
        result = simulate(graph, platform, scheduler, eviction=eviction,
                          seed=5)
        print(f"{result.scheduler:>14} {result.gflops:9.0f} "
              f"{result.total_mb:9.0f} {result.total_loads:6d}")


def eviction_ablation() -> None:
    n = 24
    graph = matmul2d(n)
    m_items = 12  # a tight memory of 12 blocks
    # A deliberately mediocre order: column-major while data are shared
    # row-wise, so eviction decisions matter a lot.
    order = [i * n + j for j in range(n) for i in range(n)]
    schedule = Schedule.single_gpu(order)
    print(f"\nfixed schedule on 1 GPU, M={m_items} blocks, "
          f"{graph.n_tasks} tasks, {graph.n_data} data")
    print(f"{'eviction':>10} {'loads':>7}")
    print("-" * 18)
    for policy in ["fifo", "lru"]:
        res = replay_schedule(graph, schedule, capacity_items=m_items,
                              policy=policy)
        print(f"{policy:>10} {res.total_loads:7d}")
    print(f"{'belady':>10} "
          f"{belady_loads(graph, schedule, capacity_items=m_items):7d}")
    print(f"{'(minimum)':>10} {compulsory_loads(graph):7d}  "
          "<- every datum loaded once")


if __name__ == "__main__":
    sparse_comparison()
    eviction_ablation()
