#!/usr/bin/env python
"""Scheduling the task set of a tiled Cholesky factorisation on 4 GPUs.

The Cholesky scenario (paper §V-F) is the stress test for DARTS's
scheduling *cost*: Θ(n³) tasks with an irregular sharing pattern and up
to three inputs each (GEMM reads A[i,j], A[i,k], A[j,k]).  This example
shows why the paper introduces the OPTI variant — the exhaustive scan
for the best datum is too slow at these task counts — and demonstrates
the trade-off by measuring both simulated makespan and the scheduler's
own wall-clock decision time.

Run:  python examples/cholesky_scheduling.py [n_tiles]
"""

import sys

from repro import cholesky_tasks, make_scheduler, simulate, tesla_v100_node
from repro.core.bounds import roofline_gflops


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    graph = cholesky_tasks(n)
    kinds = {}
    for t in graph.tasks:
        kinds[t.name.split("(")[0]] = kinds.get(t.name.split("(")[0], 0) + 1
    platform = tesla_v100_node(n_gpus=4)
    roofline = roofline_gflops(platform.n_gpus, platform.gpus[0].gflops)

    print(f"Cholesky task set, {n}x{n} tiles: {graph.n_tasks} tasks "
          f"({', '.join(f'{v} {k}' for k, v in sorted(kinds.items()))})")
    print(f"data: {graph.n_data} tiles, working set "
          f"{graph.working_set_bytes / 1e6:.0f} MB; 4 GPUs x 500 MB\n")

    header = (f"{'scheduler':>26} {'GFlop/s':>9} {'w/ sched time':>13} "
              f"{'MB moved':>9} {'sched wall':>11}")
    print(header)
    print("-" * len(header))
    for name in [
        "eager",
        "dmdar",
        "darts+luf",
        "darts+luf-3inputs",
        "darts+luf+opti-3inputs",
    ]:
        scheduler, eviction = make_scheduler(name)
        result = simulate(graph, platform, scheduler, eviction=eviction,
                          seed=11)
        print(f"{result.scheduler:>26} {result.gflops:9.0f} "
              f"{result.gflops_with_scheduling:13.0f} "
              f"{result.total_mb:9.0f} {result.scheduling_time:10.2f}s")

    print(f"\nroofline: {roofline:.0f} GFlop/s.  The OPTI variant stops "
          "the datum scan at the first hit,\ntrading a little schedule "
          "quality for an order of magnitude less scheduling time —\n"
          "the difference between the two right-hand columns.")


if __name__ == "__main__":
    main()
