#!/usr/bin/env python
"""Writing your own scheduler against the runtime API.

The runtime drives any object implementing the small
:class:`repro.schedulers.base.Scheduler` interface.  This example builds
a "row-affine" scheduler for the 2D matmul — statically assigning
block-rows of C to GPUs round-robin and walking each row left to right.
It looks sensible (perfect A-row reuse!) but walking full rows makes
each GPU touch every block-column of B per row; once B no longer fits,
LRU evicts each column right before it is needed again and the scheduler
collapses — the exact pathology the paper describes for EAGER.  Writing
a good memory-aware scheduler is harder than it looks, which is the
point of the paper (and of DARTS+LUF, shown for comparison).

Run:  python examples/custom_scheduler.py
"""

from typing import Optional

from repro import make_scheduler, matmul2d, simulate, tesla_v100_node
from repro.schedulers.base import Scheduler


class RowAffineScheduler(Scheduler):
    """Round-robin block-rows of C; left-to-right inside a row.

    Knows the workload shape (it peeks at task names built by
    ``matmul2d``), so it is workload-specific by construction — and it
    still loses badly under memory pressure; see the module docstring.
    """

    name = "ROW-AFFINE"

    def prepare(self, view) -> None:
        super().prepare(view)
        n_gpus = view.n_gpus
        self._queues = [[] for _ in range(n_gpus)]
        rows = {}
        for task in view.graph.tasks:
            i, j = task.name[2:-1].split(",")  # "C[i,j]"
            rows.setdefault(int(i), []).append((int(j), task.id))
        for i in sorted(rows):
            for j, task_id in sorted(rows[i]):
                self._queues[i % n_gpus].append(task_id)
        for q in self._queues:
            q.reverse()  # pop() from the end = left-to-right

    def next_task(self, gpu: int) -> Optional[int]:
        return self._queues[gpu].pop() if self._queues[gpu] else None


def main() -> None:
    graph = matmul2d(36)  # 1062 MB working set vs 2x500 MB
    platform = tesla_v100_node(n_gpus=2)
    print(f"{graph.name}: {graph.n_tasks} tasks, "
          f"{graph.working_set_bytes / 1e6:.0f} MB working set, 2 GPUs\n")

    header = f"{'scheduler':>12} {'GFlop/s':>9} {'MB moved':>9}"
    print(header)
    print("-" * len(header))

    result = simulate(graph, platform, RowAffineScheduler(), eviction="lru",
                      seed=1)
    print(f"{result.scheduler:>12} {result.gflops:9.0f} "
          f"{result.total_mb:9.0f}")

    for name in ["eager", "dmdar", "darts+luf"]:
        scheduler, eviction = make_scheduler(name)
        result = simulate(graph, platform, scheduler, eviction=eviction,
                          seed=1)
        print(f"{result.scheduler:>12} {result.gflops:9.0f} "
              f"{result.total_mb:9.0f}")

    print("\nROW-AFFINE reloads all of B for every row of C — the LRU "
          "pathology.\nA custom Scheduler only needs prepare() and "
          "next_task(); notifications\n(task_done / on_data_loaded / "
          "on_data_evicted) are optional hooks.")


if __name__ == "__main__":
    main()
