#!/usr/bin/env python
"""Quickstart: schedule a 2D-blocked matmul on two memory-limited GPUs.

Builds the paper's flagship scenario — a 40×40 blocked matrix product
whose 1180 MB working set overwhelms the two GPUs' memory (capped at
250 MB each, the paper's trick to create memory pressure on small
instances) — and compares the baseline EAGER scheduler, StarPU's DMDAR,
and the paper's DARTS+LUF on throughput and data movement.

Run:  python examples/quickstart.py
"""

from repro import make_scheduler, matmul2d, simulate, tesla_v100_node
from repro.core.bounds import pci_transfer_limit_bytes, roofline_gflops


def main() -> None:
    n = 40
    graph = matmul2d(n)  # 1600 tasks; 80 data blocks of ~14.75 MB
    platform = tesla_v100_node(n_gpus=2, memory_bytes=250e6)

    print(f"workload : {graph.name}")
    print(f"  tasks={graph.n_tasks}  data={graph.n_data}  "
          f"working set={graph.working_set_bytes / 1e6:.0f} MB")
    print(f"platform : {platform.n_gpus} GPUs x "
          f"{platform.gpus[0].memory_bytes / 1e6:.0f} MB, "
          f"{platform.bus.bandwidth / 1e9:.0f} GB/s shared bus")
    roofline = roofline_gflops(platform.n_gpus, platform.gpus[0].gflops)
    pci_mb = pci_transfer_limit_bytes(
        graph, platform.n_gpus, platform.gpus[0].gflops,
        platform.bus.bandwidth) / 1e6
    print(f"bounds   : roofline={roofline:.0f} GFlop/s, "
          f"PCI-limit={pci_mb:.0f} MB transferable at the roofline\n")

    header = (f"{'scheduler':>12} {'GFlop/s':>9} {'% peak':>7} "
              f"{'MB moved':>9} {'loads':>6} {'evicts':>7} {'balance':>8}")
    print(header)
    print("-" * len(header))
    for name in ["eager", "dmdar", "darts+luf"]:
        scheduler, eviction = make_scheduler(name)
        result = simulate(graph, platform, scheduler, eviction=eviction,
                          seed=42)
        print(f"{result.scheduler:>12} {result.gflops:9.0f} "
              f"{100 * result.gflops / roofline:6.1f}% "
              f"{result.total_mb:9.0f} {result.total_loads:6d} "
              f"{result.total_evictions:7d} {result.balance_ratio():8.2f}")

    print("\nDARTS+LUF sustains near-roofline throughput by loading the "
          "data that frees the most tasks\nand evicting the data least "
          "used by upcoming work — the paper's core result.")


if __name__ == "__main__":
    main()
