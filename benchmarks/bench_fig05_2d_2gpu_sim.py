"""Paper Figure 5: 2D matmul on 2 GPUs, simulation (no scheduling cost).

Expected shape: with scheduling time ignored, the static packers (mHFP,
hMETIS+R) and DARTS+LUF all do well; EAGER and DARTS-on-LRU degrade past
the cumulated-memory thresholds; DMDAR sits in between.
"""

from benchmarks._common import regenerate, time_representative


def test_fig05_2d_2gpu_sim(benchmark):
    sweep = regenerate("fig5")
    time_representative(benchmark, "fig5", "mhfp")

    assert sweep.gain("gflops", "DARTS+LUF", "EAGER", last_k=3) > 1.3
    assert sweep.gain("gflops", "mHFP", "EAGER", last_k=3) > 1.3
    assert sweep.gain("gflops", "DARTS+LUF", "DMDAR", last_k=3) > 1.0
    # DARTS needs LUF under pressure
    assert sweep.gain("gflops", "DARTS+LUF", "DARTS", last_k=3) > 1.0
