"""Extension bench: task outputs (write-back traffic).

The paper drops task outputs from its model, arguing that "the output
data is most often much smaller than the input data and can be
transferred concurrently with data input.  Data output is then not the
driving constraint for efficient execution."  The output extension lets
us *test* that claim: the same 2D matmul with explicit 3.7 MB C-tile
outputs (vs 14.75 MB inputs) should lose only a modest fraction of
throughput, for every scheduler.
"""

from benchmarks.conftest import record_table
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

SCHEDULERS = ["eager", "dmdar", "darts+luf"]
N = 30


def test_ablation_outputs(benchmark):
    base = matmul2d(N)
    with_out = matmul2d(N, with_outputs=True)
    platform = tesla_v100_node(2, memory_bytes=250e6)

    def run(graph, name):
        sched, eviction = make_scheduler(name)
        return simulate(graph, platform, sched, eviction=eviction, seed=1)

    rows = []
    for name in SCHEDULERS:
        rows.append((run(base, name), run(with_out, name)))
    benchmark.pedantic(
        lambda: run(with_out, "darts+luf"), rounds=1, iterations=1
    )

    lines = [
        f"[extension] explicit task outputs, matmul2d(n={N}), "
        "2 GPUs x 250 MB",
        f"{'scheduler':>12} {'GF/s no-out':>12} {'GF/s with-out':>14} "
        f"{'stored MB':>10}",
    ]
    for no_out, out in rows:
        lines.append(
            f"{no_out.scheduler:>12} {no_out.gflops:>12.0f} "
            f"{out.gflops:>14.0f} {out.total_stored_bytes / 1e6:>10.0f}"
        )
    record_table("ablation_outputs", "\n".join(lines))

    for no_out, out in rows:
        # the paper's simplification: outputs cost little (< 25% here,
        # where output bytes are 1/8 of input traffic potential)
        assert out.gflops > 0.75 * no_out.gflops
        assert out.total_stores == N * N
        assert out.total_stored_bytes == sum(
            d.size for d in with_out.data if with_out.is_produced(d.id)
        )
