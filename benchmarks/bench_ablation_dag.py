"""Extension bench: real dependencies vs the paper's independent set.

The paper strips Cholesky's dependencies to obtain independent tasks
(§V-F) and lists dependent tasks as future work (§VI).  This bench runs
the same Cholesky task set both ways on 4 GPUs and reports how much of
each scheduler's throughput survives the precedence constraints — the
locality-aware strategies lose the most, because the DAG shrinks the
window of schedulable tasks they optimise over.
"""

from benchmarks.conftest import record_table
from repro.dag.workloads import cholesky_dag
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate

SCHEDULERS = ["eager", "dmdar", "darts+luf-3inputs"]
N = 14


def test_ablation_dag(benchmark):
    graph, deps = cholesky_dag(N)
    platform = tesla_v100_node(4)
    cp_s = deps.critical_path_flops(graph) / (13_253.0 * 1e9)

    def run(name, with_deps):
        sched, eviction = make_scheduler(name)
        return simulate(
            graph,
            platform,
            sched,
            eviction=eviction,
            seed=4,
            dependencies=deps if with_deps else None,
        )

    rows = [(run(name, False), run(name, True)) for name in SCHEDULERS]
    benchmark.pedantic(
        lambda: run("darts+luf-3inputs", True), rounds=1, iterations=1
    )

    lines = [
        f"[extension] dependencies on Cholesky {N}x{N} tiles, 4 GPUs "
        f"(critical path {cp_s * 1e3:.2f} ms)",
        f"{'scheduler':>20} {'independent':>12} {'with DAG':>10}  (GFlop/s)",
    ]
    for free, dag in rows:
        lines.append(
            f"{free.scheduler:>20} {free.gflops:>12.0f} {dag.gflops:>10.0f}"
        )
    record_table("ablation_dag", "\n".join(lines))

    for free, dag in rows:
        # precedence can only slow execution down
        assert dag.makespan >= free.makespan - 1e-9
        # and the makespan respects the critical path
        assert dag.makespan >= cp_s - 1e-9
    # all tasks ran in both modes
    assert all(
        sum(s.n_tasks for s in r.gpus) == graph.n_tasks
        for pair in rows
        for r in pair
    )
