"""Paper Figure 12: sparse 2D matmul (98 % tasks removed) on 4 GPUs.

Expected shape (paper §V-G): scarce data reuse and a high comm/comp
ratio; DARTS+LUF navigates the sparse sharing structure and beats DMDAR
(~40 % in the paper); OPTI does not hurt at these task counts.
"""

from benchmarks._common import regenerate, time_representative


def test_fig12_sparse(benchmark):
    sweep = regenerate("fig12")
    time_representative(benchmark, "fig12", "darts+luf")

    m = "gflops_with_sched"
    assert sweep.gain(m, "DARTS+LUF", "DMDAR", last_k=4) > 1.05
    assert sweep.gain(m, "DARTS+LUF", "EAGER", last_k=4) > 1.05
    # OPTI is harmless here (paper: "it does not negatively impact")
    assert sweep.gain(m, "DARTS+LUF+OPTI", "DARTS+LUF", last_k=4) > 0.9
