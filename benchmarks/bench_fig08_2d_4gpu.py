"""Paper Figure 8: 2D matmul on 4 GPUs, scheduling time charged.

Expected shape: with 4 GPUs DARTS's datum scan grows expensive on large
task sets; the +threshold variant caps the scan and recovers part of the
loss (at some schedule-quality cost on small sets).  DARTS+LUF still
beats DMDAR and EAGER under pressure.
"""

from benchmarks._common import regenerate, time_representative


def test_fig08_2d_4gpu(benchmark):
    sweep = regenerate("fig8")
    time_representative(benchmark, "fig8", "darts+luf+threshold")

    m = "gflops_with_sched"
    assert sweep.gain(m, "DARTS+LUF", "EAGER", last_k=2) > 1.5
    # DMDAR is strong on 4 GPUs at moderate pressure, but DARTS+LUF
    # wins the heavily constrained tail (the paper's crossover).
    assert sweep.gain(m, "DARTS+LUF", "DMDAR", last_k=2) > 1.1
    # the threshold activates only past ~1.75x cumulated memory (last
    # two points) and must not be slower than the full scan there
    full = sweep.series["DARTS+LUF"].points
    capped = sweep.series["DARTS+LUF+threshold"].points
    assert all(
        c.makespan_s <= f.makespan_s * 1.6
        for c, f in zip(capped[-2:], full[-2:])
    )
