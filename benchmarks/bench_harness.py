#!/usr/bin/env python
"""Harness throughput benchmark: serial vs parallel vs warm cache.

Times the fig3 and fig8 small sweeps through the three execution paths
of the experiment harness —

* serial      — ``harness.run_figure`` (one process, no cache),
* parallel    — ``parallel.run_figure_parallel`` with ``--jobs`` workers,
* cached      — a cold cache-populating run, then a warm rerun that
                performs zero simulations,

verifies all paths agree on every simulation-derived value, and writes
the wall-clock numbers to ``BENCH_harness.json`` (repo root) — the
first point of the repo's performance trajectory.

Parallel speedup is bounded by the CPUs actually available; the JSON
records ``host.cpu_count`` and ``host.usable_cpus`` so a 1-core CI
runner's numbers are not mistaken for a regression.

Usage::

    python benchmarks/bench_harness.py [--jobs 4] [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, Optional

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ),
    )

DEFAULT_OUT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_harness.json")
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_figure(
    figure_id: str, points: Optional[int], jobs: int
) -> Dict[str, Any]:
    from repro.experiments.cache import ResultCache
    from repro.experiments.harness import figure_spec, run_figure
    from repro.experiments.parallel import (
        enumerate_cells,
        run_figure_parallel,
    )

    spec = figure_spec(figure_id, scale="small", points=points)
    n_cells = len(enumerate_cells(spec))

    t0 = time.perf_counter()
    serial = run_figure(figure_id, scale="small", points=points)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = run_figure_parallel(figure_id, points=points, jobs=jobs)
    parallel_s = time.perf_counter() - t0

    identical = json.dumps(serial.deterministic_dict()) == json.dumps(
        par.deterministic_dict()
    )

    cache_dir = tempfile.mkdtemp(prefix="bench-harness-cache-")
    try:
        cold_cache = ResultCache(cache_dir)
        t0 = time.perf_counter()
        run_figure_parallel(
            figure_id, points=points, jobs=jobs, cache=cold_cache
        )
        cache_cold_s = time.perf_counter() - t0

        warm_cache = ResultCache(cache_dir)
        t0 = time.perf_counter()
        warm = run_figure_parallel(
            figure_id, points=points, jobs=jobs, cache=warm_cache
        )
        cache_warm_s = time.perf_counter() - t0
        all_hits = warm_cache.hits == n_cells and warm_cache.misses == 0
        identical = identical and json.dumps(
            serial.deterministic_dict()
        ) == json.dumps(warm.deterministic_dict())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "points": points if points is not None else len(spec.ns),
        "cells": n_cells,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 3)
        if parallel_s > 0
        else None,
        "cache_cold_s": round(cache_cold_s, 4),
        "cache_warm_s": round(cache_warm_s, 4),
        "cache_speedup": round(serial_s / cache_warm_s, 1)
        if cache_warm_s > 0
        else None,
        "warm_run_all_hits": all_hits,
        "identical_deterministic_output": identical,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=4, help="parallel worker count"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate sweeps for a fast smoke (CI)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    args = parser.parse_args(argv)

    figures = (
        {"fig3": 5, "fig8": 2} if args.quick else {"fig3": None, "fig8": 4}
    )
    report: Dict[str, Any] = {
        "benchmark": "harness-parallel-cache",
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "host": {
            "python": _platform.python_version(),
            "platform": _platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cpus": _usable_cpus(),
        },
        "jobs": args.jobs,
        "figures": {},
    }
    if _usable_cpus() < args.jobs:
        report["note"] = (
            f"parallel speedup bounded by {_usable_cpus()} usable CPU(s); "
            f"--jobs {args.jobs} cannot exceed that"
        )

    for fid, points in figures.items():
        print(f"benchmarking {fid} (points={points}, jobs={args.jobs}) ...")
        stats = _time_figure(fid, points, args.jobs)
        report["figures"][fid] = stats
        print(
            f"  serial {stats['serial_s']:.2f}s | parallel "
            f"{stats['parallel_s']:.2f}s ({stats['parallel_speedup']}x) | "
            f"warm cache {stats['cache_warm_s']:.3f}s "
            f"({stats['cache_speedup']}x) | "
            f"identical={stats['identical_deterministic_output']}"
        )
        if not stats["identical_deterministic_output"]:
            print("ERROR: execution paths disagree", file=sys.stderr)
            return 1

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
