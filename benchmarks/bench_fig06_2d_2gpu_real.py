"""Paper Figure 6: 2D matmul on 2 GPUs, "real" (scheduling time charged).

Expected shape: like Fig 5 but hMETIS+R is shown twice — its partitioning
wall-clock cost wipes out the benefit (our pure-Python partitioner makes
this even starker than the paper's hMETIS-in-C), while the no-part-time
curve stays competitive.  DARTS+LUF needs no static phase and wins the
constrained region.
"""

from benchmarks._common import regenerate, time_representative


def test_fig06_2d_2gpu_real(benchmark):
    sweep = regenerate("fig6")
    time_representative(benchmark, "fig6", "hmetis+r")

    m = "gflops_with_sched"
    assert sweep.gain(m, "DARTS+LUF", "EAGER", last_k=3) > 1.2
    assert sweep.gain(m, "DARTS+LUF", "DMDAR", last_k=3) > 1.0
    # partitioning time matters:
    assert (
        sweep.gain(m, "hMETIS+R no sched. time", "hMETIS+R", last_k=3) > 1.5
    )
    # without it, the partition is decent:
    assert (
        sweep.gain("gflops", "hMETIS+R no sched. time", "EAGER", last_k=3)
        > 1.2
    )
