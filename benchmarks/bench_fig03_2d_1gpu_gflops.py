"""Paper Figure 3: 2D matmul throughput on one V100, sweep of working set.

Expected shape (paper §V-B): EAGER collapses to the bus-bound plateau
once matrix B no longer fits in the 500 MB GPU memory; DMDAR degrades
more gently; mHFP is near-roofline without its scheduling time but
unusable with it; DARTS (LRU) suffers the domino effect; DARTS+LUF stays
near the roofline throughout.
"""

from benchmarks._common import regenerate, time_representative


def test_fig03_2d_1gpu_gflops(benchmark):
    sweep = regenerate("fig3")
    time_representative(benchmark, "fig3", "darts+luf")

    # Shape assertions on the constrained tail of the sweep (the last
    # points are past the "B fits" threshold).
    assert sweep.gain("gflops", "DARTS+LUF", "EAGER", last_k=3) > 1.3
    assert sweep.gain("gflops", "DARTS+LUF", "DMDAR", last_k=3) > 1.02
    assert sweep.gain("gflops", "DARTS+LUF", "DARTS", last_k=3) > 1.0
    # mHFP's packing time dominates once charged (the paper's point):
    assert (
        sweep.gain("gflops_with_sched", "DARTS+LUF", "mHFP", last_k=3) > 1.5
    )
    # ...but mHFP's schedule itself is excellent:
    assert sweep.gain("gflops", "mHFP", "EAGER", last_k=3) > 1.3
