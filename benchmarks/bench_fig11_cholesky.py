"""Paper Figure 11: Cholesky task set on 4 GPUs, scheduling time charged.

Expected shape (paper §V-F): Θ(n³) heterogeneous tasks make DARTS's full
datum scan expensive; the OPTI early-exit keeps the scheduling time
bounded, so DARTS+LUF+OPTI-3inputs wins once scheduling time counts
(the paper reports ~49 % over hMETIS+R-no-part-time).
"""

from benchmarks._common import regenerate, time_representative


def test_fig11_cholesky(benchmark):
    sweep = regenerate("fig11")
    time_representative(benchmark, "fig11", "darts+luf+opti-3inputs")

    m = "gflops_with_sched"
    assert sweep.gain(m, "DARTS+LUF-3inputs", "DMDAR", last_k=3) > 1.1
    assert sweep.gain(m, "DARTS+LUF-3inputs", "EAGER", last_k=3) > 1.1
    # OPTI's point is the decision-cost reduction at bounded quality
    # loss (at paper-scale task counts the cost reduction dominates):
    assert (
        sweep.gain(m, "DARTS+LUF+OPTI-3inputs", "DARTS+LUF-3inputs",
                   last_k=3) > 0.6
    )
    full = sweep.series["DARTS+LUF-3inputs"].points
    opti = sweep.series["DARTS+LUF+OPTI-3inputs"].points
    assert sum(p.scheduling_time_s for p in opti[-3:]) < 0.7 * sum(
        p.scheduling_time_s for p in full[-3:]
    )
