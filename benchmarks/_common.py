"""Shared plumbing for the per-figure benchmarks."""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures import FIGURES
from repro.experiments.harness import run_figure
from repro.metrics.collect import Sweep
from repro.metrics.report import format_series_table
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate

from benchmarks.conftest import record_table


def regenerate(figure_id: str, points: Optional[int] = None) -> Sweep:
    """Run the figure's reduced-scale sweep and record its table."""
    cfg = FIGURES[figure_id]
    sweep = run_figure(figure_id, scale="small", points=points)
    header = f"[paper {figure_id}] {cfg.title} — metric: {cfg.metric}"
    table = header + "\n" + format_series_table(sweep, metric=cfg.metric)
    record_table(figure_id, table)
    return sweep


def time_representative(
    benchmark, figure_id: str, scheduler: str, n: Optional[int] = None
):
    """Time one simulate() call at a mid-sweep instance size.

    One round only: a full run is seconds-scale and deterministic, so
    repetition buys nothing.
    """
    cfg = FIGURES[figure_id]
    ns = cfg.ns_small
    size = n if n is not None else ns[len(ns) // 2]
    platform = cfg.platform_factory("small")()
    graph = cfg.workload(size)

    def once():
        sched, eviction = make_scheduler(scheduler)
        return simulate(graph, platform, sched, eviction=eviction, seed=0)

    result = benchmark.pedantic(once, rounds=1, iterations=1)
    assert sum(g.n_tasks for g in result.gpus) == graph.n_tasks
    return result
