"""Ablation: task-buffer depth (prefetch window).

DESIGN.md fixes the default window at 2.  Deeper buffers commit tasks
earlier and let prefetches evict data that buffered tasks still need —
the same prefetch/eviction conflict the paper attributes to DMDAR — so
more lookahead is *not* monotonically better under memory pressure.
"""

from benchmarks.conftest import record_table
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

WINDOWS = [1, 2, 4, 8]


def test_ablation_prefetch_window(benchmark):
    graph = matmul2d(40)
    platform = tesla_v100_node(1)

    def run(name, window):
        sched, eviction = make_scheduler(name)
        return simulate(
            graph, platform, sched, eviction=eviction, window=window, seed=1
        )

    table = {}
    for name in ("dmdar", "darts+luf"):
        table[name] = {w: run(name, w) for w in WINDOWS}
    benchmark.pedantic(
        lambda: run("darts+luf", 2), rounds=1, iterations=1
    )

    lines = [
        "[ablation] prefetch window on matmul2d(n=40), 1 GPU x 500 MB "
        "(GFlop/s | MB moved)",
        f"{'window':>7} {'DMDAR':>16} {'DARTS+LUF':>16}",
    ]
    for w in WINDOWS:
        dm = table["dmdar"][w]
        luf = table["darts+luf"][w]
        lines.append(
            f"{w:>7} {dm.gflops:>8.0f}|{dm.total_mb:>7.0f} "
            f"{luf.gflops:>8.0f}|{luf.total_mb:>7.0f}"
        )
    record_table("ablation_prefetch", "\n".join(lines))

    # window=1 (no overlap at all) must be visibly worse than window=2
    # for at least one scheduler; huge windows must not help DMDAR.
    assert (
        table["darts+luf"][2].gflops > table["darts+luf"][1].gflops * 0.99
    )
    assert table["dmdar"][8].gflops < table["dmdar"][2].gflops * 1.1
