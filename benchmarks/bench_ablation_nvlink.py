"""Extension bench: NVLink peer-to-peer links (paper §VI future work).

The paper proposes fetching data from a nearby GPU over NVLink instead
of re-loading it from main memory.  This bench enables the peer fabric
on the 4-GPU 2D matmul and reports the traffic split and throughput
delta per scheduler.  Schedulers are unchanged — routing happens in the
memory system — so the benefit is bounded by how much the strategies
*replicate* data across GPUs (DARTS deliberately separates data usage,
so it profits least; EAGER's duplicate fetches race and mostly miss the
peer window).
"""

from benchmarks.conftest import record_table
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

SCHEDULERS = ["eager", "dmdar", "hmetis+r", "darts+luf"]


def test_ablation_nvlink(benchmark):
    graph = matmul2d(40)

    def run(name, nvlink):
        sched, eviction = make_scheduler(name)
        platform = tesla_v100_node(4, memory_bytes=250e6, nvlink=nvlink)
        return simulate(graph, platform, sched, eviction=eviction, seed=1)

    rows = []
    for name in SCHEDULERS:
        plain = run(name, False)
        peered = run(name, True)
        rows.append((plain, peered))
    benchmark.pedantic(lambda: run("darts+luf", True), rounds=1, iterations=1)

    lines = [
        "[extension] NVLink peer links, matmul2d(n=40), 4 GPUs x 250 MB",
        f"{'scheduler':>12} {'GF/s pcie':>10} {'GF/s nvlink':>12} "
        f"{'peer traffic':>13}",
    ]
    for plain, peered in rows:
        lines.append(
            f"{plain.scheduler:>12} {plain.gflops:>10.0f} "
            f"{peered.gflops:>12.0f} {peered.peer_fraction * 100:>12.1f}%"
        )
    record_table("ablation_nvlink", "\n".join(lines))

    for plain, peered in rows:
        # peer links never hurt, and some traffic moves off the host bus
        assert peered.gflops >= plain.gflops * 0.98
    assert any(p.bytes_from_peer > 0 for _, p in rows)
