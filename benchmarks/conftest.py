"""Benchmark harness support.

Each ``bench_figXX`` module regenerates one paper figure at reduced scale
(see ``repro.experiments.figures``), records its series table, and times
one representative run with pytest-benchmark.  Tables are emitted in the
terminal summary (so they survive output capture and land in
``bench_output.txt``) and mirrored to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Dict

_TABLES: Dict[str, str] = {}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_table(name: str, text: str) -> None:
    """Register a figure's series table for the terminal summary."""
    _TABLES[name] = text
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line(
        "Regenerated paper figures (series tables; see EXPERIMENTS.md "
        "for paper-vs-measured)"
    )
    terminalreporter.write_line("=" * 78)
    for name in sorted(_TABLES):
        terminalreporter.write_line("")
        terminalreporter.write_line(_TABLES[name])
