"""Ablation: hypergraph model vs clique-expansion graph model (§IV-B).

The paper argues data shared by ≥3 tasks is triple-counted by a plain
graph partitioner (METIS-style), making the hypergraph model the right
one.  Both models run through the *same* multilevel optimizer here, so
any gap is the model's.  On the 2D matmul every datum is shared by n
tasks — the worst case for the clique expansion.
"""

import random

from benchmarks.conftest import record_table
from repro.partitioning.graphpart import clique_graph_partition
from repro.partitioning.interface import partition_tasks
from repro.workloads.matmul2d import matmul2d

N = 16
K = 4


def test_ablation_partitioner_model(benchmark):
    graph = matmul2d(N, data_size=1.0, task_flops=1.0)

    hyper = benchmark.pedantic(
        lambda: partition_tasks(graph, K, nruns=5, rng=random.Random(0)),
        rounds=1,
        iterations=1,
    )
    clique = clique_graph_partition(graph, K, nruns=5, rng=random.Random(0))

    lines = [
        f"[ablation] partitioning model on matmul2d(n={N}), K={K} "
        "(cut = replicated data, connectivity-1)",
        f"{'model':>12} {'cut (data)':>11} {'imbalance':>10}",
        f"{'hypergraph':>12} {hyper.cut_bytes:>11.0f} {hyper.imbalance:>10.3f}",
        f"{'clique':>12} {clique.cut_bytes:>11.0f} {clique.imbalance:>10.3f}",
    ]
    record_table("ablation_partitioner", "\n".join(lines))

    # both are valid partitions; hypergraph cut is no worse (+10% slack
    # for optimizer noise)
    assert hyper.cut_bytes <= clique.cut_bytes * 1.1
    assert hyper.imbalance < 1.3 and clique.imbalance < 1.3
