"""Paper Figure 4: data transferred (MB) on one V100, 2D matmul sweep.

Expected shape: EAGER's traffic explodes past the "B fits" threshold and
crosses the PCI-bus limit curve (it cannot reach the roofline any more);
DARTS+LUF and mHFP stay lowest; DARTS (LRU) sits in between because of
re-fetches after pathological evictions.
"""

from benchmarks._common import regenerate, time_representative


def test_fig04_2d_1gpu_transfers(benchmark):
    sweep = regenerate("fig4")
    time_representative(benchmark, "fig4", "eager")

    assert sweep.gain("transfers_mb", "EAGER", "DARTS+LUF", last_k=3) > 3.0
    assert sweep.gain("transfers_mb", "DARTS", "DARTS+LUF", last_k=3) > 1.0
    assert sweep.gain("transfers_mb", "DMDAR", "DARTS+LUF", last_k=3) > 1.0

    # EAGER exceeds the PCI limit curve on the most constrained points
    # (the paper's hard-limit argument).
    pci = sweep.reference_curves["PCI bus limit (MB)"]
    eager = sweep.series["EAGER"].values("transfers_mb")
    assert any(e > p for e, p in zip(eager[-3:], pci[-3:]))
    # DARTS+LUF stays under it everywhere.
    luf = sweep.series["DARTS+LUF"].values("transfers_mb")
    assert all(v <= p for v, p in zip(luf, pci))
