"""Paper Figure 10: 3D matmul (3 inputs/task) on 4 GPUs, simulation.

Expected shape (paper §V-E): with three inputs per task, no single load
ever frees a task at start-up, so base DARTS+LUF falls back to random
picks; the 3inputs variant looks one extra load ahead and wins — the
paper reports ~61 % over DMDAR.
"""

from benchmarks._common import regenerate, time_representative


def test_fig10_3d_4gpu(benchmark):
    sweep = regenerate("fig10")
    time_representative(benchmark, "fig10", "darts+luf-3inputs")

    m = "gflops"
    assert (
        sweep.gain(m, "DARTS+LUF-3inputs", "DARTS+LUF", last_k=4) > 1.05
    )
    assert sweep.gain(m, "DARTS+LUF-3inputs", "DMDAR", last_k=4) > 1.1
    assert sweep.gain(m, "DARTS+LUF-3inputs", "EAGER", last_k=4) > 1.1
