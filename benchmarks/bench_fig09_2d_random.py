"""Paper Figure 9: randomized submission order, 2 GPUs.

Expected shape (paper §V-D): EAGER, DMDAR and hMETIS+R lean on the
natural row-major submission order and degrade once memory is
constrained; DARTS+LUF chooses its own data-driven order and keeps high
throughput (the paper reports +75 % over DMDAR on average).
"""

from benchmarks._common import regenerate, time_representative


def test_fig09_2d_random(benchmark):
    sweep = regenerate("fig9")
    time_representative(benchmark, "fig9", "darts+luf")

    # In the constrained mid-range (B fits cumulated, A+B does not),
    # DARTS+LUF clearly beats the order-dependent strategies.
    m = "gflops"
    assert sweep.gain(m, "DARTS+LUF", "DMDAR", last_k=5) > 1.1
    assert sweep.gain(m, "DARTS+LUF", "EAGER", last_k=5) > 1.1
