#!/usr/bin/env python
"""Simulator-core hot-path benchmark: engine, schedulers, end-to-end cells.

Measures the layers touched by the profile-guided core optimization —

* engine     — event schedule/step throughput and cancel-heavy runs that
               exercise the lazy heap compaction,
* pack       — HFP package-merging time on the fig3 workload,
* refill     — DARTS decision wall time (the ``_refill`` hot path) for
               one fig3 cell,
* e2e        — end-to-end wall time of every scheduler cell of the fig3
               (n=48) and fig8 (n=70) sweeps via ``harness.run_cell``,

and writes the numbers to ``BENCH_core.json`` (repo root) next to the
**pre-optimization baselines** recorded below, with the speedup of each
cell and of the whole fig3/fig8 cell sums.  The optimization is
byte-identical by construction (golden SAN007 digests, pinned
``scheduling_time``), so the only thing this file needs to demonstrate
is wall clock.

Cross-machine comparisons use ``calibration_s`` — the time of a fixed
pure-Python loop — to normalize: ``--check OLD.json`` compares
``e2e/calibration`` ratios and fails on a >``--tolerance`` regression,
which is what the CI perf-smoke job runs against the committed file.

Usage::

    python benchmarks/bench_core.py [--quick] [--out PATH]
    python benchmarks/bench_core.py --quick --check BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform as _platform
import sys
import time
from typing import Any, Dict, List, Optional

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(
        0,
        os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        ),
    )

DEFAULT_OUT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_core.json")
)

#: End-to-end cell wall times (seconds) measured at the commit *before*
#: the hot-path optimization, same machine as the post numbers first
#: committed in BENCH_core.json.  ``run_cell(spec, n, scheduler, 0)``,
#: best of 2.
PRE_PR_BASELINE: Dict[str, Dict[str, float]] = {
    "fig3:48": {
        "eager": 0.130,
        "dmdar": 1.090,
        "mhfp": 2.705,
        "darts": 0.242,
        "darts+luf": 0.285,
    },
    "fig8:70": {
        "eager": 0.195,
        "dmdar": 1.037,
        "hmetis+r": 44.837,
        "darts": 2.546,
        "darts+luf": 3.408,
        "darts+luf+threshold": 0.657,
    },
}


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def calibrate() -> float:
    """Time a fixed pure-Python workload (machine-speed yardstick)."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(2_000_000):
        acc += i * i
    assert acc > 0
    return time.perf_counter() - t0


def bench_engine() -> Dict[str, Any]:
    """Schedule/step throughput and a cancel-heavy compaction run."""
    from repro.simulator.engine import SimulationEngine

    n = 200_000
    eng = SimulationEngine()
    counter = [0]

    def cb() -> None:
        counter[0] += 1

    t0 = time.perf_counter()
    for i in range(n):
        eng.schedule_at(float(i % 977), cb)
    schedule_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    eng.run()
    run_s = time.perf_counter() - t0
    assert counter[0] == n

    # cancel-heavy: 90% of handles cancelled, then drain — exercises the
    # lazy compaction path (dead entries > half the heap)
    eng2 = SimulationEngine()
    handles = [eng2.schedule_at(float(i % 977), cb) for i in range(n)]
    t0 = time.perf_counter()
    for i, h in enumerate(handles):
        if i % 10:
            h.cancel()
    cancel_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    eng2.run()
    drain_s = time.perf_counter() - t0

    return {
        "events": n,
        "schedule_ops_per_s": round(n / schedule_s),
        "step_ops_per_s": round(n / run_s),
        "cancel_ops_per_s": round((n - n // 10) / cancel_s),
        "cancelled_drain_s": round(drain_s, 4),
    }


def bench_hfp_pack(n: int = 48) -> Dict[str, Any]:
    """Time ``hfp_pack`` on the fig3 matmul workload."""
    from repro.experiments.harness import figure_spec
    from repro.schedulers.hfp import hfp_pack

    spec = figure_spec("fig3")
    graph = spec.workload(n)
    platform = spec.platform()
    memory = min(g.memory_bytes for g in platform.gpus)
    t0 = time.perf_counter()
    packages = hfp_pack(graph, memory, platform.n_gpus)
    pack_s = time.perf_counter() - t0
    return {
        "n": n,
        "tasks": graph.n_tasks,
        "pack_s": round(pack_s, 4),
        "packages": len(packages),
    }


def bench_cell(fid: str, n: int, scheduler: str, reps: int) -> float:
    """Best-of-``reps`` wall time of one sweep cell."""
    from repro.experiments.harness import figure_spec, run_cell

    spec = figure_spec(fid)
    graph = spec.workload(n)  # build once; cell timing excludes gen
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        run_cell(spec, n, scheduler, 0, graph=graph)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_darts_decision(n: int = 48) -> Dict[str, Any]:
    """DARTS decision wall time for one fig3 cell (the refill path)."""
    from repro.experiments.harness import figure_spec, run_cell

    spec = figure_spec("fig3")
    m = run_cell(spec, n, "darts", 0)
    return {
        "n": n,
        "decision_wall_s": round(m.scheduling_time_s, 4),
        "makespan_s": m.makespan_s,
    }


def run_benchmarks(quick: bool) -> Dict[str, Any]:
    cells: Dict[str, List[str]] = {
        "fig3:48": list(PRE_PR_BASELINE["fig3:48"]),
    }
    reps = 1 if quick else 2
    if not quick:
        cells["fig8:70"] = list(PRE_PR_BASELINE["fig8:70"])

    report: Dict[str, Any] = {
        "benchmark": "simulator-core-hot-paths",
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "host": {
            "python": _platform.python_version(),
            "platform": _platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cpus": _usable_cpus(),
        },
        "quick": quick,
        "calibration_s": round(calibrate(), 4),
        "engine": bench_engine(),
        "hfp_pack": bench_hfp_pack(),
        "darts_decision": bench_darts_decision(),
        "e2e": {},
        "baseline_pre_pr": PRE_PR_BASELINE,
    }

    for key, schedulers in cells.items():
        fid, n_s = key.split(":")
        n = int(n_s)
        base = PRE_PR_BASELINE[key]
        out: Dict[str, Any] = {"cells": {}}
        total = 0.0
        for scheduler in schedulers:
            print(f"  {key} {scheduler} ...", flush=True)
            secs = bench_cell(fid, n, scheduler, reps)
            total += secs
            out["cells"][scheduler] = {
                "seconds": round(secs, 4),
                "baseline_s": base[scheduler],
                "speedup": round(base[scheduler] / secs, 2),
            }
        out["total_s"] = round(total, 4)
        out["baseline_total_s"] = round(sum(base[s] for s in schedulers), 4)
        out["total_speedup"] = round(out["baseline_total_s"] / total, 2)
        report["e2e"][key] = out
    return report


def check_regression(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> int:
    """Compare calibration-normalized e2e times against a previous run.

    Returns the number of regressed cells (>``tolerance`` slower after
    normalizing out machine speed).
    """
    with open(baseline_path) as fh:
        old = json.load(fh)
    old_cal = old.get("calibration_s") or 1.0
    new_cal = report.get("calibration_s") or 1.0
    failures = 0
    for key, data in report["e2e"].items():
        old_cells = old.get("e2e", {}).get(key, {}).get("cells", {})
        for scheduler, stats in data["cells"].items():
            if scheduler not in old_cells:
                continue
            old_norm = old_cells[scheduler]["seconds"] / old_cal
            new_norm = stats["seconds"] / new_cal
            ratio = new_norm / old_norm if old_norm > 0 else 1.0
            status = "ok"
            if ratio > 1.0 + tolerance:
                status = "REGRESSED"
                failures += 1
            print(
                f"  check {key} {scheduler}: normalized x{ratio:.2f} "
                f"[{status}]"
            )
    return failures


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fig3 cells only, single rep (CI perf smoke)",
    )
    parser.add_argument("--out", default=DEFAULT_OUT, help="output JSON path")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a previous BENCH_core.json; non-zero exit "
        "on a normalized e2e regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown for --check (default 0.25)",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.quick)
    eng = report["engine"]
    print(
        f"engine: schedule {eng['schedule_ops_per_s']:,} ops/s | "
        f"step {eng['step_ops_per_s']:,} ops/s | "
        f"cancel {eng['cancel_ops_per_s']:,} ops/s"
    )
    print(
        f"hfp_pack(n={report['hfp_pack']['n']}): "
        f"{report['hfp_pack']['pack_s']:.3f}s | darts decision wall: "
        f"{report['darts_decision']['decision_wall_s']:.4f}s"
    )
    for key, data in report["e2e"].items():
        print(
            f"{key}: {data['total_s']:.2f}s vs baseline "
            f"{data['baseline_total_s']:.2f}s "
            f"-> x{data['total_speedup']:.2f}"
        )

    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = check_regression(report, args.check, args.tolerance)
        if failures:
            print(
                f"ERROR: {failures} cell(s) regressed beyond "
                f"{args.tolerance:.0%}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
