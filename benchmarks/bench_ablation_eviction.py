"""Ablation: eviction policy for a *fixed* task order.

Separates the paper's two levers — ordering and eviction — by replaying
one schedule (the natural row-major order, deliberately eviction-hostile)
under FIFO, LRU, Random, online-Belady and (in the simulator, with
DARTS) LUF.  Belady is the offline optimum for the fixed order
(Section III), so it lower-bounds every online policy.
"""

import pytest

from benchmarks.conftest import record_table
from repro.core.belady import belady_loads
from repro.core.schedule import Schedule, replay_schedule
from repro.platform.spec import tesla_v100_node
from repro.schedulers.fixed import FixedSchedule
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

N = 30
M_ITEMS = 12


def test_ablation_eviction_policies(benchmark):
    graph = matmul2d(N)
    order = Schedule.single_gpu(list(range(graph.n_tasks)))

    analytic = {}
    for policy in ("fifo", "lru"):
        analytic[policy] = replay_schedule(
            graph, order, capacity_items=M_ITEMS, policy=policy
        ).total_loads
    analytic["belady"] = belady_loads(graph, order, capacity_items=M_ITEMS)

    def run_sim(eviction):
        sched = FixedSchedule(
            Schedule.single_gpu(list(range(graph.n_tasks)))
        )
        platform = tesla_v100_node(
            1, memory_bytes=M_ITEMS * graph.data[0].size
        )
        return simulate(graph, platform, sched, eviction=eviction, seed=0)

    sim = {
        ev: run_sim(ev).total_loads
        for ev in ("fifo", "lru", "random", "belady")
    }
    benchmark.pedantic(lambda: run_sim("belady"), rounds=1, iterations=1)

    lines = [
        "[ablation] eviction policy on a fixed row-major order "
        f"(n={N}, M={M_ITEMS} blocks)",
        f"{'policy':>8} {'analytic loads':>15} {'simulated loads':>16}",
    ]
    for p in ("fifo", "lru", "belady"):
        lines.append(
            f"{p:>8} {analytic[p]:>15} {sim[p]:>16}"
        )
    lines.append(f"{'random':>8} {'-':>15} {sim['random']:>16}")
    record_table("ablation_eviction", "\n".join(lines))

    # Belady is optimal for the fixed order
    assert analytic["belady"] <= analytic["lru"]
    assert analytic["belady"] <= analytic["fifo"]
    assert sim["belady"] <= min(sim["lru"], sim["fifo"], sim["random"])
    # the row-major order is LRU-hostile: Belady clearly wins
    assert analytic["belady"] < 0.8 * analytic["lru"]
