"""Paper Figure 13: sparse 2D matmul with no memory limit (32 GB/GPU).

Expected shape: without memory pressure nobody evicts, yet processing
*order* still matters for distributing transfers over time; DARTS+OPTI
is best in the paper, with hMETIS+R dragged down by its partitioning
cost only.
"""

from benchmarks._common import regenerate, time_representative


def test_fig13_sparse_nolimit(benchmark):
    sweep = regenerate("fig13")
    result = time_representative(benchmark, "fig13", "darts+luf+opti")

    # no memory limit -> zero evictions
    assert result.total_evictions == 0

    m = "gflops_with_sched"
    assert sweep.gain(m, "DARTS+LUF+OPTI", "EAGER", last_k=4) > 0.95
    # hMETIS+R's partition cost is pure loss here:
    assert (
        sweep.gain(m, "hMETIS+R no sched. time", "hMETIS+R", last_k=4) > 1.2
    )
