"""Paper Figure 7: data transferred on 2 GPUs, 2D matmul sweep.

Expected shape: EAGER's traffic explodes past "B fits in cumulated
memory"; DARTS+LUF's stays low — though the paper notes it may transfer
*more* than DMDAR on some mid-range points while still winning on
throughput thanks to better transfer/compute overlap (checked in the
fig6 bench).
"""

from benchmarks._common import regenerate, time_representative


def test_fig07_2d_2gpu_transfers(benchmark):
    sweep = regenerate("fig7")
    time_representative(benchmark, "fig7", "dmdar")

    assert sweep.gain("transfers_mb", "EAGER", "DARTS+LUF", last_k=3) > 2.0
    assert sweep.gain("transfers_mb", "EAGER", "hMETIS+R", last_k=3) > 1.5
    # traffic is never below the working set (compulsory loads)
    for name, series in sweep.series.items():
        for point in series.points:
            assert point.transfers_mb >= point.working_set_mb * 0.99, name
