"""Ablation: shared-bus contention model (fair-share fluid vs FIFO).

DESIGN.md calls the fair-share fluid model the default; this ablation
checks the choice is not load-bearing for the paper's conclusions: the
scheduler ranking must be the same under both models.
"""

from benchmarks.conftest import record_table
from repro.platform.spec import tesla_v100_node
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.workloads.matmul2d import matmul2d

SCHEDULERS = ["eager", "dmdar", "darts+luf"]


def test_ablation_bus_model(benchmark):
    graph = matmul2d(36)

    def run(model, name):
        sched, eviction = make_scheduler(name)
        platform = tesla_v100_node(
            2, memory_bytes=250e6, bus_model=model
        )
        return simulate(graph, platform, sched, eviction=eviction, seed=1)

    results = {
        model: {name: run(model, name) for name in SCHEDULERS}
        for model in ("fair", "fifo")
    }
    benchmark.pedantic(
        lambda: run("fifo", "darts+luf"), rounds=1, iterations=1
    )

    lines = [
        "[ablation] bus model, matmul2d(n=36), 2 GPUs x 250 MB (GFlop/s)",
        f"{'scheduler':>12} {'fair-share':>11} {'fifo':>9}",
    ]
    for name in SCHEDULERS:
        fair = results["fair"][name]
        fifo = results["fifo"][name]
        lines.append(
            f"{fair.scheduler:>12} {fair.gflops:>11.0f} {fifo.gflops:>9.0f}"
        )
    record_table("ablation_bus", "\n".join(lines))

    for model in ("fair", "fifo"):
        r = results[model]
        assert r["darts+luf"].gflops > r["dmdar"].gflops
        assert r["dmdar"].gflops > r["eager"].gflops
